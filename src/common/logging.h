#ifndef CORROB_COMMON_LOGGING_H_
#define CORROB_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace corrob {
namespace internal_logging {

/// Severity of a log line. kFatal aborts the process after logging.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Stream-style log sink: accumulates a message and emits it (to
/// stderr) on destruction. Used through the CORROB_LOG/CHECK macros.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Returns the minimum level that will actually be emitted.
LogLevel MinLogLevel();

/// Sets the minimum emitted level (default kInfo). Thread-compatible:
/// set it once at startup.
void SetMinLogLevel(LogLevel level);

}  // namespace internal_logging

#define CORROB_LOG_DEBUG                                        \
  ::corrob::internal_logging::LogMessage(                      \
      ::corrob::internal_logging::LogLevel::kDebug, __FILE__, __LINE__)
#define CORROB_LOG_INFO                                         \
  ::corrob::internal_logging::LogMessage(                      \
      ::corrob::internal_logging::LogLevel::kInfo, __FILE__, __LINE__)
#define CORROB_LOG_WARNING                                      \
  ::corrob::internal_logging::LogMessage(                      \
      ::corrob::internal_logging::LogLevel::kWarning, __FILE__, __LINE__)
#define CORROB_LOG_ERROR                                        \
  ::corrob::internal_logging::LogMessage(                      \
      ::corrob::internal_logging::LogLevel::kError, __FILE__, __LINE__)
#define CORROB_LOG_FATAL                                        \
  ::corrob::internal_logging::LogMessage(                      \
      ::corrob::internal_logging::LogLevel::kFatal, __FILE__, __LINE__)

/// Aborts with a diagnostic if `condition` is false. Enabled in all
/// build types: corroboration invariants are cheap relative to the
/// numeric work, and silent corruption of trust scores is worse than
/// a crash.
#define CORROB_CHECK(condition) \
  if (!(condition)) CORROB_LOG_FATAL << "Check failed: " #condition " "

/// Aborts if `expr` (a Status expression) is not OK. The fatal line
/// names both the expression and the failing status so the log alone
/// pinpoints the call site and the cause.
#define CORROB_CHECK_OK(expr)                                       \
  if (::corrob::Status _corrob_chk = (expr); !_corrob_chk.ok())     \
  CORROB_LOG_FATAL << "Check failed (status): " << #expr << " = "   \
                   << _corrob_chk.ToString() << " "

/// Debug-only check for hot paths.
#ifndef NDEBUG
#define CORROB_DCHECK(condition) CORROB_CHECK(condition)
#else
#define CORROB_DCHECK(condition) \
  if (false && !(condition)) CORROB_LOG_FATAL << ""
#endif

}  // namespace corrob

#endif  // CORROB_COMMON_LOGGING_H_
