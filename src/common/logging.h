#ifndef CORROB_COMMON_LOGGING_H_
#define CORROB_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace corrob {
namespace internal_logging {

/// Severity of a log line. kFatal aborts the process after logging.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Stream-style log sink: accumulates a message and emits it (to
/// stderr, as one write, so concurrent threads never interleave
/// mid-line) on destruction. Used through the CORROB_LOG/CHECK macros.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Returns the minimum level that will actually be emitted. The
/// initial value comes from the CORROB_LOG_LEVEL environment variable
/// ("debug"/"info"/"warning"/"error"/"fatal" or 0-4, case-insensitive,
/// read once at first use); it defaults to kInfo when unset or
/// unparseable.
LogLevel MinLogLevel();

/// Sets the minimum emitted level, overriding CORROB_LOG_LEVEL.
/// Thread-compatible: set it once at startup.
void SetMinLogLevel(LogLevel level);

/// Parses a CORROB_LOG_LEVEL-style spelling. Returns false (leaving
/// `out` untouched) when `text` is not a recognised level.
bool ParseLogLevel(const std::string& text, LogLevel* out);

/// Returns true on the 1st, (n+1)th, (2n+1)th... call for a given
/// call-site counter. n <= 1 always returns true. Backs the
/// CORROB_LOG_EVERY_N macro; not meant to be called directly.
bool LogEveryNImpl(std::atomic<uint64_t>* counter, uint64_t n);

}  // namespace internal_logging

#define CORROB_LOG_DEBUG                                        \
  ::corrob::internal_logging::LogMessage(                      \
      ::corrob::internal_logging::LogLevel::kDebug, __FILE__, __LINE__)
#define CORROB_LOG_INFO                                         \
  ::corrob::internal_logging::LogMessage(                      \
      ::corrob::internal_logging::LogLevel::kInfo, __FILE__, __LINE__)
#define CORROB_LOG_WARNING                                      \
  ::corrob::internal_logging::LogMessage(                      \
      ::corrob::internal_logging::LogLevel::kWarning, __FILE__, __LINE__)
#define CORROB_LOG_ERROR                                        \
  ::corrob::internal_logging::LogMessage(                      \
      ::corrob::internal_logging::LogLevel::kError, __FILE__, __LINE__)
#define CORROB_LOG_FATAL                                        \
  ::corrob::internal_logging::LogMessage(                      \
      ::corrob::internal_logging::LogLevel::kFatal, __FILE__, __LINE__)

/// Rate-limited logging for hot loops: emits on the 1st, (n+1)th,
/// (2n+1)th... execution of this call site (per process, counted
/// across all threads). `severity` is a bare suffix: CORROB_LOG_EVERY_N(
/// WARNING, 1000) << "slow chunk";  The lambda gives each expansion its
/// own static counter without requiring a named helper per call site.
#define CORROB_LOG_EVERY_N(severity, n)                                   \
  for (bool corrob_log_hit = ::corrob::internal_logging::LogEveryNImpl(   \
           [] {                                                           \
             static ::std::atomic<uint64_t> corrob_log_count{0};          \
             return &corrob_log_count;                                    \
           }(),                                                           \
           static_cast<uint64_t>(n));                                     \
       corrob_log_hit; corrob_log_hit = false)                            \
  CORROB_LOG_##severity

/// Aborts with a diagnostic if `condition` is false. Enabled in all
/// build types: corroboration invariants are cheap relative to the
/// numeric work, and silent corruption of trust scores is worse than
/// a crash.
#define CORROB_CHECK(condition) \
  if (!(condition)) CORROB_LOG_FATAL << "Check failed: " #condition " "

/// Aborts if `expr` (a Status expression) is not OK. The fatal line
/// names both the expression and the failing status so the log alone
/// pinpoints the call site and the cause.
#define CORROB_CHECK_OK(expr)                                       \
  if (::corrob::Status _corrob_chk = (expr); !_corrob_chk.ok())     \
  CORROB_LOG_FATAL << "Check failed (status): " << #expr << " = "   \
                   << _corrob_chk.ToString() << " "

/// Debug-only check for hot paths.
#ifndef NDEBUG
#define CORROB_DCHECK(condition) CORROB_CHECK(condition)
#else
#define CORROB_DCHECK(condition) \
  if (false && !(condition)) CORROB_LOG_FATAL << ""
#endif

}  // namespace corrob

#endif  // CORROB_COMMON_LOGGING_H_
