#ifndef CORROB_COMMON_STRING_UTIL_H_
#define CORROB_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace corrob {

/// Splits `text` on `delimiter`, keeping empty fields.
/// Split("a,,b", ',') -> {"a", "", "b"}; Split("", ',') -> {""}.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Splits on any run of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// ASCII lower-casing (locale-independent).
std::string ToLower(std::string_view text);

/// ASCII upper-casing (locale-independent).
std::string ToUpper(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

}  // namespace corrob

#endif  // CORROB_COMMON_STRING_UTIL_H_
