#ifndef CORROB_COMMON_FLAGS_H_
#define CORROB_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace corrob {

/// Minimal command-line flag parser for the example and benchmark
/// binaries. Accepts `--name=value`, `--name value` and bare boolean
/// `--name`; everything else is collected as a positional argument.
class FlagParser {
 public:
  /// Parses argv (excluding argv[0]). Returns an error on malformed
  /// input such as an empty flag name.
  [[nodiscard]] static Result<FlagParser> Parse(int argc, const char* const* argv);

  /// True if --name was present.
  bool Has(const std::string& name) const;

  /// String value of --name, or `fallback` when absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;

  /// Integer value of --name; aborts on a malformed integer.
  int64_t GetInt(const std::string& name, int64_t fallback) const;

  /// Integer value of --name, or `fallback` when absent. Unlike GetInt,
  /// a malformed value is an InvalidArgument error instead of a fatal
  /// abort — use this for user-facing flags that should produce a
  /// usage error.
  [[nodiscard]] Result<int64_t> TryGetInt(const std::string& name,
                                          int64_t fallback) const;

  /// Double value of --name; aborts on a malformed number.
  double GetDouble(const std::string& name, double fallback) const;

  /// Boolean value: bare flag or true/false/1/0.
  bool GetBool(const std::string& name, bool fallback) const;

  /// Arguments that were not flags, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace corrob

#endif  // CORROB_COMMON_FLAGS_H_
