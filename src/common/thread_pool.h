#ifndef CORROB_COMMON_THREAD_POOL_H_
#define CORROB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace corrob {

/// Fixed-size worker pool for embarrassingly parallel experiment
/// sweeps (each Figure 3 cell is an independent generate+run+score).
/// Tasks must not throw; the library is exception-free by convention
/// and a throwing task would terminate the process.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (values < 1 are clamped to 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after Shutdown().
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  /// Drains and joins. Idempotent; implied by the destructor.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable work_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int64_t in_flight_ = 0;  // queued + currently executing
  bool shutting_down_ = false;
};

/// Runs fn(i) for i in [0, count) across `num_threads` workers and
/// blocks until all iterations complete. `fn` must be safe to call
/// concurrently for distinct i.
void ParallelFor(int64_t count, int num_threads,
                 const std::function<void(int64_t)>& fn);

/// A reasonable worker count for compute-bound sweeps.
int DefaultThreadCount();

}  // namespace corrob

#endif  // CORROB_COMMON_THREAD_POOL_H_
