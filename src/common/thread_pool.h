#ifndef CORROB_COMMON_THREAD_POOL_H_
#define CORROB_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/budget.h"
#include "common/thread_annotations.h"

namespace corrob {

/// Fixed-size worker pool for embarrassingly parallel experiment
/// sweeps (each Figure 3 cell is an independent generate+run+score).
/// Tasks must not throw; the library is exception-free by convention
/// and a throwing task would terminate the process.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (values < 1 are clamped to 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Calling after Shutdown() is a logged no-op: the
  /// task is dropped, never executed (callers that need the work done
  /// must submit before shutting down).
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  /// Drains and joins. Idempotent; implied by the destructor.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable work_done_;
  std::deque<std::function<void()>> queue_ CORROB_GUARDED_BY(mutex_);
  /// Written only by the constructor and joined by Shutdown(); never
  /// touched by workers, so it needs no mutex_ guard.
  std::vector<std::thread> workers_;
  /// Queued + currently executing.
  int64_t in_flight_ CORROB_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ CORROB_GUARDED_BY(mutex_) = false;
};

/// Runs fn(i) for i in [0, count) across `num_threads` workers and
/// blocks until all iterations complete. `fn` must be safe to call
/// concurrently for distinct i.
void ParallelFor(int64_t count, int num_threads,
                 const std::function<void(int64_t)>& fn);

/// Runs fn(begin, end) over disjoint contiguous ranges covering
/// [0, count) and blocks until every range has been processed. With a
/// null `pool` (or a single-worker pool, or count == 1) the whole
/// range runs inline as fn(0, count) — the sequential legacy path.
/// `fn` must only touch state owned by indices inside its range; under
/// that contract every element is computed exactly as in a sequential
/// loop, so results are bit-identical at any worker count.
///
/// `stop` (optional) is polled at chunk boundaries: once it fires,
/// chunks that have not started are skipped and the call returns
/// false. A sweep cut short this way has written an unspecified
/// subset of its outputs — callers must discard the partial sweep
/// (e.g. restore a snapshot) before handing results out; the
/// determinism contract only covers completed sweeps. Returns true
/// when every range ran.
bool ParallelApply(ThreadPool* pool, int64_t count,
                   const std::function<void(int64_t, int64_t)>& fn,
                   const StopSignal* stop = nullptr);

/// Deterministic parallel reduction over [0, count).
///
/// The range is split into fixed-size chunks of `grain` indices — a
/// layout that depends only on `count` and `grain`, never on the
/// worker count or scheduling. Each chunk's partial value is computed
/// by `map(begin, end)` sequentially in ascending index order, and the
/// partials are folded with `combine` in ascending *chunk* order:
///
///   result = combine(...combine(combine(init, m0), m1)..., mK)
///
/// Because both the chunk layout and the combination order are fixed,
/// the result is bit-identical for every pool size, including the
/// pool-less inline path — never use atomics on doubles for this.
template <typename T, typename Map, typename Combine>
T DeterministicReduce(ThreadPool* pool, int64_t count, int64_t grain, T init,
                      const Map& map, const Combine& combine) {
  if (count <= 0) return init;
  grain = std::max<int64_t>(1, grain);
  const int64_t num_chunks = (count + grain - 1) / grain;
  std::vector<T> partials(static_cast<size_t>(num_chunks));
  if (pool == nullptr || pool->num_threads() <= 1 || num_chunks == 1) {
    for (int64_t c = 0; c < num_chunks; ++c) {
      partials[static_cast<size_t>(c)] =
          map(c * grain, std::min(count, (c + 1) * grain));
    }
  } else {
    for (int64_t c = 0; c < num_chunks; ++c) {
      pool->Submit([&partials, &map, c, grain, count] {
        partials[static_cast<size_t>(c)] =
            map(c * grain, std::min(count, (c + 1) * grain));
      });
    }
    pool->Wait();
  }
  T acc = init;
  for (int64_t c = 0; c < num_chunks; ++c) {
    acc = combine(acc, partials[static_cast<size_t>(c)]);
  }
  return acc;
}

/// A reasonable worker count for compute-bound sweeps.
int DefaultThreadCount();

}  // namespace corrob

#endif  // CORROB_COMMON_THREAD_POOL_H_
