#ifndef CORROB_COMMON_RESULT_H_
#define CORROB_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace corrob {

/// Either a value of type T or an error Status — the return type of
/// fallible factory/parse functions throughout the library.
///
/// Usage:
///   Result<Dataset> r = LoadDataset(path);
///   if (!r.ok()) return r.status();
///   Dataset d = std::move(r).ValueOrDie();
/// Like Status, the class is [[nodiscard]]: ignoring a returned
/// Result<T> silently drops both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result holding `value`.
  // NOLINTNEXTLINE(google-explicit-constructor): implicit `return value;` is the idiom
  Result(T value)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs a failed result. `status` must not be OK.
  // NOLINTNEXTLINE(google-explicit-constructor): implicit `return status;` is the idiom
  Result(Status status)
      : status_(std::move(status)) {
    CORROB_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  /// Returns the value; aborts the process if the result holds an error.
  const T& ValueOrDie() const& {
    CORROB_CHECK(ok()) << "Result::ValueOrDie on error: " << status_.ToString();
    return *value_;
  }
  T& ValueOrDie() & {
    CORROB_CHECK(ok()) << "Result::ValueOrDie on error: " << status_.ToString();
    return *value_;
  }
  T ValueOrDie() && {
    CORROB_CHECK(ok()) << "Result::ValueOrDie on error: " << status_.ToString();
    return std::move(*value_);
  }

  /// Returns the value if OK, otherwise `fallback`.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its
/// error Status from the enclosing function.
#define CORROB_ASSIGN_OR_RETURN(lhs, expr)          \
  auto CORROB_CONCAT_(_corrob_result_, __LINE__) = (expr); \
  if (!CORROB_CONCAT_(_corrob_result_, __LINE__).ok())     \
    return CORROB_CONCAT_(_corrob_result_, __LINE__).status(); \
  lhs = std::move(CORROB_CONCAT_(_corrob_result_, __LINE__)).ValueOrDie()

#define CORROB_CONCAT_IMPL_(a, b) a##b
#define CORROB_CONCAT_(a, b) CORROB_CONCAT_IMPL_(a, b)

}  // namespace corrob

#endif  // CORROB_COMMON_RESULT_H_
