#include "common/logging.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace corrob {
namespace internal_logging {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

LogLevel InitialLevel() {
  const char* env = std::getenv("CORROB_LOG_LEVEL");
  LogLevel level = LogLevel::kInfo;
  if (env != nullptr) ParseLogLevel(env, &level);
  return level;
}

LogLevel& MinLevelRef() {
  static LogLevel level = InitialLevel();
  return level;
}

}  // namespace

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "0") {
    *out = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn" || lower == "2") {
    *out = LogLevel::kWarning;
  } else if (lower == "error" || lower == "3") {
    *out = LogLevel::kError;
  } else if (lower == "fatal" || lower == "4") {
    *out = LogLevel::kFatal;
  } else {
    return false;
  }
  return true;
}

bool LogEveryNImpl(std::atomic<uint64_t>* counter, uint64_t n) {
  uint64_t count = counter->fetch_add(1, std::memory_order_relaxed);
  if (n <= 1) return true;
  return count % n == 0;
}

LogLevel MinLogLevel() { return MinLevelRef(); }

void SetMinLogLevel(LogLevel level) { MinLevelRef() = level; }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLevelRef() || level_ == LogLevel::kFatal) {
    // One fwrite of the fully formed line: concurrent loggers may
    // interleave whole lines but never characters within a line.
    std::string message = stream_.str();
    message.push_back('\n');
    std::fwrite(message.data(), 1, message.size(), stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace corrob
