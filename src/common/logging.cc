#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace corrob {
namespace internal_logging {

namespace {

LogLevel g_min_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

LogLevel MinLogLevel() { return g_min_level; }

void SetMinLogLevel(LogLevel level) { g_min_level = level; }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_min_level || level_ == LogLevel::kFatal) {
    std::string message = stream_.str();
    std::fprintf(stderr, "%s\n", message.c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace corrob
