#include "common/socket.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>

namespace corrob {

namespace {

/// One poll slice: short enough that a fired StopSignal unblocks
/// promptly, long enough that an idle wait costs nothing measurable.
constexpr int kPollSliceMs = 20;

std::string ErrnoText(const char* operation) {
  return std::string(operation) + " failed: " + ::strerror(errno);
}

/// Waits until `fd` is ready for `events` (POLLIN/POLLOUT) or `stop`
/// fires. OK = ready; Cancelled = stop fired first; IoError = the
/// descriptor is dead (POLLERR/POLLNVAL without data to drain).
Status PollWithStop(int fd, short events, const StopSignal& stop) {
  while (true) {
    if (stop.ShouldStop()) {
      return Status::Cancelled(stop.cancelled()
                                   ? "socket wait cancelled"
                                   : "socket wait deadline expired");
    }
    struct pollfd entry;
    entry.fd = fd;
    entry.events = events;
    entry.revents = 0;
    const int ready = ::poll(&entry, 1, kPollSliceMs);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: re-check stop, re-poll
      return Status::IoError(ErrnoText("poll"));
    }
    if (ready == 0) continue;  // slice elapsed: re-check stop
    if ((entry.revents & POLLNVAL) != 0) {
      return Status::IoError("poll: invalid descriptor");
    }
    // POLLERR/POLLHUP fall through to the read/write call, which
    // reports the real error (or the EOF) with errno context.
    return Status::OK();
  }
}

}  // namespace

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Result<UniqueFd> ListenUnixSocket(const std::string& path, int backlog) {
  struct sockaddr_un address;
  if (path.empty() || path.size() >= sizeof(address.sun_path)) {
    return Status::InvalidArgument(
        "socket path must be 1.." +
        std::to_string(sizeof(address.sun_path) - 1) + " bytes, got " +
        std::to_string(path.size()));
  }
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::IoError(ErrnoText("socket"));
  // A previous daemon that crashed leaves the socket file behind;
  // binding over it needs the unlink (a live daemon still holds the
  // listening socket, so this does not steal its traffic, but two
  // daemons on one path are a deployment error this cannot detect).
  ::unlink(path.c_str());
  ::memset(&address, 0, sizeof(address));
  address.sun_family = AF_UNIX;
  ::memcpy(address.sun_path, path.c_str(), path.size());
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&address),
             sizeof(address)) != 0) {
    return Status::IoError(ErrnoText("bind") + " (path " + path + ")");
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Status::IoError(ErrnoText("listen"));
  }
  return fd;
}

Result<UniqueFd> AcceptWithStop(int listener_fd, const StopSignal& stop) {
  while (true) {
    CORROB_RETURN_NOT_OK(PollWithStop(listener_fd, POLLIN, stop));
    const int fd = ::accept(listener_fd, nullptr, nullptr);
    if (fd >= 0) return UniqueFd(fd);
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      continue;  // client gave up between poll and accept
    }
    return Status::IoError(ErrnoText("accept"));
  }
}

Result<UniqueFd> ConnectUnixSocket(const std::string& path) {
  struct sockaddr_un address;
  if (path.empty() || path.size() >= sizeof(address.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::IoError(ErrnoText("socket"));
  ::memset(&address, 0, sizeof(address));
  address.sun_family = AF_UNIX;
  ::memcpy(address.sun_path, path.c_str(), path.size());
  if (::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&address),
                sizeof(address)) != 0) {
    return Status::IoError(ErrnoText("connect") + " (path " + path + ")");
  }
  return fd;
}

Result<bool> ReadExactOrEof(int fd, void* buffer, size_t length,
                            const StopSignal& stop) {
  uint8_t* out = static_cast<uint8_t*>(buffer);
  size_t done = 0;
  while (done < length) {
    CORROB_RETURN_NOT_OK(PollWithStop(fd, POLLIN, stop));
    const ssize_t got = ::recv(fd, out + done, length - done, 0);
    if (got > 0) {
      done += static_cast<size_t>(got);
      continue;
    }
    if (got == 0) {
      if (done == 0) return false;  // clean close between messages
      return Status::ConnectionLost("connection closed mid-read (" +
                                    std::to_string(done) + " of " +
                                    std::to_string(length) + " bytes)");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
      continue;
    }
    return Status::IoError(ErrnoText("recv"));
  }
  return true;
}

Status ReadExact(int fd, void* buffer, size_t length,
                 const StopSignal& stop) {
  CORROB_ASSIGN_OR_RETURN(bool complete,
                          ReadExactOrEof(fd, buffer, length, stop));
  if (!complete) {
    return Status::IoError("connection closed before any byte of a " +
                           std::to_string(length) + "-byte read");
  }
  return Status::OK();
}

Status WriteAll(int fd, const void* buffer, size_t length,
                const StopSignal& stop) {
  const uint8_t* in = static_cast<const uint8_t*>(buffer);
  size_t done = 0;
  while (done < length) {
    CORROB_RETURN_NOT_OK(PollWithStop(fd, POLLOUT, stop));
    const ssize_t put =
        ::send(fd, in + done, length - done, MSG_NOSIGNAL);
    if (put > 0) {
      done += static_cast<size_t>(put);
      continue;
    }
    if (put < 0 &&
        (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    if (put < 0 && errno == EPIPE) {
      return Status::IoError("connection closed by peer mid-write (" +
                             std::to_string(done) + " of " +
                             std::to_string(length) + " bytes)");
    }
    return Status::IoError(ErrnoText("send"));
  }
  return Status::OK();
}

bool PeerClosed(int fd) {
  struct pollfd entry;
  entry.fd = fd;
  entry.events = POLLIN;
  entry.revents = 0;
  if (::poll(&entry, 1, 0) <= 0) return false;
  if ((entry.revents & (POLLERR | POLLNVAL)) != 0) return true;
  if ((entry.revents & (POLLIN | POLLHUP)) == 0) return false;
  // Readable: distinguish pending bytes (protocol violation handled
  // elsewhere) from EOF without consuming either.
  uint8_t probe;
  const ssize_t got = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
  return got == 0;
}

}  // namespace corrob
