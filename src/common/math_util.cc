#include "common/math_util.h"

#include <cmath>

#include "common/logging.h"

namespace corrob {

double BinaryEntropy(double p) {
  p = Clamp(p, 0.0, 1.0);
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

double Clamp(double value, double lo, double hi) {
  if (value < lo) return lo;
  if (value > hi) return hi;
  return value;
}

double Mean(const std::vector<double>& values, double empty_value) {
  if (values.empty()) return empty_value;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double sum = 0.0;
  for (double v : values) sum += (v - mean) * (v - mean);
  return sum / static_cast<double>(values.size());
}

double MeanSquaredError(const std::vector<double>& expected,
                        const std::vector<double>& actual) {
  CORROB_CHECK(expected.size() == actual.size())
      << "MSE size mismatch: " << expected.size() << " vs " << actual.size();
  if (expected.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < expected.size(); ++i) {
    double d = expected[i] - actual[i];
    sum += d * d;
  }
  return sum / static_cast<double>(expected.size());
}

double Log1pExp(double x) {
  if (x > 0.0) return x + std::log1p(std::exp(-x));
  return std::log1p(std::exp(x));
}

double Sigmoid(double x) {
  if (x >= 0.0) {
    double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(x);
  return e / (1.0 + e);
}

bool NearlyEqual(double a, double b, double tolerance) {
  return std::fabs(a - b) <= tolerance;
}

}  // namespace corrob
