#ifndef CORROB_COMMON_FAILPOINT_H_
#define CORROB_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace corrob {

/// How an armed failpoint decides whether a hit fails.
///
/// A hit first consumes `skip` passes, then fails up to `max_failures`
/// times (-1 = unlimited); when `probability` < 1 each eligible hit
/// fails with that probability drawn from a deterministic, seeded
/// stream so fault schedules are reproducible bit-for-bit.
struct FailpointConfig {
  StatusCode code = StatusCode::kIoError;
  /// Message of the injected Status; defaults to
  /// "injected failure at '<name>'".
  std::string message;
  /// Number of initial hits that pass before failures start.
  int64_t skip = 0;
  /// Number of failures to inject after `skip`; -1 means unlimited.
  int64_t max_failures = -1;
  /// Probability that an eligible hit fails (deterministic PRNG).
  double probability = 1.0;
  /// Seed of the per-failpoint probability stream.
  uint64_t seed = 0x9E3779B97F4A7C15ULL;
};

/// Process-wide registry of named fault-injection points.
///
/// Production code marks an injectable failure site with
/// `CORROB_FAILPOINT("module.operation")`; tests and the CLI arm sites
/// by name to simulate crashes, flaky disks, or probabilistic faults.
/// When nothing is armed the macro is a single relaxed atomic load and
/// a predictable branch — effectively free on hot paths — and the
/// whole facility compiles to nothing under CORROB_DISABLE_FAILPOINTS.
///
/// All members are thread-safe.
class Failpoints {
 public:
  /// Arms (or re-arms) `name` with `config`, resetting its counters.
  static void Arm(const std::string& name, FailpointConfig config = {});

  /// Arms one failpoint from a spec string:
  ///   <name>=<mode>[:<option>...]
  /// modes:    off | fail | fail:<N> | prob:<P>
  /// options:  code=<StatusCodeName> | skip=<N> | seed=<N>
  /// e.g. "dataset_io.save=fail:2:code=IoError:skip=1".
  [[nodiscard]] static Status ArmFromSpec(std::string_view spec);

  /// Arms a comma-separated list of specs; stops at the first bad one.
  [[nodiscard]] static Status ArmFromSpecList(std::string_view specs);

  /// Disarms `name`; hits become free again. No-op when not armed.
  static void Disarm(const std::string& name);

  /// Disarms every failpoint (test teardown).
  static void DisarmAll();

  static bool IsArmed(const std::string& name);

  /// Hits observed while armed (both passed and failed).
  static int64_t HitCount(const std::string& name);

  /// Failures injected so far.
  static int64_t FailureCount(const std::string& name);

  /// Names of currently armed failpoints, sorted.
  static std::vector<std::string> ArmedNames();

  /// True when at least one failpoint is armed (lock-free fast path).
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Evaluates a hit on `name`: OK when disarmed or passing, the
  /// configured error Status when the hit fails. Called via the
  /// CORROB_FAILPOINT macro; callable directly from test helpers.
  [[nodiscard]] static Status Check(const char* name);

 private:
  static std::atomic<int64_t> armed_count_;
};

#ifdef CORROB_DISABLE_FAILPOINTS
#define CORROB_FAILPOINT(name) \
  do {                         \
  } while (false)
#else
/// Marks a fault-injection site inside a function returning Status or
/// Result<T>: returns the injected error when `name` is armed and the
/// hit fails, otherwise falls through.
#define CORROB_FAILPOINT(name)                                          \
  do {                                                                  \
    if (::corrob::Failpoints::AnyArmed()) {                             \
      ::corrob::Status _corrob_failpoint_status =                       \
          ::corrob::Failpoints::Check(name);                            \
      if (!_corrob_failpoint_status.ok())                               \
        return _corrob_failpoint_status;                                \
    }                                                                   \
  } while (false)
#endif

/// RAII helper for tests: disarms every failpoint on destruction so a
/// failing test cannot leak armed faults into later tests.
class ScopedFailpointDisarmer {
 public:
  ScopedFailpointDisarmer() = default;
  ~ScopedFailpointDisarmer() { Failpoints::DisarmAll(); }
  ScopedFailpointDisarmer(const ScopedFailpointDisarmer&) = delete;
  ScopedFailpointDisarmer& operator=(const ScopedFailpointDisarmer&) = delete;
};

}  // namespace corrob

#endif  // CORROB_COMMON_FAILPOINT_H_
