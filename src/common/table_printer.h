#ifndef CORROB_COMMON_TABLE_PRINTER_H_
#define CORROB_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace corrob {

/// Renders aligned ASCII tables for benchmark and example output,
/// mirroring the tables in the paper.
///
///   TablePrinter t({"Method", "Precision", "Recall"});
///   t.AddRow({"Voting", "0.65", "1.00"});
///   std::cout << t.ToString();
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells abort.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `digits` decimals.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int digits = 2);

  /// Adds a horizontal separator line before the next row.
  void AddSeparator();

  /// Renders the table with a header rule and column padding.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

}  // namespace corrob

#endif  // CORROB_COMMON_TABLE_PRINTER_H_
