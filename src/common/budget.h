#ifndef CORROB_COMMON_BUDGET_H_
#define CORROB_COMMON_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>

#include "common/status.h"
#include "obs/clock.h"

// Execution-budget primitives: cooperative cancellation, wall-clock
// deadlines over an injected obs::Clock, and declarative resource
// budgets. These are the building blocks of core/run_context.h, which
// bundles them into the RunContext threaded through every
// Corroborator::Run. Everything here is polling-based — no thread is
// ever interrupted preemptively — so a run that honors its budget is
// interrupted only at well-defined sequential boundaries and can hand
// back a consistent best-so-far answer.
//
// Lock discipline: this header deliberately owns no mutexes — every
// type is built from atomics (Cancel() must be async-signal-safe, so
// it can never take a lock), which is why nothing here carries
// common/thread_annotations.h capability annotations. Keep it that
// way: code that wants a lock around budget state belongs above this
// layer.

namespace corrob {

/// Thread-safe cooperative cancellation flag.
///
/// A token starts live and latches cancelled forever once Cancel() is
/// called (from any thread, including a signal handler: Cancel is a
/// single atomic store). Tokens form an optional hierarchy: a child
/// constructed with a parent reports cancelled when either itself or
/// any ancestor is cancelled, so a process-wide shutdown token fans
/// out to every in-flight run without the runs sharing mutable state.
class CancellationToken {
 public:
  CancellationToken() = default;
  /// A child token: cancelled when `parent` (or any of its ancestors)
  /// is cancelled, or when Cancel() is called on this token directly.
  /// `parent` must outlive this token; may be null (no parent).
  explicit CancellationToken(const CancellationToken* parent)
      : parent_(parent) {}

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Latches the token cancelled. Idempotent and async-signal-safe.
  /// `now_nanos`, when positive, records when the cancel was requested
  /// (used to measure cancellation latency); the first caller wins.
  void Cancel(int64_t now_nanos = 0);

  /// True once this token or any ancestor has been cancelled.
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return parent_ != nullptr && parent_->cancelled();
  }

  /// Timestamp passed to the first effective Cancel(), or 0 when none
  /// was provided. Walks to the nearest cancelled ancestor if this
  /// token itself was not cancelled directly.
  int64_t cancelled_at_nanos() const;

  /// Interruptible sleep: waits up to `milliseconds`, polling the
  /// token, and returns true if the wait was cut short by
  /// cancellation (false after a full, uninterrupted sleep).
  bool WaitForMs(double milliseconds) const;

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> cancelled_at_nanos_{0};
  const CancellationToken* parent_ = nullptr;
};

/// A wall-clock budget over an injected clock. Default-constructed
/// deadlines are infinite and never expire; bounded deadlines hold a
/// `const obs::Clock*` (must outlive the deadline) plus an absolute
/// expiry instant on that clock, so tests drive expiry with a
/// ManualClock and never sleep.
class Deadline {
 public:
  /// Infinite: never expires.
  Deadline() = default;

  /// Expires `budget_nanos` after `clock`'s current instant.
  static Deadline After(const obs::Clock* clock, int64_t budget_nanos);
  /// Convenience for CLI flags expressed in milliseconds.
  static Deadline AfterMs(const obs::Clock* clock, double milliseconds);

  bool infinite() const { return clock_ == nullptr; }
  bool expired() const {
    return clock_ != nullptr && clock_->NowNanos() >= deadline_nanos_;
  }
  /// Nanoseconds of budget left (>= 0); int64 max when infinite.
  int64_t remaining_nanos() const;

 private:
  const obs::Clock* clock_ = nullptr;
  int64_t deadline_nanos_ = 0;
};

/// Declarative resource caps. 0 means unlimited. These are budgets,
/// not interrupts: a run that exhausts one stops at the next
/// sequential boundary with Termination::kBudgetExhausted and a
/// consistent partial answer.
struct ResourceBudget {
  /// Maximum fixpoint iterations / Gibbs sweeps / IncEstimate rounds.
  int64_t max_rounds = 0;
  /// Maximum resident bytes of the per-run VoteMatrix (CSR + CSC).
  int64_t max_vote_matrix_bytes = 0;
  /// Maximum facts an IncEstimate round may commit before the round
  /// is forced to end (bounds per-round latency and commit bursts).
  int64_t max_facts_per_round = 0;

  bool unlimited() const {
    return max_rounds == 0 && max_vote_matrix_bytes == 0 &&
           max_facts_per_round == 0;
  }
};

/// InvalidArgument describing the first negative field, OK otherwise.
[[nodiscard]] Status ValidateResourceBudget(const ResourceBudget& budget);

/// Cheap pollable view of "should this work stop?": cancellation plus
/// deadline, combined so hot loops (ParallelApply chunk boundaries,
/// CSV row batches) pay one pointer test when disarmed.
class StopSignal {
 public:
  StopSignal() = default;
  StopSignal(const CancellationToken* cancel, Deadline deadline)
      : cancel_(cancel), deadline_(deadline) {}

  bool armed() const { return cancel_ != nullptr || !deadline_.infinite(); }
  bool cancelled() const { return cancel_ != nullptr && cancel_->cancelled(); }
  bool deadline_expired() const { return deadline_.expired(); }
  bool ShouldStop() const { return cancelled() || deadline_expired(); }

  const CancellationToken* cancellation() const { return cancel_; }
  const Deadline& deadline() const { return deadline_; }

 private:
  const CancellationToken* cancel_ = nullptr;
  Deadline deadline_;
};

/// The process-wide shutdown token that InstallShutdownSignalHandlers
/// cancels on SIGINT/SIGTERM. Long-lived loops that should honor
/// Ctrl-C parent their run token on this one.
CancellationToken& ProcessShutdownToken();

/// RAII ownership of SIGINT/SIGTERM disposition. While a scope is
/// alive, the first shutdown signal cancels the scope's target token
/// (graceful stop) and a second one hard-exits with the configured
/// code (130 by default, the shell convention for SIGINT death).
/// Destruction restores the dispositions that were in effect when the
/// scope was constructed, so tests and embedders can install, observe
/// and fully undo signal handling without leaking global state.
///
/// Scopes nest: the innermost live scope receives signals; destroying
/// it re-activates the enclosing one. Scopes must be destroyed in
/// reverse construction order (stack discipline) and construction/
/// destruction must not race a concurrently delivered signal.
class ScopedShutdownHandlers {
 public:
  struct Options {
    /// The token the first signal cancels. Null targets the shared
    /// ProcessShutdownToken(). The token must outlive the scope.
    CancellationToken* token = nullptr;
    /// _exit code of the second signal (must be non-zero; a run that
    /// cannot poll its token is killed without cleanup).
    int second_signal_exit_code = 130;
  };

  ScopedShutdownHandlers() : ScopedShutdownHandlers(Options{}) {}
  explicit ScopedShutdownHandlers(Options options);
  ~ScopedShutdownHandlers();

  ScopedShutdownHandlers(const ScopedShutdownHandlers&) = delete;
  ScopedShutdownHandlers& operator=(const ScopedShutdownHandlers&) = delete;

  /// Shutdown signals received while this scope was the active one.
  int signal_count() const;

  /// The token this scope cancels on the first signal.
  CancellationToken& token() const;

  /// Implementation detail, public only so the signal handler (a
  /// namespace-scope extern "C" function) can name it.
  struct State;

 private:
  std::unique_ptr<State> state_;
};

/// Routes SIGINT and SIGTERM to ProcessShutdownToken().Cancel(): the
/// first signal requests graceful shutdown, a second one hard-exits
/// with status 130 (the shell convention for "killed by SIGINT") for
/// runs that are too wedged to poll. Idempotent; call once from
/// main(). Implemented as a process-lifetime ScopedShutdownHandlers —
/// binaries that need to *undo* installation (daemons draining, test
/// fixtures) construct a scope instead.
void InstallShutdownSignalHandlers();

/// Number of shutdown signals received by the active handler scope
/// (for tests and status reporting); 0 when none is installed.
int ShutdownSignalCount();

}  // namespace corrob

#endif  // CORROB_COMMON_BUDGET_H_
