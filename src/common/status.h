#ifndef CORROB_COMMON_STATUS_H_
#define CORROB_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace corrob {

/// Machine-readable category of a failure, modeled after the Status
/// idiom used by Arrow and RocksDB. The library never throws across
/// its public API; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kIoError = 6,
  kParseError = 7,
  kNotConverged = 8,
  kInternal = 9,
  kCancelled = 10,
  /// A per-tenant quota (QPS token bucket or concurrent-run slots)
  /// rejected the request; retry after the hint the frame carries.
  kQuotaExceeded = 11,
  /// The peer vanished mid-message: bytes of a frame were already on
  /// the wire when the connection died. Distinct from kIoError so
  /// clients can tell a dropped in-flight response from a socket that
  /// failed before anything was promised.
  kConnectionLost = 12,
  /// The write-ahead vote-delta log cannot accept appends (disk full,
  /// I/O failure). The daemon degrades to read-only serving: reads
  /// keep working from the resident dataset, mutations are rejected
  /// with this code until the WAL is healthy again.
  kWalUnavailable = 13,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus a contextual message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy for
/// the OK case (no allocation) and carry a message otherwise.
///
/// The class itself is [[nodiscard]]: every function returning a Status
/// by value must have its result checked, propagated, or explicitly
/// discarded with `(void)` plus a `// lint: discard-ok: <reason>`
/// comment (enforced by -Werror and tools/lint/corrob_lint.py).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per StatusCode.
  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  [[nodiscard]] static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  [[nodiscard]] static Status QuotaExceeded(std::string msg) {
    return Status(StatusCode::kQuotaExceeded, std::move(msg));
  }
  [[nodiscard]] static Status ConnectionLost(std::string msg) {
    return Status(StatusCode::kConnectionLost, std::move(msg));
  }
  [[nodiscard]] static Status WalUnavailable(std::string msg) {
    return Status(StatusCode::kWalUnavailable, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Evaluates `expr` (a Status expression) and returns it from the
/// enclosing function if it is not OK.
#define CORROB_RETURN_NOT_OK(expr)                \
  do {                                            \
    ::corrob::Status _corrob_status = (expr);     \
    if (!_corrob_status.ok()) return _corrob_status; \
  } while (false)

}  // namespace corrob

#endif  // CORROB_COMMON_STATUS_H_
