#include "common/csv.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"

namespace corrob {

Result<CsvDocument> ParseCsv(std::string_view text, char delimiter) {
  // Strip a UTF-8 BOM; spreadsheet exports prepend one and it would
  // otherwise become part of the first header cell.
  constexpr std::string_view kUtf8Bom = "\xEF\xBB\xBF";
  if (text.substr(0, kUtf8Bom.size()) == kUtf8Bom) {
    text.remove_prefix(kUtf8Bom.size());
  }
  CsvDocument doc;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  bool row_started = false;

  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&]() {
    end_field();
    doc.rows.push_back(std::move(row));
    row.clear();
    row_started = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"') {
      if (field_started && !field.empty()) {
        return Status::ParseError("quote inside unquoted field at offset " +
                                  std::to_string(i));
      }
      in_quotes = true;
      field_started = true;
      row_started = true;
    } else if (c == delimiter) {
      end_field();
      row_started = true;
    } else if (c == '\n') {
      end_row();
    } else if (c == '\r') {
      // Swallow \r of \r\n; a bare \r also terminates the row.
      end_row();
      if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
    } else {
      field += c;
      field_started = true;
      row_started = true;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted field at end of input");
  }
  if (row_started || field_started || !row.empty()) {
    end_row();
  }
  return doc;
}

namespace {

bool NeedsQuoting(const std::string& field, char delimiter) {
  for (char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

std::string WriteCsv(const std::vector<std::vector<std::string>>& rows,
                     char delimiter) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += delimiter;
      if (NeedsQuoting(row[i], delimiter)) {
        out += '"';
        for (char c : row[i]) {
          if (c == '"') out += '"';
          out += c;
        }
        out += '"';
      } else {
        out += row[i];
      }
    }
    out += '\n';
  }
  return out;
}

Result<CsvDocument> ReadCsvFile(const std::string& path, char delimiter) {
  CORROB_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  return ParseCsv(contents, delimiter);
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    char delimiter) {
  return WriteStringToFile(path, WriteCsv(rows, delimiter));
}

Result<std::string> ReadFileToString(const std::string& path) {
  CORROB_FAILPOINT("io.read_file.open");
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // A file that does not exist is a caller-visible condition distinct
    // from a disk that cannot be read (only the latter is transient).
    struct stat info;
    if (::stat(path.c_str(), &info) != 0 && errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::IoError("cannot open for reading: " + path);
  }
  CORROB_FAILPOINT("io.read_file.read");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return buffer.str();
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  return WriteFileAtomic(path, contents);
}

namespace {

/// Writes + fsyncs the temp file; the caller owns cleanup on failure.
Status WriteTempFile(const std::string& tmp_path,
                     std::string_view contents) {
  CORROB_FAILPOINT("io.atomic_write.open");
  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open for writing: " + tmp_path + ": " +
                           std::strerror(errno));
  }
  Status status = [&]() -> Status {
    CORROB_FAILPOINT("io.atomic_write.write");
    size_t written = 0;
    while (written < contents.size()) {
      ssize_t n = ::write(fd, contents.data() + written,
                          contents.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("write failed: " + tmp_path + ": " +
                               std::strerror(errno));
      }
      written += static_cast<size_t>(n);
    }
    CORROB_FAILPOINT("io.atomic_write.fsync");
    if (::fsync(fd) != 0) {
      return Status::IoError("fsync failed: " + tmp_path + ": " +
                             std::strerror(errno));
    }
    return Status::OK();
  }();
  if (::close(fd) != 0 && status.ok()) {
    status = Status::IoError("close failed: " + tmp_path + ": " +
                             std::strerror(errno));
  }
  return status;
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp_path = path + ".tmp";
  Status status = WriteTempFile(tmp_path, contents);
  if (status.ok()) {
    status = [&]() -> Status {
      CORROB_FAILPOINT("io.atomic_write.rename");
      if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
        return Status::IoError("rename failed: " + tmp_path + " -> " + path +
                               ": " + std::strerror(errno));
      }
      return Status::OK();
    }();
  }
  if (!status.ok()) ::unlink(tmp_path.c_str());
  return status;
}

}  // namespace corrob
