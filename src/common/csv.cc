#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace corrob {

Result<CsvDocument> ParseCsv(std::string_view text, char delimiter) {
  CsvDocument doc;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  bool row_started = false;

  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&]() {
    end_field();
    doc.rows.push_back(std::move(row));
    row.clear();
    row_started = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"') {
      if (field_started && !field.empty()) {
        return Status::ParseError("quote inside unquoted field at offset " +
                                  std::to_string(i));
      }
      in_quotes = true;
      field_started = true;
      row_started = true;
    } else if (c == delimiter) {
      end_field();
      row_started = true;
    } else if (c == '\n') {
      end_row();
    } else if (c == '\r') {
      // Swallow \r of \r\n; a bare \r also terminates the row.
      end_row();
      if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
    } else {
      field += c;
      field_started = true;
      row_started = true;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted field at end of input");
  }
  if (row_started || field_started || !row.empty()) {
    end_row();
  }
  return doc;
}

namespace {

bool NeedsQuoting(const std::string& field, char delimiter) {
  for (char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

std::string WriteCsv(const std::vector<std::vector<std::string>>& rows,
                     char delimiter) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += delimiter;
      if (NeedsQuoting(row[i], delimiter)) {
        out += '"';
        for (char c : row[i]) {
          if (c == '"') out += '"';
          out += c;
        }
        out += '"';
      } else {
        out += row[i];
      }
    }
    out += '\n';
  }
  return out;
}

Result<CsvDocument> ReadCsvFile(const std::string& path, char delimiter) {
  CORROB_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  return ParseCsv(contents, delimiter);
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    char delimiter) {
  return WriteStringToFile(path, WriteCsv(rows, delimiter));
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return buffer.str();
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace corrob
