#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace corrob {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  // xoshiro256** by Blackman & Vigna (public domain reference).
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  CORROB_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBelow(uint64_t n) {
  CORROB_CHECK(n > 0) << "NextBelow(0)";
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CORROB_CHECK(lo <= hi) << "UniformInt with lo > hi";
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller: draw u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

Rng Rng::Fork() { return Rng(NextUint64() ^ 0xD2B74407B1CE6E93ULL); }

}  // namespace corrob
