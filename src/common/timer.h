#ifndef CORROB_COMMON_TIMER_H_
#define CORROB_COMMON_TIMER_H_

#include <cstdint>

#include "obs/clock.h"

namespace corrob {

/// Monotonic nanosecond stopwatch with pause/resume, over an
/// injectable obs::Clock — the one duration primitive for benches and
/// instrumented library code. Deterministic code takes the clock as a
/// parameter (a null clock means "don't time": every reading is 0 and
/// the control flow is identical), so wall time never leaks into
/// src/core except through an explicitly injected boundary; tests
/// drive it with obs::ManualClock.
class StopwatchNs {
 public:
  /// Starts running on `clock` (null → never advances).
  explicit StopwatchNs(const obs::Clock* clock)
      : clock_(clock), running_(clock != nullptr) {
    if (running_) start_nanos_ = clock_->NowNanos();
  }

  /// Starts running on the real monotonic clock.
  StopwatchNs() : StopwatchNs(obs::MonotonicClock::Get()) {}

  /// Stops accumulating; ElapsedNanos() freezes. No-op when already
  /// paused (or clock-less).
  void Pause() {
    if (!running_) return;
    accumulated_nanos_ += clock_->NowNanos() - start_nanos_;
    running_ = false;
  }

  /// Resumes accumulating after Pause(). No-op when already running
  /// or clock-less.
  void Resume() {
    if (running_ || clock_ == nullptr) return;
    start_nanos_ = clock_->NowNanos();
    running_ = true;
  }

  /// Zeroes the accumulated time and restarts (keeps the pause state
  /// of a paused watch).
  void Reset() {
    accumulated_nanos_ = 0;
    if (running_) start_nanos_ = clock_->NowNanos();
  }

  bool running() const { return running_; }

  /// Nanoseconds accumulated while running.
  int64_t ElapsedNanos() const {
    int64_t total = accumulated_nanos_;
    if (running_) total += clock_->NowNanos() - start_nanos_;
    return total;
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

 private:
  const obs::Clock* clock_;
  int64_t start_nanos_ = 0;
  int64_t accumulated_nanos_ = 0;
  bool running_ = false;
};

}  // namespace corrob

#endif  // CORROB_COMMON_TIMER_H_
