#include "common/failpoint.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

#include "common/random.h"
#include "common/string_util.h"
#include "common/thread_annotations.h"

namespace corrob {

namespace {

/// One armed failpoint: its configuration plus mutable hit state.
struct ArmedFailpoint {
  FailpointConfig config;
  Rng rng;
  int64_t hits = 0;
  int64_t failures = 0;

  explicit ArmedFailpoint(FailpointConfig c)
      : config(std::move(c)), rng(config.seed) {}
};

struct Registry {
  std::mutex mu;
  std::map<std::string, ArmedFailpoint> armed CORROB_GUARDED_BY(mu);
};

Registry& GetRegistry() {
  // lint: new-ok: intentionally leaked singleton, safe during static destruction
  static auto* registry = new Registry();
  return *registry;
}

Result<StatusCode> StatusCodeFromName(std::string_view name) {
  static constexpr StatusCode kCodes[] = {
      StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
      StatusCode::kNotFound,        StatusCode::kAlreadyExists,
      StatusCode::kFailedPrecondition, StatusCode::kIoError,
      StatusCode::kParseError,      StatusCode::kNotConverged,
      StatusCode::kInternal,        StatusCode::kCancelled,
  };
  for (StatusCode code : kCodes) {
    if (name == StatusCodeName(code)) return code;
  }
  return Status::InvalidArgument("unknown status code '" + std::string(name) +
                                 "' in failpoint spec");
}

Result<int64_t> ParseInt64(std::string_view text, std::string_view what) {
  int64_t value = 0;
  bool any = false;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad " + std::string(what) + " '" +
                                     std::string(text) +
                                     "' in failpoint spec");
    }
    value = value * 10 + (c - '0');
    any = true;
  }
  if (!any) {
    return Status::InvalidArgument("empty " + std::string(what) +
                                   " in failpoint spec");
  }
  return value;
}

}  // namespace

std::atomic<int64_t> Failpoints::armed_count_{0};

void Failpoints::Arm(const std::string& name, FailpointConfig config) {
  if (config.message.empty()) {
    config.message = "injected failure at '" + name + "'";
  }
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.armed.find(name);
  if (it == registry.armed.end()) {
    registry.armed.emplace(name, ArmedFailpoint(std::move(config)));
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  } else {
    it->second = ArmedFailpoint(std::move(config));
  }
}

Status Failpoints::ArmFromSpec(std::string_view spec) {
  size_t eq = spec.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return Status::InvalidArgument("failpoint spec must be <name>=<mode>: '" +
                                   std::string(spec) + "'");
  }
  std::string name(Trim(spec.substr(0, eq)));
  std::vector<std::string> parts = Split(spec.substr(eq + 1), ':');
  if (parts.empty() || parts[0].empty()) {
    return Status::InvalidArgument("failpoint spec has no mode: '" +
                                   std::string(spec) + "'");
  }

  FailpointConfig config;
  size_t next_part = 1;
  const std::string& mode = parts[0];
  if (mode == "off") {
    if (parts.size() > 1) {
      return Status::InvalidArgument("'off' takes no options: '" +
                                     std::string(spec) + "'");
    }
    Disarm(name);
    return Status::OK();
  }
  if (mode == "fail") {
    // Optional count directly after the mode: fail:<N>.
    if (parts.size() > 1 && parts[1].find('=') == std::string::npos) {
      CORROB_ASSIGN_OR_RETURN(config.max_failures,
                              ParseInt64(parts[1], "failure count"));
      next_part = 2;
    }
  } else if (mode == "prob") {
    if (parts.size() < 2) {
      return Status::InvalidArgument("prob mode needs a probability: '" +
                                     std::string(spec) + "'");
    }
    try {
      size_t consumed = 0;
      config.probability = std::stod(parts[1], &consumed);
      if (consumed != parts[1].size()) throw std::invalid_argument(parts[1]);
    } catch (const std::exception&) {
      return Status::InvalidArgument("bad probability '" + parts[1] +
                                     "' in failpoint spec");
    }
    // Negated form also rejects NaN.
    if (!(config.probability >= 0.0 && config.probability <= 1.0)) {
      return Status::InvalidArgument("probability must be in [0,1]: '" +
                                     parts[1] + "'");
    }
    next_part = 2;
  } else {
    return Status::InvalidArgument("unknown failpoint mode '" + mode +
                                   "' (expected off|fail|prob)");
  }

  for (size_t i = next_part; i < parts.size(); ++i) {
    size_t opt_eq = parts[i].find('=');
    if (opt_eq == std::string::npos) {
      return Status::InvalidArgument("bad failpoint option '" + parts[i] +
                                     "' (expected key=value)");
    }
    std::string key = parts[i].substr(0, opt_eq);
    std::string value = parts[i].substr(opt_eq + 1);
    if (key == "code") {
      CORROB_ASSIGN_OR_RETURN(config.code, StatusCodeFromName(value));
    } else if (key == "skip") {
      CORROB_ASSIGN_OR_RETURN(config.skip, ParseInt64(value, "skip count"));
    } else if (key == "seed") {
      CORROB_ASSIGN_OR_RETURN(int64_t seed, ParseInt64(value, "seed"));
      config.seed = static_cast<uint64_t>(seed);
    } else {
      return Status::InvalidArgument("unknown failpoint option '" + key +
                                     "' (expected code|skip|seed)");
    }
  }
  Arm(name, std::move(config));
  return Status::OK();
}

Status Failpoints::ArmFromSpecList(std::string_view specs) {
  for (const std::string& spec : Split(specs, ',')) {
    std::string_view trimmed = Trim(spec);
    if (trimmed.empty()) continue;
    CORROB_RETURN_NOT_OK(ArmFromSpec(trimmed));
  }
  return Status::OK();
}

void Failpoints::Disarm(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.armed.erase(name) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Failpoints::DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  armed_count_.fetch_sub(static_cast<int64_t>(registry.armed.size()),
                         std::memory_order_relaxed);
  registry.armed.clear();
}

bool Failpoints::IsArmed(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.armed.count(name) > 0;
}

int64_t Failpoints::HitCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.armed.find(name);
  return it == registry.armed.end() ? 0 : it->second.hits;
}

int64_t Failpoints::FailureCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.armed.find(name);
  return it == registry.armed.end() ? 0 : it->second.failures;
}

std::vector<std::string> Failpoints::ArmedNames() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.armed.size());
  for (const auto& [name, unused] : registry.armed) names.push_back(name);
  return names;
}

Status Failpoints::Check(const char* name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.armed.find(name);
  if (it == registry.armed.end()) return Status::OK();
  ArmedFailpoint& fp = it->second;
  int64_t hit = fp.hits++;
  if (hit < fp.config.skip) return Status::OK();
  if (fp.config.max_failures >= 0 &&
      fp.failures >= fp.config.max_failures) {
    return Status::OK();
  }
  if (fp.config.probability < 1.0 &&
      !fp.rng.Bernoulli(fp.config.probability)) {
    return Status::OK();
  }
  ++fp.failures;
  return Status(fp.config.code, fp.config.message);
}

}  // namespace corrob
