#include "common/budget.h"

#include <signal.h>  // sigaction; <csignal> lacks the POSIX pieces
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

namespace corrob {

void CancellationToken::Cancel(int64_t now_nanos) {
  // The timestamp is advisory (latency metrics); store it before the
  // flag so any observer that sees cancelled() also sees the time.
  if (now_nanos > 0) {
    int64_t expected = 0;
    cancelled_at_nanos_.compare_exchange_strong(expected, now_nanos,
                                                std::memory_order_relaxed);
  }
  cancelled_.store(true, std::memory_order_release);
}

int64_t CancellationToken::cancelled_at_nanos() const {
  if (cancelled_.load(std::memory_order_acquire)) {
    int64_t at = cancelled_at_nanos_.load(std::memory_order_relaxed);
    if (at > 0) return at;
  }
  return parent_ != nullptr ? parent_->cancelled_at_nanos() : 0;
}

bool CancellationToken::WaitForMs(double milliseconds) const {
  // Chunked polling keeps the wait interruptible without the
  // signal-unsafe machinery of a condition variable: a pending
  // cancellation is observed within one slice.
  constexpr double kSliceMs = 5.0;
  double remaining = milliseconds;
  while (remaining > 0.0) {
    if (cancelled()) return true;
    const double slice = std::min(remaining, kSliceMs);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(slice));
    remaining -= slice;
  }
  return cancelled();
}

Deadline Deadline::After(const obs::Clock* clock, int64_t budget_nanos) {
  Deadline deadline;
  deadline.clock_ = clock;
  const int64_t now = clock->NowNanos();
  const int64_t budget = std::max<int64_t>(0, budget_nanos);
  const int64_t headroom = now > 0
                               ? std::numeric_limits<int64_t>::max() - now
                               : std::numeric_limits<int64_t>::max();
  deadline.deadline_nanos_ = budget > headroom
                                 ? std::numeric_limits<int64_t>::max()
                                 : now + budget;
  return deadline;
}

Deadline Deadline::AfterMs(const obs::Clock* clock, double milliseconds) {
  return After(clock,
               static_cast<int64_t>(std::max(0.0, milliseconds) * 1e6));
}

int64_t Deadline::remaining_nanos() const {
  if (clock_ == nullptr) return std::numeric_limits<int64_t>::max();
  return std::max<int64_t>(0, deadline_nanos_ - clock_->NowNanos());
}

Status ValidateResourceBudget(const ResourceBudget& budget) {
  if (budget.max_rounds < 0) {
    return Status::InvalidArgument("budget max_rounds must be >= 0, got " +
                                   std::to_string(budget.max_rounds));
  }
  if (budget.max_vote_matrix_bytes < 0) {
    return Status::InvalidArgument(
        "budget max_vote_matrix_bytes must be >= 0, got " +
        std::to_string(budget.max_vote_matrix_bytes));
  }
  if (budget.max_facts_per_round < 0) {
    return Status::InvalidArgument(
        "budget max_facts_per_round must be >= 0, got " +
        std::to_string(budget.max_facts_per_round));
  }
  return Status::OK();
}

CancellationToken& ProcessShutdownToken() {
  static CancellationToken token;
  return token;
}

/// Everything the async handler reads about the active scope. The
/// struct is owned by the ScopedShutdownHandlers that installed it and
/// published through one atomic pointer, so the handler body touches
/// only async-signal-safe state (atomics and _exit).
struct ScopedShutdownHandlers::State {
  CancellationToken* token = nullptr;
  int exit_code = 130;
  std::atomic<int> signals{0};
  /// The enclosing scope's state (nesting), null for the outermost.
  State* previous = nullptr;
  /// Dispositions displaced at construction, restored at destruction.
  struct sigaction saved_sigint = {};
  struct sigaction saved_sigterm = {};
};

namespace {

// The innermost live scope; signals route here. Plain atomic pointer:
// a C++ magic-static must not be first-initialized inside a signal
// handler, and neither may a mutex be taken there.
std::atomic<ScopedShutdownHandlers::State*> g_active_scope{nullptr};
// Cached before handlers are installed, same magic-static rationale.
const obs::Clock* g_signal_clock = nullptr;

extern "C" void HandleShutdownSignal(int /*signum*/) {
  ScopedShutdownHandlers::State* scope =
      g_active_scope.load(std::memory_order_acquire);
  if (scope == nullptr) return;  // scope torn down between raise and run
  const int prior = scope->signals.fetch_add(1, std::memory_order_relaxed);
  if (prior >= 1) {
    // Second signal: the run is not polling (or the user is
    // impatient) — hard exit, no cleanup.
    _exit(scope->exit_code);
  }
  const int64_t now =
      g_signal_clock != nullptr ? g_signal_clock->NowNanos() : 0;
  scope->token->Cancel(now);
}

}  // namespace

ScopedShutdownHandlers::ScopedShutdownHandlers(Options options)
    : state_(std::make_unique<State>()) {
  state_->token =
      options.token != nullptr ? options.token : &ProcessShutdownToken();
  state_->exit_code = options.second_signal_exit_code;
  g_signal_clock = obs::MonotonicClock::Get();

  struct sigaction action = {};
  action.sa_handler = HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocking accept/read must wake
  sigaction(SIGINT, &action, &state_->saved_sigint);
  sigaction(SIGTERM, &action, &state_->saved_sigterm);

  state_->previous = g_active_scope.load(std::memory_order_relaxed);
  g_active_scope.store(state_.get(), std::memory_order_release);
}

ScopedShutdownHandlers::~ScopedShutdownHandlers() {
  // Restore the displaced dispositions first so no signal delivered
  // after this line can reach the state we are about to free.
  sigaction(SIGINT, &state_->saved_sigint, nullptr);
  sigaction(SIGTERM, &state_->saved_sigterm, nullptr);
  g_active_scope.store(state_->previous, std::memory_order_release);
}

int ScopedShutdownHandlers::signal_count() const {
  return state_->signals.load(std::memory_order_relaxed);
}

CancellationToken& ScopedShutdownHandlers::token() const {
  return *state_->token;
}

void InstallShutdownSignalHandlers() {
  // A process-lifetime scope, constructed once: repeated calls are
  // no-ops instead of stacking handlers, and the CLI keeps its
  // historical install-only semantics.
  static ScopedShutdownHandlers install;
  (void)install;  // lint: discard-ok: the side effect is the install itself
}

int ShutdownSignalCount() {
  ScopedShutdownHandlers::State* scope =
      g_active_scope.load(std::memory_order_acquire);
  return scope == nullptr ? 0
                          : scope->signals.load(std::memory_order_relaxed);
}

}  // namespace corrob
