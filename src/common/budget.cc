#include "common/budget.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <string>
#include <thread>

namespace corrob {

void CancellationToken::Cancel(int64_t now_nanos) {
  // The timestamp is advisory (latency metrics); store it before the
  // flag so any observer that sees cancelled() also sees the time.
  if (now_nanos > 0) {
    int64_t expected = 0;
    cancelled_at_nanos_.compare_exchange_strong(expected, now_nanos,
                                                std::memory_order_relaxed);
  }
  cancelled_.store(true, std::memory_order_release);
}

int64_t CancellationToken::cancelled_at_nanos() const {
  if (cancelled_.load(std::memory_order_acquire)) {
    int64_t at = cancelled_at_nanos_.load(std::memory_order_relaxed);
    if (at > 0) return at;
  }
  return parent_ != nullptr ? parent_->cancelled_at_nanos() : 0;
}

bool CancellationToken::WaitForMs(double milliseconds) const {
  // Chunked polling keeps the wait interruptible without the
  // signal-unsafe machinery of a condition variable: a pending
  // cancellation is observed within one slice.
  constexpr double kSliceMs = 5.0;
  double remaining = milliseconds;
  while (remaining > 0.0) {
    if (cancelled()) return true;
    const double slice = std::min(remaining, kSliceMs);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(slice));
    remaining -= slice;
  }
  return cancelled();
}

Deadline Deadline::After(const obs::Clock* clock, int64_t budget_nanos) {
  Deadline deadline;
  deadline.clock_ = clock;
  const int64_t now = clock->NowNanos();
  const int64_t budget = std::max<int64_t>(0, budget_nanos);
  const int64_t headroom = now > 0
                               ? std::numeric_limits<int64_t>::max() - now
                               : std::numeric_limits<int64_t>::max();
  deadline.deadline_nanos_ = budget > headroom
                                 ? std::numeric_limits<int64_t>::max()
                                 : now + budget;
  return deadline;
}

Deadline Deadline::AfterMs(const obs::Clock* clock, double milliseconds) {
  return After(clock,
               static_cast<int64_t>(std::max(0.0, milliseconds) * 1e6));
}

int64_t Deadline::remaining_nanos() const {
  if (clock_ == nullptr) return std::numeric_limits<int64_t>::max();
  return std::max<int64_t>(0, deadline_nanos_ - clock_->NowNanos());
}

Status ValidateResourceBudget(const ResourceBudget& budget) {
  if (budget.max_rounds < 0) {
    return Status::InvalidArgument("budget max_rounds must be >= 0, got " +
                                   std::to_string(budget.max_rounds));
  }
  if (budget.max_vote_matrix_bytes < 0) {
    return Status::InvalidArgument(
        "budget max_vote_matrix_bytes must be >= 0, got " +
        std::to_string(budget.max_vote_matrix_bytes));
  }
  if (budget.max_facts_per_round < 0) {
    return Status::InvalidArgument(
        "budget max_facts_per_round must be >= 0, got " +
        std::to_string(budget.max_facts_per_round));
  }
  return Status::OK();
}

namespace {

std::atomic<int> g_shutdown_signals{0};
// Cached before handlers are installed: a C++ magic-static must not
// be first-initialized inside a signal handler.
const obs::Clock* g_signal_clock = nullptr;

extern "C" void HandleShutdownSignal(int /*signum*/) {
  const int prior = g_shutdown_signals.fetch_add(1, std::memory_order_relaxed);
  if (prior >= 1) {
    // Second signal: the run is not polling (or the user is
    // impatient) — hard exit, shell convention for SIGINT death.
    _exit(130);
  }
  const int64_t now =
      g_signal_clock != nullptr ? g_signal_clock->NowNanos() : 0;
  ProcessShutdownToken().Cancel(now);
}

}  // namespace

CancellationToken& ProcessShutdownToken() {
  static CancellationToken token;
  return token;
}

void InstallShutdownSignalHandlers() {
  // Touch the statics now so the handler never initializes them.
  ProcessShutdownToken();
  g_signal_clock = obs::MonotonicClock::Get();
  // Replacing the previous handler is the point: installation is
  // idempotent and the CLI owns signal disposition.
  // lint: discard-ok: the displaced handler is irrelevant.
  (void)std::signal(SIGINT, HandleShutdownSignal);
  // lint: discard-ok: same as above for SIGTERM.
  (void)std::signal(SIGTERM, HandleShutdownSignal);
}

int ShutdownSignalCount() {
  return g_shutdown_signals.load(std::memory_order_relaxed);
}

}  // namespace corrob
