#ifndef CORROB_COMMON_RETRY_H_
#define CORROB_COMMON_RETRY_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>

#include "common/budget.h"
#include "common/result.h"
#include "common/status.h"

namespace corrob {

/// Bounded exponential backoff with deterministic, seeded jitter.
///
/// Attempt k (1-based) sleeps for
///   min(initial_backoff_ms * multiplier^(k-1), max_backoff_ms)
/// scaled by a jitter factor drawn uniformly from
/// [1 - jitter, 1 + jitter] out of a seeded PRNG stream, so retry
/// schedules are reproducible bit-for-bit in tests.
struct RetryPolicy {
  /// Total attempts including the first (>= 1).
  int32_t max_attempts = 3;
  double initial_backoff_ms = 1.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 50.0;
  /// Fractional jitter in [0, 1]; 0 disables jitter.
  double jitter = 0.25;
  /// Seed of the jitter stream.
  uint64_t seed = 0x9E3779B97F4A7C15ULL;
  /// When false the computed delays are recorded but not slept —
  /// tests exercise the schedule without wall-clock cost.
  bool enable_sleep = true;
};

/// Validates a policy; InvalidArgument describes the first bad field.
[[nodiscard]] Status ValidateRetryPolicy(const RetryPolicy& policy);

/// The conservative policy used by the library's durable writers.
RetryPolicy DefaultIoRetryPolicy();

/// True for codes worth retrying: the failure may heal on its own
/// (flaky disk, transient contention, a peer that restarts). Today
/// that is kIoError and kConnectionLost. Everything else — parse
/// errors, bad arguments, missing files — is deterministic and
/// retrying would only repeat the same failure. Retrying
/// kConnectionLost is only safe for idempotent work; non-idempotent
/// callers must filter it out themselves.
bool IsTransientCode(StatusCode code);

/// Observability of one Retry() call.
struct RetryStats {
  int32_t attempts = 0;
  /// Scheduled backoff; a cancelled wait still records its full
  /// scheduled delay (what the call *would* have slept).
  double total_backoff_ms = 0.0;
  /// True when the call returned kCancelled because a
  /// CancellationToken fired before or during a backoff wait.
  bool cancelled = false;
};

namespace retry_internal {

inline const Status& StatusOf(const Status& status) { return status; }
template <typename T>
const Status& StatusOf(const Result<T>& result) {
  return result.status();
}

/// Yields the per-attempt delays of a policy. Exposed for tests.
class BackoffSchedule {
 public:
  explicit BackoffSchedule(const RetryPolicy& policy);
  /// Delay before retry number `retry_index` (0-based), in ms.
  double NextDelayMs();

 private:
  double next_backoff_ms_;
  double multiplier_;
  double max_backoff_ms_;
  double jitter_;
  uint64_t rng_state_;
};

void SleepForMs(double milliseconds);

}  // namespace retry_internal

/// Runs `fn` (returning Status or Result<T>) up to
/// `policy.max_attempts` times, backing off between attempts, and
/// returns the first success or the last failure. Only transient
/// codes (IsTransientCode) are retried; a deterministic failure —
/// including kCancelled from `fn` itself — is returned immediately.
/// An invalid policy fails without calling `fn`.
///
/// `cancel` (optional) makes the backoff waits interruptible: when
/// the token fires before or during a wait, the call stops retrying
/// and returns kCancelled (carrying the last attempt's failure in the
/// message) with stats->cancelled set, so a process shutting down
/// never sits out a multi-second backoff.
template <typename Fn>
auto Retry(const RetryPolicy& policy, Fn&& fn, RetryStats* stats = nullptr,
           const CancellationToken* cancel = nullptr)
    -> std::decay_t<decltype(fn())> {
  if (Status valid = ValidateRetryPolicy(policy); !valid.ok()) {
    if (stats != nullptr) *stats = RetryStats{};
    return valid;
  }
  retry_internal::BackoffSchedule schedule(policy);
  RetryStats local;
  for (int32_t attempt = 1;; ++attempt) {
    auto outcome = fn();
    local.attempts = attempt;
    const Status& status = retry_internal::StatusOf(outcome);
    if (status.ok() || !IsTransientCode(status.code()) ||
        attempt >= policy.max_attempts) {
      if (stats != nullptr) *stats = local;
      return outcome;
    }
    double delay_ms = schedule.NextDelayMs();
    local.total_backoff_ms += delay_ms;
    bool interrupted = false;
    if (cancel != nullptr && cancel->cancelled()) {
      interrupted = true;
    } else if (policy.enable_sleep) {
      if (cancel != nullptr) {
        interrupted = cancel->WaitForMs(delay_ms);
      } else {
        retry_internal::SleepForMs(delay_ms);
      }
    }
    if (interrupted) {
      local.cancelled = true;
      if (stats != nullptr) *stats = local;
      return Status::Cancelled(
          "retry cancelled during backoff after " +
          std::to_string(attempt) + " attempt(s); last failure: " +
          status.ToString());
    }
  }
}

}  // namespace corrob

#endif  // CORROB_COMMON_RETRY_H_
