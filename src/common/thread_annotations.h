#ifndef CORROB_COMMON_THREAD_ANNOTATIONS_H_
#define CORROB_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety annotation macros for the concurrent core.
//
// These wrap Clang's capability-analysis attributes so that lock
// discipline — which member a mutex guards, which functions require a
// lock held, which acquire and release one — is stated in the type
// system and checked at compile time by the `thread-safety` CI job
// (`-Wthread-safety -Wthread-safety-beta -Werror`). On compilers
// without the attributes (GCC, MSVC) every macro expands to nothing,
// so annotated code builds everywhere; the annotations are
// enforcement, not behavior.
//
// Cookbook (see docs/STATIC_ANALYSIS.md for the full version):
//
//   std::mutex mutex_;
//   std::vector<int> items_ CORROB_GUARDED_BY(mutex_);
//
//   // Caller must hold mutex_ (the "FooLocked" convention):
//   void CompactLocked() CORROB_REQUIRES(mutex_);
//
//   // Caller must NOT hold mutex_ (re-entrancy guard):
//   void Publish() CORROB_EXCLUDES(mutex_);
//
//   // A custom RAII lock type:
//   class CORROB_SCOPED_CAPABILITY ShardLock { ... };

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define CORROB_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#endif
#endif

#ifndef CORROB_THREAD_ANNOTATION_ATTRIBUTE
#define CORROB_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

// Marks a type as a lockable capability ("mutex"-like). std::mutex is
// already annotated in libc++/libstdc++ under Clang; this is for
// project-defined lock types.
#define CORROB_CAPABILITY(x) \
  CORROB_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// Marks an RAII lock holder (constructor acquires, destructor
// releases) so the analysis tracks its scope as a critical section.
#define CORROB_SCOPED_CAPABILITY \
  CORROB_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// Declares that a data member may only be read or written while
// holding the given capability.
#define CORROB_GUARDED_BY(x) \
  CORROB_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// As CORROB_GUARDED_BY, but for the data *pointed to* by a pointer
// member (the pointer itself is unguarded).
#define CORROB_PT_GUARDED_BY(x) \
  CORROB_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// Declares that callers must hold the capability exclusively before
// calling (the "Locked" suffix convention made checkable).
#define CORROB_REQUIRES(...) \
  CORROB_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

// Declares that callers must hold the capability at least shared.
#define CORROB_REQUIRES_SHARED(...) \
  CORROB_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

// Declares that a function acquires the capability and holds it on
// return (e.g. a Lock() method or an acquiring constructor).
#define CORROB_ACQUIRE(...) \
  CORROB_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

// Declares that a function releases a held capability on return.
#define CORROB_RELEASE(...) \
  CORROB_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

// Declares that callers must NOT hold the capability (deadlock guard
// for functions that acquire it themselves).
#define CORROB_EXCLUDES(...) \
  CORROB_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Declares a function that returns a reference to the capability
// guarding some state (lets accessors participate in the analysis).
#define CORROB_RETURN_CAPABILITY(x) \
  CORROB_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Escape hatch: disables the analysis for one function. Every use
// must carry a comment justifying why the discipline holds anyway.
#define CORROB_NO_THREAD_SAFETY_ANALYSIS \
  CORROB_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // CORROB_COMMON_THREAD_ANNOTATIONS_H_
