#ifndef CORROB_COMMON_CRC32_H_
#define CORROB_COMMON_CRC32_H_

#include <cstdint>
#include <string_view>

namespace corrob {

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial 0xEDB88320), used to
/// checksum checkpoint payloads. Incremental use:
///
///   Crc32 crc;
///   crc.Update(header);
///   crc.Update(body);
///   uint32_t digest = crc.Digest();
class Crc32 {
 public:
  Crc32() = default;

  /// Folds `bytes` into the running checksum.
  void Update(std::string_view bytes);

  /// The checksum of everything folded in so far.
  uint32_t Digest() const { return state_ ^ 0xFFFFFFFFu; }

  /// Resets to the empty-input state.
  void Reset() { state_ = 0xFFFFFFFFu; }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience: the CRC-32 of `bytes`.
uint32_t ComputeCrc32(std::string_view bytes);

}  // namespace corrob

#endif  // CORROB_COMMON_CRC32_H_
