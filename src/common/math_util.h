#ifndef CORROB_COMMON_MATH_UTIL_H_
#define CORROB_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <vector>

namespace corrob {

/// Binary (Shannon) entropy of a Bernoulli(p) variable, in bits.
/// BinaryEntropy(0) == BinaryEntropy(1) == 0; maximum is 1 at p=0.5.
/// Inputs outside [0,1] are clamped.
double BinaryEntropy(double p);

/// Clamps `value` into [lo, hi].
double Clamp(double value, double lo, double hi);

/// Arithmetic mean; returns `empty_value` for an empty range.
double Mean(const std::vector<double>& values, double empty_value = 0.0);

/// Population variance; returns 0 for fewer than 2 elements.
double Variance(const std::vector<double>& values);

/// Mean squared error between two equally sized vectors.
/// Returns 0 for empty inputs. Aborts if sizes differ.
double MeanSquaredError(const std::vector<double>& expected,
                        const std::vector<double>& actual);

/// Numerically stable log(1+exp(x)).
double Log1pExp(double x);

/// Logistic sigmoid 1/(1+exp(-x)).
double Sigmoid(double x);

/// True if |a-b| <= tolerance.
bool NearlyEqual(double a, double b, double tolerance = 1e-9);

}  // namespace corrob

#endif  // CORROB_COMMON_MATH_UTIL_H_
