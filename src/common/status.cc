#include "common/status.h"

namespace corrob {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotConverged:
      return "NotConverged";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kQuotaExceeded:
      return "QuotaExceeded";
    case StatusCode::kConnectionLost:
      return "ConnectionLost";
    case StatusCode::kWalUnavailable:
      return "WalUnavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace corrob
