#ifndef CORROB_COMMON_SOCKET_H_
#define CORROB_COMMON_SOCKET_H_

#include <cstddef>
#include <string>

#include "common/budget.h"
#include "common/result.h"
#include "common/status.h"

// Minimal POSIX stream-socket plumbing for corrobd and its clients:
// RAII file descriptors plus interruptible exact-count I/O over Unix
// domain sockets. Every blocking operation takes a StopSignal and
// polls it, so a cancelled token or an expired deadline unblocks the
// caller within one poll slice instead of hanging in the kernel —
// the same cooperative contract the corroborators follow.

namespace corrob {

/// Owns one file descriptor; closes it on destruction. Move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) Reset(other.Release());
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Gives up ownership without closing.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the current descriptor (if any) and adopts `fd`.
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Creates, binds and listens on a Unix-domain stream socket at
/// `path`, replacing any stale socket file left by a previous run.
/// The path must fit sockaddr_un (~100 bytes).
[[nodiscard]] Result<UniqueFd> ListenUnixSocket(const std::string& path,
                                                int backlog = 64);

/// Accepts one connection, polling `stop` while waiting. Returns
/// Cancelled when the signal fires before a client arrives.
[[nodiscard]] Result<UniqueFd> AcceptWithStop(int listener_fd,
                                              const StopSignal& stop);

/// Connects to the Unix-domain socket at `path`.
[[nodiscard]] Result<UniqueFd> ConnectUnixSocket(const std::string& path);

/// Reads exactly `length` bytes into `buffer`. Errors:
///   Cancelled       - `stop` fired first;
///   ConnectionLost  - the peer closed after at least one byte of this
///                     read had arrived (it died mid-message);
///   IoError         - the peer closed before the first byte, or a
///                     socket error.
[[nodiscard]] Status ReadExact(int fd, void* buffer, size_t length,
                               const StopSignal& stop);

/// Like ReadExact, but a clean close before the first byte is not an
/// error: returns false then (true after a full read). A close after
/// at least one byte is still IoError — the peer died mid-message.
[[nodiscard]] Result<bool> ReadExactOrEof(int fd, void* buffer,
                                          size_t length,
                                          const StopSignal& stop);

/// Writes all `length` bytes of `buffer`. SIGPIPE is suppressed; a
/// vanished peer reports IoError, a fired `stop` reports Cancelled.
[[nodiscard]] Status WriteAll(int fd, const void* buffer, size_t length,
                              const StopSignal& stop);

/// True when the peer of `fd` has closed its end (or the socket is in
/// an error state) without this side consuming the EOF. Non-blocking;
/// used by corrobd's disconnect watcher to cancel abandoned requests.
bool PeerClosed(int fd);

}  // namespace corrob

#endif  // CORROB_COMMON_SOCKET_H_
