#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/random.h"

namespace corrob {

Status ValidateRetryPolicy(const RetryPolicy& policy) {
  if (policy.max_attempts < 1) {
    return Status::InvalidArgument("retry max_attempts must be >= 1, got " +
                                   std::to_string(policy.max_attempts));
  }
  if (policy.initial_backoff_ms < 0.0) {
    return Status::InvalidArgument("retry initial_backoff_ms must be >= 0");
  }
  if (policy.backoff_multiplier < 1.0) {
    return Status::InvalidArgument("retry backoff_multiplier must be >= 1");
  }
  if (policy.max_backoff_ms < policy.initial_backoff_ms) {
    return Status::InvalidArgument(
        "retry max_backoff_ms must be >= initial_backoff_ms");
  }
  if (policy.jitter < 0.0 || policy.jitter > 1.0) {
    return Status::InvalidArgument("retry jitter must be in [0, 1]");
  }
  return Status::OK();
}

RetryPolicy DefaultIoRetryPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1.0;
  policy.backoff_multiplier = 4.0;
  policy.max_backoff_ms = 16.0;
  policy.jitter = 0.25;
  return policy;
}

bool IsTransientCode(StatusCode code) {
  // kConnectionLost is transient from the caller's perspective — the
  // peer may come back after a restart — but retrying it is only safe
  // for idempotent operations, so callers opt in (see
  // CorrobClient::EnableReconnect).
  return code == StatusCode::kIoError ||
         code == StatusCode::kConnectionLost;
}

namespace retry_internal {

BackoffSchedule::BackoffSchedule(const RetryPolicy& policy)
    : next_backoff_ms_(policy.initial_backoff_ms),
      multiplier_(policy.backoff_multiplier),
      max_backoff_ms_(policy.max_backoff_ms),
      jitter_(policy.jitter),
      rng_state_(policy.seed) {}

double BackoffSchedule::NextDelayMs() {
  double base = std::min(next_backoff_ms_, max_backoff_ms_);
  next_backoff_ms_ = std::min(next_backoff_ms_ * multiplier_,
                              max_backoff_ms_);
  if (jitter_ <= 0.0) return base;
  // Uniform factor in [1 - jitter, 1 + jitter] from the seeded stream.
  double unit = static_cast<double>(SplitMix64(&rng_state_) >> 11) *
                0x1.0p-53;
  return base * (1.0 - jitter_ + 2.0 * jitter_ * unit);
}

void SleepForMs(double milliseconds) {
  if (milliseconds <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(milliseconds));
}

}  // namespace retry_internal

}  // namespace corrob
