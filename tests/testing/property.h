// Property-based testing harness: seeded random dataset generators,
// seed enumeration, dataset permutation helpers, and bit-exact result
// comparators. All randomness flows from explicit seeds (SplitMix64 /
// the library Rng), so every failure reproduces from the seed printed
// in the assertion message.

#ifndef CORROB_TESTS_TESTING_PROPERTY_H_
#define CORROB_TESTS_TESTING_PROPERTY_H_

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/corroborator.h"
#include "data/dataset.h"

namespace corrob {
namespace proptest {

/// Runs `body(seed)` for `count` seeds derived from `base_seed` via
/// SplitMix64. Each invocation is wrapped in a SCOPED_TRACE carrying
/// the derived seed, so a failing property names the exact input that
/// broke it.
inline void ForEachSeed(uint64_t base_seed, int count,
                        const std::function<void(uint64_t)>& body) {
  uint64_t state = base_seed;
  for (int i = 0; i < count; ++i) {
    uint64_t seed = SplitMix64(&state);
    SCOPED_TRACE(::testing::Message() << "seed=" << seed << " (#" << i
                                      << " from base " << base_seed << ")");
    body(seed);
  }
}

struct RandomDatasetOptions {
  int32_t min_sources = 3;
  int32_t max_sources = 12;
  int32_t min_facts = 10;
  int32_t max_facts = 120;
  /// Probability that a given (source, fact) pair carries a vote.
  double vote_density = 0.35;
  /// Probability that a materialized vote is an F vote (the rest are
  /// affirmative), exercising the negative-statement paths.
  double false_vote_fraction = 0.15;
};

/// Generates a random sparse vote matrix. Unlike the synthetic corpus
/// generators this makes no planted-truth or coverage guarantees —
/// voteless facts, voteless sources and F-vote-only facts all occur,
/// which is exactly what metamorphic properties need to hold over.
inline Dataset MakeRandomDataset(uint64_t seed,
                                 const RandomDatasetOptions& options = {}) {
  Rng rng(seed);
  const int32_t num_sources = static_cast<int32_t>(
      rng.UniformInt(options.min_sources, options.max_sources));
  const int32_t num_facts = static_cast<int32_t>(
      rng.UniformInt(options.min_facts, options.max_facts));
  DatasetBuilder builder;
  for (int32_t s = 0; s < num_sources; ++s) {
    builder.AddSource("s" + std::to_string(s));
  }
  for (int32_t f = 0; f < num_facts; ++f) {
    builder.AddFact("f" + std::to_string(f));
  }
  for (int32_t f = 0; f < num_facts; ++f) {
    for (int32_t s = 0; s < num_sources; ++s) {
      if (!rng.Bernoulli(options.vote_density)) continue;
      Vote vote = rng.Bernoulli(options.false_vote_fraction) ? Vote::kFalse
                                                             : Vote::kTrue;
      EXPECT_TRUE(builder.SetVote(s, f, vote).ok());
    }
  }
  return builder.Build();
}

/// Bit-exact equality of two doubles, NaN-safe (NaN == NaN bitwise).
inline bool BitEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

/// EXPECTs two double vectors to match bit for bit; `what` labels the
/// failing vector in the message.
inline void ExpectBitIdentical(const std::vector<double>& a,
                               const std::vector<double>& b,
                               const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(BitEqual(a[i], b[i]))
        << what << "[" << i << "]: " << a[i] << " vs " << b[i];
  }
}

/// EXPECTs the *state* of two corroboration results to match bit for
/// bit — probabilities, trust, iteration counts, commit rounds and
/// the whole trajectory — while saying nothing about why each run
/// stopped. This is the termination-parity contract: a run cancelled
/// at iteration k and an uninterrupted run truncated at k report
/// different Termination reasons over the exact same best-so-far
/// numbers.
inline void ExpectBitIdenticalBestSoFar(const CorroborationResult& a,
                                        const CorroborationResult& b) {
  ExpectBitIdentical(a.fact_probability, b.fact_probability,
                     "fact_probability");
  ExpectBitIdentical(a.source_trust, b.source_trust, "source_trust");
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.fact_commit_round, b.fact_commit_round);
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
  for (size_t i = 0; i < a.trajectory.size(); ++i) {
    EXPECT_EQ(a.trajectory[i].facts_committed,
              b.trajectory[i].facts_committed)
        << "trajectory[" << i << "]";
    ExpectBitIdentical(a.trajectory[i].trust, b.trajectory[i].trust,
                       "trajectory[" + std::to_string(i) + "].trust");
  }
}

/// EXPECTs two corroboration results to be fully bit-identical:
/// everything ExpectBitIdenticalBestSoFar checks plus the termination
/// reason. This is the contract the parallel sweeps promise against
/// the sequential path.
inline void ExpectBitIdenticalResults(const CorroborationResult& a,
                                      const CorroborationResult& b) {
  ExpectBitIdenticalBestSoFar(a, b);
  EXPECT_EQ(a.termination, b.termination)
      << TerminationName(a.termination) << " vs "
      << TerminationName(b.termination);
}

/// A relabeling of the dataset's ids: old id -> new id, both axes.
struct Permutation {
  std::vector<int32_t> source_map;
  std::vector<int32_t> fact_map;
};

/// Uniformly random permutation of both axes of `dataset`.
inline Permutation RandomPermutation(const Dataset& dataset, uint64_t seed) {
  Rng rng(seed);
  Permutation perm;
  perm.source_map.resize(static_cast<size_t>(dataset.num_sources()));
  perm.fact_map.resize(static_cast<size_t>(dataset.num_facts()));
  for (size_t i = 0; i < perm.source_map.size(); ++i) {
    perm.source_map[i] = static_cast<int32_t>(i);
  }
  for (size_t i = 0; i < perm.fact_map.size(); ++i) {
    perm.fact_map[i] = static_cast<int32_t>(i);
  }
  rng.Shuffle(&perm.source_map);
  rng.Shuffle(&perm.fact_map);
  return perm;
}

/// Rebuilds `dataset` with permuted source/fact insertion orders, so
/// ids change but names and the vote structure persist.
inline Dataset Permute(const Dataset& dataset, const Permutation& perm) {
  DatasetBuilder builder;
  std::vector<SourceId> source_order(
      static_cast<size_t>(dataset.num_sources()));
  for (SourceId s = 0; s < dataset.num_sources(); ++s) {
    source_order[static_cast<size_t>(perm.source_map[s])] = s;
  }
  std::vector<FactId> fact_order(static_cast<size_t>(dataset.num_facts()));
  for (FactId f = 0; f < dataset.num_facts(); ++f) {
    fact_order[static_cast<size_t>(perm.fact_map[f])] = f;
  }
  for (SourceId s : source_order) builder.AddSource(dataset.source_name(s));
  for (FactId f : fact_order) builder.AddFact(dataset.fact_name(f));
  for (FactId f = 0; f < dataset.num_facts(); ++f) {
    for (const SourceVote& sv : dataset.VotesOnFact(f)) {
      EXPECT_TRUE(builder
                      .SetVote(perm.source_map[sv.source], perm.fact_map[f],
                               sv.vote)
                      .ok());
    }
  }
  return builder.Build();
}

}  // namespace proptest
}  // namespace corrob

#endif  // CORROB_TESTS_TESTING_PROPERTY_H_
