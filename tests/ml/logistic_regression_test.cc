#include "ml/logistic_regression.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace corrob {
namespace {

TEST(LogisticRegressionTest, LearnsLinearlySeparableData) {
  // y = 1 iff x0 > 0.
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    double v = rng.Uniform(-2.0, 2.0);
    x.push_back({v, rng.Uniform(-1.0, 1.0)});
    y.push_back(v > 0 ? 1 : 0);
  }
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (model.Predict(x[i]) == (y[i] == 1)) ++correct;
  }
  EXPECT_GT(correct, 190);
  EXPECT_GT(model.weights()[0], 0.5);  // x0 is the discriminating axis.
}

TEST(LogisticRegressionTest, ProbabilitiesAreCalibratedDirectionally) {
  std::vector<std::vector<double>> x{{1.0}, {1.0}, {-1.0}, {-1.0}};
  std::vector<int> y{1, 1, 0, 0};
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_GT(model.PredictProbability({1.0}), 0.8);
  EXPECT_LT(model.PredictProbability({-1.0}), 0.2);
  EXPECT_NEAR(model.PredictProbability({0.0}), 0.5, 0.15);
}

TEST(LogisticRegressionTest, HandlesSingleClassGracefully) {
  // All-positive training data: model should predict positive.
  std::vector<std::vector<double>> x{{1.0}, {2.0}, {3.0}};
  std::vector<int> y{1, 1, 1};
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_TRUE(model.Predict({2.0}));
}

TEST(LogisticRegressionTest, L2ShrinksWeights) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    double v = rng.Uniform(-1.0, 1.0);
    x.push_back({v});
    y.push_back(v > 0 ? 1 : 0);
  }
  LogisticRegressionOptions weak;
  weak.l2 = 1e-4;
  LogisticRegressionOptions strong;
  strong.l2 = 1.0;
  LogisticRegression a{weak}, b{strong};
  ASSERT_TRUE(a.Fit(x, y).ok());
  ASSERT_TRUE(b.Fit(x, y).ok());
  EXPECT_GT(std::abs(a.weights()[0]), std::abs(b.weights()[0]));
}

TEST(LogisticRegressionTest, InputValidation) {
  LogisticRegression model;
  EXPECT_FALSE(model.Fit({}, {}).ok());
  EXPECT_FALSE(model.Fit({{1.0}}, {1, 0}).ok());
  EXPECT_FALSE(model.Fit({{1.0}, {1.0, 2.0}}, {1, 0}).ok());
  EXPECT_FALSE(model.Fit({{1.0}}, {2}).ok());
}

TEST(LogisticRegressionDeathTest, WidthMismatchAborts) {
  LogisticRegression model;
  ASSERT_TRUE(model.Fit({{1.0}, {-1.0}}, {1, 0}).ok());
  EXPECT_DEATH({ model.DecisionValue({1.0, 2.0}); }, "feature width");
}

}  // namespace
}  // namespace corrob
