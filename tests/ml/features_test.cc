#include "ml/features.h"

#include <gtest/gtest.h>

#include "data/motivating_example.h"

namespace corrob {
namespace {

TEST(FeaturesTest, SignedEncoding) {
  MotivatingExample example = MakeMotivatingExample();
  // r12: - F F T -  -> {0, -1, -1, +1, 0}.
  std::vector<double> features =
      VoteFeatures(example.dataset, 11, VoteEncoding::kSigned);
  EXPECT_EQ(features,
            (std::vector<double>{0.0, -1.0, -1.0, 1.0, 0.0}));
}

TEST(FeaturesTest, IndicatorEncoding) {
  MotivatingExample example = MakeMotivatingExample();
  // r12: s2 F -> slot 3; s3 F -> slot 5; s4 T -> slot 6.
  std::vector<double> features =
      VoteFeatures(example.dataset, 11, VoteEncoding::kIndicator);
  ASSERT_EQ(features.size(), 10u);
  EXPECT_EQ(features[3], 1.0);
  EXPECT_EQ(features[5], 1.0);
  EXPECT_EQ(features[6], 1.0);
  double sum = 0.0;
  for (double f : features) sum += f;
  EXPECT_EQ(sum, 3.0);
}

TEST(FeaturesTest, GoldenExtractionAlignsRows) {
  MotivatingExample example = MakeMotivatingExample();
  GoldenSet golden;
  golden.Add(0, true);
  golden.Add(11, false);
  MlDataset data =
      ExtractGoldenFeatures(example.dataset, golden, VoteEncoding::kSigned);
  ASSERT_EQ(data.features.size(), 2u);
  EXPECT_EQ(data.labels, (std::vector<int>{1, 0}));
  EXPECT_EQ(data.facts, (std::vector<FactId>{0, 11}));
  EXPECT_EQ(data.features[0],
            (std::vector<double>{0.0, 1.0, 0.0, 1.0, 0.0}));  // r1: -T-T-
}

}  // namespace
}  // namespace corrob
