#include "ml/cross_validation.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "ml/logistic_regression.h"

namespace corrob {
namespace {

TEST(StratifiedFoldsTest, BalancesClassesAcrossFolds) {
  std::vector<int> labels;
  for (int i = 0; i < 60; ++i) labels.push_back(i < 40 ? 1 : 0);
  CrossValidationOptions options;
  options.folds = 5;
  std::vector<int> folds = StratifiedFolds(labels, options).ValueOrDie();
  ASSERT_EQ(folds.size(), labels.size());

  std::map<int, int> positives, negatives;
  for (size_t i = 0; i < labels.size(); ++i) {
    ASSERT_GE(folds[i], 0);
    ASSERT_LT(folds[i], 5);
    (labels[i] == 1 ? positives : negatives)[folds[i]]++;
  }
  for (int fold = 0; fold < 5; ++fold) {
    EXPECT_EQ(positives[fold], 8);
    EXPECT_EQ(negatives[fold], 4);
  }
}

TEST(StratifiedFoldsTest, SeedChangesAssignmentNotBalance) {
  std::vector<int> labels(40, 1);
  for (int i = 0; i < 20; ++i) labels[i] = 0;
  CrossValidationOptions a, b;
  a.folds = b.folds = 4;
  a.seed = 1;
  b.seed = 2;
  auto fa = StratifiedFolds(labels, a).ValueOrDie();
  auto fb = StratifiedFolds(labels, b).ValueOrDie();
  EXPECT_NE(fa, fb);
}

TEST(StratifiedFoldsTest, Validation) {
  CrossValidationOptions one_fold;
  one_fold.folds = 1;
  EXPECT_FALSE(StratifiedFolds({1, 0}, one_fold).ok());
  CrossValidationOptions too_many;
  too_many.folds = 5;
  EXPECT_FALSE(StratifiedFolds({1, 0}, too_many).ok());
}

TEST(CrossValidationTest, OutOfFoldPredictionsLearnTheConcept) {
  // Signed feature equals the label signal.
  MlDataset data;
  for (int i = 0; i < 100; ++i) {
    double v = (i % 2 == 0) ? 1.0 : -1.0;
    data.features.push_back({v});
    data.labels.push_back(v > 0 ? 1 : 0);
    data.facts.push_back(i);
  }
  auto factory = [] {
    return std::unique_ptr<BinaryClassifier>(new LogisticRegression());
  };
  CrossValidationOptions options;
  options.folds = 10;
  std::vector<bool> predictions =
      CrossValidatePredictions(data, factory, options).ValueOrDie();
  ASSERT_EQ(predictions.size(), 100u);
  for (size_t i = 0; i < predictions.size(); ++i) {
    EXPECT_EQ(predictions[i], data.labels[i] == 1) << i;
  }
}

TEST(CrossValidationTest, MismatchedSizesRejected) {
  MlDataset data;
  data.features = {{1.0}};
  data.labels = {1, 0};
  auto factory = [] {
    return std::unique_ptr<BinaryClassifier>(new LogisticRegression());
  };
  EXPECT_FALSE(CrossValidatePredictions(data, factory).ok());
}

}  // namespace
}  // namespace corrob
