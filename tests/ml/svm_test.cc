#include "ml/svm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace corrob {
namespace {

TEST(LinearSvmTest, LearnsLinearlySeparableData) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(3);
  for (int i = 0; i < 150; ++i) {
    double a = rng.Uniform(-2.0, 2.0);
    double b = rng.Uniform(-2.0, 2.0);
    x.push_back({a, b});
    y.push_back(a + b > 0.0 ? 1 : 0);
  }
  LinearSvm model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (model.Predict(x[i]) == (y[i] == 1)) ++correct;
  }
  EXPECT_GT(correct, 140);
  EXPECT_GT(model.num_support_vectors(), 0);
}

TEST(LinearSvmTest, SeparatesAxisAlignedClusters) {
  std::vector<std::vector<double>> x{{2.0, 0.0}, {3.0, 1.0}, {2.5, -1.0},
                                     {-2.0, 0.0}, {-3.0, 1.0}, {-2.5, -1.0}};
  std::vector<int> y{1, 1, 1, 0, 0, 0};
  LinearSvm model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_TRUE(model.Predict({4.0, 0.0}));
  EXPECT_FALSE(model.Predict({-4.0, 0.0}));
  // The separating direction is dominated by the first coordinate.
  EXPECT_GT(std::fabs(model.weights()[0]),
            std::fabs(model.weights()[1]));
}

TEST(LinearSvmTest, ToleratesLabelNoise) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    double v = rng.Uniform(-2.0, 2.0);
    x.push_back({v});
    bool label = v > 0;
    if (rng.Bernoulli(0.05)) label = !label;  // 5% flipped labels.
    y.push_back(label ? 1 : 0);
  }
  LinearSvm model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    bool truth = x[i][0] > 0;
    if (model.Predict(x[i]) == truth) ++correct;
  }
  EXPECT_GT(correct, 180);
}

TEST(LinearSvmTest, RequiresBothClasses) {
  LinearSvm model;
  Status status = model.Fit({{1.0}, {2.0}}, {1, 1});
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(LinearSvmTest, InputValidation) {
  LinearSvm model;
  EXPECT_FALSE(model.Fit({}, {}).ok());
  EXPECT_FALSE(model.Fit({{1.0}}, {1, 0}).ok());
  EXPECT_FALSE(model.Fit({{1.0}, {1.0, 2.0}}, {1, 0}).ok());
  EXPECT_FALSE(model.Fit({{1.0}, {2.0}}, {1, 7}).ok());
}

TEST(LinearSvmTest, DeterministicForFixedSeed) {
  std::vector<std::vector<double>> x{{1.0}, {2.0}, {-1.0}, {-2.0}};
  std::vector<int> y{1, 1, 0, 0};
  LinearSvm a, b;
  ASSERT_TRUE(a.Fit(x, y).ok());
  ASSERT_TRUE(b.Fit(x, y).ok());
  EXPECT_EQ(a.weights(), b.weights());
  EXPECT_DOUBLE_EQ(a.bias(), b.bias());
}

}  // namespace
}  // namespace corrob
