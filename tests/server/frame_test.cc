#include "server/frame.h"

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "common/failpoint.h"
#include "common/socket.h"
#include "obs/clock.h"

namespace corrob {
namespace server {
namespace {

StopSignal NoStop() { return StopSignal(); }

/// A connected AF_UNIX socket pair; both ends close on destruction.
struct SocketPair {
  UniqueFd a;
  UniqueFd b;
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a.Reset(fds[0]);
    b.Reset(fds[1]);
  }
};

TEST(FrameCodecTest, EncodeDecodeRoundTrip) {
  Frame frame;
  frame.type = FrameType::kCorroborateRequest;
  frame.payload = std::string("hello\0world", 11);
  const std::string wire = EncodeFrame(frame);
  EXPECT_EQ(wire.size(),
            kFrameHeaderBytes + frame.payload.size() + kFrameTrailerBytes);

  size_t consumed = 0;
  Result<Frame> decoded = DecodeFrame(wire, &consumed);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(decoded.ValueOrDie().type, frame.type);
  EXPECT_EQ(decoded.ValueOrDie().payload, frame.payload);
}

TEST(FrameCodecTest, EmptyPayloadRoundTrips) {
  Frame frame;
  frame.type = FrameType::kPingRequest;
  Result<Frame> decoded = DecodeFrame(EncodeFrame(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.ValueOrDie().payload.empty());
}

TEST(FrameCodecTest, BadMagicIsParseError) {
  std::string wire = EncodeFrame({FrameType::kPingRequest, "x"});
  wire[0] = 'Z';
  Result<Frame> decoded = DecodeFrame(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
  EXPECT_NE(decoded.status().message().find("magic"), std::string::npos);
}

TEST(FrameCodecTest, IntrospectFrameTypesAreKnownAndRoundTrip) {
  EXPECT_TRUE(IsKnownFrameType(static_cast<uint8_t>(0x06)));
  EXPECT_TRUE(IsKnownFrameType(static_cast<uint8_t>(0x89)));
  EXPECT_EQ(FrameTypeName(FrameType::kIntrospectRequest),
            std::string_view("introspect_request"));
  EXPECT_EQ(FrameTypeName(FrameType::kIntrospectResponse),
            std::string_view("introspect_response"));
  for (const FrameType type :
       {FrameType::kIntrospectRequest, FrameType::kIntrospectResponse}) {
    Frame frame;
    frame.type = type;
    frame.payload = "payload";
    Result<Frame> decoded = DecodeFrame(EncodeFrame(frame));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.ValueOrDie().type, type);
    EXPECT_EQ(decoded.ValueOrDie().payload, "payload");
  }
}

TEST(FrameCodecTest, UnknownTypeIsInvalidArgument) {
  std::string wire = EncodeFrame({FrameType::kPingRequest, "x"});
  wire[4] = 0x7F;  // not a FrameType value
  Result<Frame> decoded = DecodeFrame(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameCodecTest, OversizedLengthRejectedBeforeAllocation) {
  std::string wire = EncodeFrame({FrameType::kPingRequest, ""});
  // Announce a payload far over the cap; the frame itself stays tiny.
  wire[5] = static_cast<char>(0xFF);
  wire[6] = static_cast<char>(0xFF);
  wire[7] = static_cast<char>(0xFF);
  wire[8] = static_cast<char>(0xFF);
  Result<Frame> decoded = DecodeFrame(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("cap"), std::string::npos);
}

TEST(FrameCodecTest, TruncationAtEveryBoundaryIsParseError) {
  const std::string wire =
      EncodeFrame({FrameType::kCorroborateRequest, "payload"});
  for (size_t length = 0; length < wire.size(); ++length) {
    Result<Frame> decoded = DecodeFrame(wire.substr(0, length));
    ASSERT_FALSE(decoded.ok()) << "length " << length;
    EXPECT_EQ(decoded.status().code(), StatusCode::kParseError)
        << "length " << length;
  }
}

TEST(FrameCodecTest, CorruptedPayloadFailsChecksum) {
  std::string wire = EncodeFrame({FrameType::kPingRequest, "payload"});
  wire[kFrameHeaderBytes] ^= 0x01;  // flip one payload bit
  Result<Frame> decoded = DecodeFrame(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
  EXPECT_NE(decoded.status().message().find("checksum"), std::string::npos);
}

TEST(FrameCodecTest, ChecksumCoversTypeByte) {
  std::string wire = EncodeFrame({FrameType::kPingRequest, "payload"});
  wire[4] = static_cast<char>(FrameType::kStatsRequest);  // also valid
  Result<Frame> decoded = DecodeFrame(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
}

TEST(FrameSocketTest, WriteThenReadAcrossSocket) {
  SocketPair pair;
  Frame frame;
  frame.type = FrameType::kResultResponse;
  frame.payload.assign(100000, 'x');  // larger than one send buffer
  std::thread writer([&] {
    Status written = WriteFrame(pair.a.get(), frame, NoStop());
    EXPECT_TRUE(written.ok()) << written.ToString();
    pair.a.Reset();
  });
  Result<Frame> read = ReadFrame(pair.b.get(), NoStop());
  writer.join();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.ValueOrDie().payload, frame.payload);
}

TEST(FrameSocketTest, CleanCloseOnBoundaryIsEofNotError) {
  SocketPair pair;
  pair.a.Reset();  // close without sending anything
  Result<std::optional<Frame>> read = ReadFrameOrEof(pair.b.get(), NoStop());
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_FALSE(read.ValueOrDie().has_value());
  // The strict variant reports the same close as a typed IoError.
  SocketPair strict;
  strict.a.Reset();
  Result<Frame> frame = ReadFrame(strict.b.get(), NoStop());
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kIoError);
}

TEST(FrameSocketTest, MidFrameDisconnectIsConnectionLost) {
  SocketPair pair;
  const std::string wire =
      EncodeFrame({FrameType::kCorroborateRequest, "abcdefgh"});
  // Send only part of the frame, then vanish: a typed ConnectionLost,
  // distinct from the boundary-close IoError, so clients can tell a
  // dropped in-flight message from a peer that never answered.
  ASSERT_EQ(::send(pair.a.get(), wire.data(), kFrameHeaderBytes + 3,
                   MSG_NOSIGNAL),
            static_cast<ssize_t>(kFrameHeaderBytes + 3));
  pair.a.Reset();
  Result<Frame> read = ReadFrame(pair.b.get(), NoStop());
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kConnectionLost);
  EXPECT_NE(read.status().message().find("mid-read"), std::string::npos);
}

TEST(FrameSocketTest, HeaderOnlyDisconnectIsConnectionLost) {
  SocketPair pair;
  const std::string wire =
      EncodeFrame({FrameType::kCorroborateRequest, "abcdefgh"});
  // The peer dies exactly on the header/payload boundary: the frame
  // was announced and never delivered, which is still a mid-frame
  // death, not a clean goodbye.
  ASSERT_EQ(::send(pair.a.get(), wire.data(), kFrameHeaderBytes,
                   MSG_NOSIGNAL),
            static_cast<ssize_t>(kFrameHeaderBytes));
  pair.a.Reset();
  Result<Frame> read = ReadFrame(pair.b.get(), NoStop());
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kConnectionLost);
  EXPECT_NE(read.status().message().find("mid-frame"), std::string::npos);
}

TEST(FrameSocketTest, GarbageBytesAreParseErrorNotCrash) {
  SocketPair pair;
  const std::string garbage(64, '\x5A');
  ASSERT_EQ(::send(pair.a.get(), garbage.data(), garbage.size(),
                   MSG_NOSIGNAL),
            static_cast<ssize_t>(garbage.size()));
  Result<Frame> read = ReadFrame(pair.b.get(), NoStop());
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kParseError);
}

TEST(FrameSocketTest, CancelledStopUnblocksRead) {
  SocketPair pair;
  CancellationToken token;
  const StopSignal stop(&token, Deadline());
  std::thread canceller([&] {
    (void)token.WaitForMs(30);
    token.Cancel();
  });
  // No bytes ever arrive; the read must return instead of hanging.
  Result<Frame> read = ReadFrame(pair.b.get(), stop);
  canceller.join();
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCancelled);
}

TEST(FrameSocketTest, ExpiredDeadlineUnblocksRead) {
  SocketPair pair;
  obs::ManualClock clock;
  const StopSignal stop(nullptr, Deadline::After(&clock, 1));
  clock.AdvanceNanos(2);
  Result<Frame> read = ReadFrame(pair.b.get(), stop);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCancelled);
}

TEST(FrameSocketTest, ReadAndWriteFailpointsInjectTypedErrors) {
  ScopedFailpointDisarmer disarm;
  SocketPair pair;
  Failpoints::Arm("server.frame.read",
                  {.code = StatusCode::kIoError, .message = "injected"});
  Result<Frame> read = ReadFrame(pair.b.get(), NoStop());
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
  EXPECT_EQ(read.status().message(), "injected");

  Failpoints::Arm("server.frame.write",
                  {.code = StatusCode::kIoError, .message = "injected"});
  Status written =
      WriteFrame(pair.a.get(), {FrameType::kPingRequest, ""}, NoStop());
  ASSERT_FALSE(written.ok());
  EXPECT_EQ(written.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace server
}  // namespace corrob
