#include "server/cache.h"

#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/protocol.h"

// Unit tests for the corrobd result cache: canonical key construction
// (one key per semantic request, regardless of spelling), exact LRU
// eviction order, dataset invalidation, and the disabled degenerate.

namespace corrob {
namespace server {
namespace {

TEST(CacheKeyTest, AlgorithmSpellingsFoldToOneKey) {
  const OptionList no_options;
  const std::string canonical =
      CacheKey("flights", 1, "IncEstHeu", 100, no_options);
  EXPECT_EQ(CacheKey("flights", 1, "inc_est_heu", 100, no_options),
            canonical);
  EXPECT_EQ(CacheKey("flights", 1, "inc-est-heu", 100, no_options),
            canonical);
  EXPECT_EQ(CacheKey("flights", 1, "INCESTHEU", 100, no_options),
            canonical);
  // A genuinely different algorithm is a different key.
  EXPECT_NE(CacheKey("flights", 1, "TwoEstimate", 100, no_options),
            canonical);
}

TEST(CacheKeyTest, EveryComponentDistinguishes) {
  const OptionList no_options;
  const std::string base = CacheKey("d", 1, "a", 10, no_options);
  EXPECT_NE(CacheKey("e", 1, "a", 10, no_options), base);
  EXPECT_NE(CacheKey("d", 2, "a", 10, no_options), base);
  EXPECT_NE(CacheKey("d", 1, "b", 10, no_options), base);
  EXPECT_NE(CacheKey("d", 1, "a", 11, no_options), base);
  EXPECT_NE(CacheKey("d", 1, "a", 10, {{"k", "v"}}), base);
}

TEST(CacheKeyTest, FieldContentCannotCollideAcrossBoundaries) {
  // Netstring framing: moving bytes between adjacent fields must
  // change the key, even when the concatenation is identical.
  EXPECT_NE(CacheKey("ab", 1, "c", 0, {}), CacheKey("a", 1, "bc", 0, {}));
  EXPECT_NE(CacheKey("d", 1, "a", 0, {{"xy", "z"}}),
            CacheKey("d", 1, "a", 0, {{"x", "yz"}}));
}

TEST(CacheKeyTest, NormalizedPermutationsShareOneKey) {
  // The codec normalizes option order before the key is built; any
  // permutation fed through NormalizeOptions lands on the same key.
  OptionList forward = {{"alpha", "1"}, {"beta", "2"}, {"gamma", "3"}};
  OptionList reversed = {{"gamma", "3"}, {"beta", "2"}, {"alpha", "1"}};
  ASSERT_TRUE(NormalizeOptions(&forward).ok());
  ASSERT_TRUE(NormalizeOptions(&reversed).ok());
  EXPECT_EQ(CacheKey("d", 1, "a", 0, forward),
            CacheKey("d", 1, "a", 0, reversed));
}

TEST(ResultCacheTest, LookupInsertAndCounters) {
  ResultCache cache(CacheOptions{.capacity_entries = 8, .shards = 2});
  ASSERT_TRUE(cache.enabled());

  EXPECT_FALSE(cache.Lookup("k1").has_value());
  cache.Insert("k1", "d", "payload-1");
  std::optional<std::string> hit = cache.Lookup("k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload-1");

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.entries, 1);
}

TEST(ResultCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  ResultCache cache(CacheOptions{.capacity_entries = 4, .shards = 1});
  cache.Insert("k", "d", "old");
  cache.Insert("k", "d", "new");
  EXPECT_EQ(cache.stats().entries, 1);
  EXPECT_EQ(cache.Lookup("k").value(), "new");
}

TEST(ResultCacheTest, TwoEntryEvictionIsExactLru) {
  // shards = 1 makes the global LRU order exact, so the evicted entry
  // is fully determined: a lookup refreshes recency and the *other*
  // entry goes.
  ResultCache cache(CacheOptions{.capacity_entries = 2, .shards = 1});
  cache.Insert("a", "d", "pa");
  cache.Insert("b", "d", "pb");
  ASSERT_TRUE(cache.Lookup("a").has_value());  // a is now most recent
  cache.Insert("c", "d", "pc");                // evicts b, not a

  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 2);
}

TEST(ResultCacheTest, ZeroCapacityDisablesEverything) {
  ResultCache cache(CacheOptions{.capacity_entries = 0, .shards = 8});
  EXPECT_FALSE(cache.enabled());
  cache.Insert("k", "d", "p");
  EXPECT_FALSE(cache.Lookup("k").has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.insertions, 0);
}

TEST(ResultCacheTest, ShardCountIsClampedToCapacity) {
  // 3 entries over 8 requested shards would give every shard a
  // 1-entry budget and inflate capacity to 8; the constructor clamps
  // shards down instead.
  ResultCache cache(CacheOptions{.capacity_entries = 3, .shards = 8});
  EXPECT_EQ(cache.options().shards, 3);
  ResultCache wild(CacheOptions{.capacity_entries = 1000, .shards = 9999});
  EXPECT_EQ(wild.options().shards, 64);
}

TEST(ResultCacheTest, InvalidateDatasetDropsOnlyItsEntries) {
  ResultCache cache(CacheOptions{.capacity_entries = 16, .shards = 4});
  cache.Insert("k1", "flights", "p1");
  cache.Insert("k2", "flights", "p2");
  cache.Insert("k3", "books", "p3");

  cache.InvalidateDataset("flights");
  EXPECT_FALSE(cache.Lookup("k1").has_value());
  EXPECT_FALSE(cache.Lookup("k2").has_value());
  EXPECT_TRUE(cache.Lookup("k3").has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 2);
  EXPECT_EQ(stats.entries, 1);

  // Invalidating a dataset with no entries is a harmless no-op.
  cache.InvalidateDataset("flights");
  EXPECT_EQ(cache.stats().invalidations, 2);
}

TEST(ResultCacheTest, ConcurrentMixedTrafficStaysConsistent) {
  ResultCache cache(CacheOptions{.capacity_entries = 32, .shards = 4});
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const std::string key = "k" + std::to_string((t * 7 + i) % 48);
        if (std::optional<std::string> got = cache.Lookup(key)) {
          // Payload content is keyed on the key itself: a hit must
          // never observe another key's bytes.
          EXPECT_EQ(*got, "payload-" + key);
        } else {
          cache.Insert(key, "d", "payload-" + key);
        }
        if (i % 100 == 99) cache.InvalidateDataset("d");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const CacheStats stats = cache.stats();
  EXPECT_LE(stats.entries, 32);
  EXPECT_GE(stats.insertions, 1);
}

}  // namespace
}  // namespace server
}  // namespace corrob
