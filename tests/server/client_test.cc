#include "server/client.h"

#include <memory>
#include <string>
#include <thread>
#include <utility>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "common/retry.h"
#include "common/socket.h"
#include "common/status.h"
#include "data/dataset_io.h"
#include "data/motivating_example.h"
#include "data/wal.h"
#include "server/frame.h"
#include "server/protocol.h"
#include "server/server.h"

// CorrobClient transport-failure taxonomy, pinned against a scripted
// fake server: a daemon that dies mid-response must surface as the
// typed kConnectionLost (the peer died while talking to us), while a
// close on a clean frame boundary stays kIoError (it never answered).
// tools/loadgen keys its dropped-response accounting on this split.

namespace corrob {
namespace server {
namespace {

StopSignal NoStop() { return StopSignal(); }

/// A Unix-socket server that accepts one connection, reads the
/// client's request frame, writes `response_bytes` verbatim (possibly
/// a deliberately truncated frame) and hangs up.
class ScriptedServer {
 public:
  explicit ScriptedServer(std::string response_bytes)
      : response_bytes_(std::move(response_bytes)) {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = ::testing::TempDir() + "/scripted_" + info->name() + ".sock";
  }

  ~ScriptedServer() {
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] Status Launch() {
    CORROB_ASSIGN_OR_RETURN(listener_, ListenUnixSocket(path_));
    thread_ = std::thread([this] { ServeOne(); });
    return Status::OK();
  }

  const std::string& path() const { return path_; }

 private:
  void ServeOne() {
    Result<UniqueFd> conn = AcceptWithStop(listener_.get(), NoStop());
    if (!conn.ok()) return;
    // Consume the request so the client's write never sees a reset,
    // then answer with the scripted bytes and hang up. The UniqueFd
    // closing at scope exit is the "daemon died" part of the script.
    Result<Frame> request = ReadFrame(conn.ValueOrDie().get(), NoStop());
    if (!request.ok()) return;
    if (!response_bytes_.empty()) {
      // lint: discard-ok: a scripted peer failing to write simulates the crash
      (void)WriteAll(conn.ValueOrDie().get(), response_bytes_.data(),
                     response_bytes_.size(), NoStop());
    }
  }

  std::string path_;
  std::string response_bytes_;
  UniqueFd listener_;
  std::thread thread_;
};

std::string WellFormedResultFrame() {
  CorroborateResponse body;
  body.algorithm = "IncEstHeu";
  body.iterations = 3;
  body.fact_probability = {0.5, 0.25};
  body.source_trust = {0.75};
  Frame frame;
  frame.type = FrameType::kResultResponse;
  frame.payload = EncodeCorroborateResponse(body);
  return EncodeFrame(frame);
}

TEST(CorrobClientTest, MidFrameServerDeathIsConnectionLost) {
  const std::string whole = WellFormedResultFrame();
  // Cut inside the payload: header delivered, body truncated.
  ScriptedServer server(whole.substr(0, whole.size() - 3));
  ASSERT_TRUE(server.Launch().ok());

  Result<CorrobClient> client = CorrobClient::Connect(server.path());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  CorroborateRequest request;
  request.dataset = "table1";
  Result<CorroborateOutcome> outcome =
      client.ValueOrDie().Corroborate(request, NoStop());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kConnectionLost)
      << outcome.status().ToString();
}

TEST(CorrobClientTest, HeaderOnlyServerDeathIsConnectionLost) {
  // Even a close exactly between the header and the payload is a
  // mid-message death: the server committed to a response length and
  // never delivered it.
  const std::string whole = WellFormedResultFrame();
  ScriptedServer server(whole.substr(0, kFrameHeaderBytes));
  ASSERT_TRUE(server.Launch().ok());

  Result<CorrobClient> client = CorrobClient::Connect(server.path());
  ASSERT_TRUE(client.ok());
  Result<CorroborateOutcome> outcome =
      client.ValueOrDie().Corroborate(CorroborateRequest{}, NoStop());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kConnectionLost);
}

TEST(CorrobClientTest, BoundaryCloseBeforeAnyResponseIsIoError) {
  ScriptedServer server("");  // reads the request, answers nothing
  ASSERT_TRUE(server.Launch().ok());

  Result<CorrobClient> client = CorrobClient::Connect(server.path());
  ASSERT_TRUE(client.ok());
  Result<CorroborateOutcome> outcome =
      client.ValueOrDie().Corroborate(CorroborateRequest{}, NoStop());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kIoError)
      << outcome.status().ToString();
}

TEST(CorrobClientTest, IntactScriptedResponseStillDecodes) {
  // Control arm: the same scripted server delivering the whole frame
  // produces a normal outcome, so the failures above are about the
  // truncation, not the harness.
  ScriptedServer server(WellFormedResultFrame());
  ASSERT_TRUE(server.Launch().ok());

  Result<CorrobClient> client = CorrobClient::Connect(server.path());
  ASSERT_TRUE(client.ok());
  Result<CorroborateOutcome> outcome =
      client.ValueOrDie().Corroborate(CorroborateRequest{}, NoStop());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
  EXPECT_EQ(outcome.ValueOrDie().result.iterations, 3u);
  EXPECT_EQ(outcome.ValueOrDie().raw_frame, WellFormedResultFrame());
}

TEST(CorrobClientTest, DisconnectedClientFailsFast) {
  CorrobClient never_connected;
  EXPECT_FALSE(never_connected.connected());
  Result<CorroborateOutcome> outcome =
      never_connected.Corroborate(CorroborateRequest{}, NoStop());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);
}

// ----- Reconnect-and-retry against a deliberately restarted daemon ----

/// A real corrobd on its own socket, drained on destruction; letting
/// one instance die and starting another on the same path is the
/// "daemon restarted under the client" scenario reconnect exists for.
class RestartableDaemon {
 public:
  explicit RestartableDaemon(ServerOptions options)
      : options_(std::move(options)) {}

  ~RestartableDaemon() { Stop(); }

  [[nodiscard]] Status Launch() {
    server_ = std::make_unique<CorrobdServer>(options_);
    CORROB_RETURN_NOT_OK(server_->Start());
    drain_ = std::make_unique<CancellationToken>();
    thread_ = std::thread([this] {
      // lint: discard-ok: drain status is checked via Stop() callers' asserts
      (void)server_->Serve(drain_.get());
    });
    return Status::OK();
  }

  void Stop() {
    if (drain_ != nullptr) drain_->Cancel();
    if (thread_.joinable()) thread_.join();
    server_.reset();
    drain_.reset();
  }

 private:
  ServerOptions options_;
  std::unique_ptr<CorrobdServer> server_;
  std::unique_ptr<CancellationToken> drain_;
  std::thread thread_;
};

class ReconnectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string stem =
        ::testing::TempDir() + "/reconnect_" + info->name();
    csv_path_ = stem + ".csv";
    const MotivatingExample example = MakeMotivatingExample();
    ASSERT_TRUE(SaveDatasetCsv(csv_path_, example.dataset).ok());
    options_.socket_path = stem + ".sock";
    options_.dataset_specs = {"table1=" + csv_path_};
    options_.drain_timeout_ms = 10000;
  }

  static RetryPolicy FastReconnectPolicy() {
    RetryPolicy policy;
    policy.max_attempts = 5;
    policy.initial_backoff_ms = 1.0;
    policy.max_backoff_ms = 5.0;
    return policy;
  }

  std::string csv_path_;
  ServerOptions options_;
};

TEST_F(ReconnectTest, IdempotentReadsSurviveADaemonRestart) {
  RestartableDaemon first(options_);
  ASSERT_TRUE(first.Launch().ok());
  Result<CorrobClient> client =
      CorrobClient::Connect(options_.socket_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  CorrobClient& conn = client.ValueOrDie();
  conn.EnableReconnect(FastReconnectPolicy());
  EXPECT_TRUE(conn.reconnect_enabled());

  CorroborateRequest request;
  request.dataset = "table1";
  request.algorithm = "TwoEstimate";
  Result<CorroborateOutcome> before =
      client.ValueOrDie().Corroborate(request, NoStop());
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  // The daemon the client is attached to dies; a replacement comes up
  // on the same socket before the retry budget runs out.
  first.Stop();
  RestartableDaemon second(options_);
  ASSERT_TRUE(second.Launch().ok());

  Result<CorroborateOutcome> after =
      client.ValueOrDie().Corroborate(request, NoStop());
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(after.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
  // Same CSV, same algorithm: the replacement serves identical bytes.
  EXPECT_EQ(after.ValueOrDie().raw_frame, before.ValueOrDie().raw_frame);

  // Stats ride the same reconnect path.
  Result<std::string> stats = client.ValueOrDie().Stats(NoStop());
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
}

TEST_F(ReconnectTest, WithoutOptInARestartIsATransientFailure) {
  RestartableDaemon first(options_);
  ASSERT_TRUE(first.Launch().ok());
  Result<CorrobClient> client =
      CorrobClient::Connect(options_.socket_path);
  ASSERT_TRUE(client.ok());
  EXPECT_FALSE(client.ValueOrDie().reconnect_enabled());

  first.Stop();
  RestartableDaemon second(options_);
  ASSERT_TRUE(second.Launch().ok());

  CorroborateRequest request;
  request.dataset = "table1";
  Result<CorroborateOutcome> outcome =
      client.ValueOrDie().Corroborate(request, NoStop());
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(IsTransientCode(outcome.status().code()))
      << outcome.status().ToString();
}

TEST_F(ReconnectTest, MutatingRequestsNeverAutoReconnect) {
  RestartableDaemon daemon(options_);
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client =
      CorrobClient::Connect(options_.socket_path);
  ASSERT_TRUE(client.ok());
  CorrobClient& conn = client.ValueOrDie();
  conn.EnableReconnect(FastReconnectPolicy());

  // After a hard close, the reconnect path redials transparently for
  // a read...
  conn.Close();
  CorroborateRequest read;
  read.dataset = "table1";
  Result<CorroborateOutcome> outcome = conn.Corroborate(read, NoStop());
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();

  // ...but an apply-delta on the same closed client fails fast: a
  // mutation the daemon might already have logged must never be
  // silently resent.
  conn.Close();
  ApplyDeltaRequest mutation;
  mutation.dataset = "table1";
  mutation.deltas = {MakeAddVote("w", "f", Vote::kTrue)};
  Result<ApplyDeltaResponse> applied = conn.ApplyDelta(mutation, NoStop());
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace server
}  // namespace corrob
