#include "server/client.h"

#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "common/socket.h"
#include "common/status.h"
#include "server/frame.h"
#include "server/protocol.h"

// CorrobClient transport-failure taxonomy, pinned against a scripted
// fake server: a daemon that dies mid-response must surface as the
// typed kConnectionLost (the peer died while talking to us), while a
// close on a clean frame boundary stays kIoError (it never answered).
// tools/loadgen keys its dropped-response accounting on this split.

namespace corrob {
namespace server {
namespace {

StopSignal NoStop() { return StopSignal(); }

/// A Unix-socket server that accepts one connection, reads the
/// client's request frame, writes `response_bytes` verbatim (possibly
/// a deliberately truncated frame) and hangs up.
class ScriptedServer {
 public:
  explicit ScriptedServer(std::string response_bytes)
      : response_bytes_(std::move(response_bytes)) {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = ::testing::TempDir() + "/scripted_" + info->name() + ".sock";
  }

  ~ScriptedServer() {
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] Status Launch() {
    CORROB_ASSIGN_OR_RETURN(listener_, ListenUnixSocket(path_));
    thread_ = std::thread([this] { ServeOne(); });
    return Status::OK();
  }

  const std::string& path() const { return path_; }

 private:
  void ServeOne() {
    Result<UniqueFd> conn = AcceptWithStop(listener_.get(), NoStop());
    if (!conn.ok()) return;
    // Consume the request so the client's write never sees a reset,
    // then answer with the scripted bytes and hang up. The UniqueFd
    // closing at scope exit is the "daemon died" part of the script.
    Result<Frame> request = ReadFrame(conn.ValueOrDie().get(), NoStop());
    if (!request.ok()) return;
    if (!response_bytes_.empty()) {
      // lint: discard-ok: a scripted peer failing to write simulates the crash
      (void)WriteAll(conn.ValueOrDie().get(), response_bytes_.data(),
                     response_bytes_.size(), NoStop());
    }
  }

  std::string path_;
  std::string response_bytes_;
  UniqueFd listener_;
  std::thread thread_;
};

std::string WellFormedResultFrame() {
  CorroborateResponse body;
  body.algorithm = "IncEstHeu";
  body.iterations = 3;
  body.fact_probability = {0.5, 0.25};
  body.source_trust = {0.75};
  Frame frame;
  frame.type = FrameType::kResultResponse;
  frame.payload = EncodeCorroborateResponse(body);
  return EncodeFrame(frame);
}

TEST(CorrobClientTest, MidFrameServerDeathIsConnectionLost) {
  const std::string whole = WellFormedResultFrame();
  // Cut inside the payload: header delivered, body truncated.
  ScriptedServer server(whole.substr(0, whole.size() - 3));
  ASSERT_TRUE(server.Launch().ok());

  Result<CorrobClient> client = CorrobClient::Connect(server.path());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  CorroborateRequest request;
  request.dataset = "table1";
  Result<CorroborateOutcome> outcome =
      client.ValueOrDie().Corroborate(request, NoStop());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kConnectionLost)
      << outcome.status().ToString();
}

TEST(CorrobClientTest, HeaderOnlyServerDeathIsConnectionLost) {
  // Even a close exactly between the header and the payload is a
  // mid-message death: the server committed to a response length and
  // never delivered it.
  const std::string whole = WellFormedResultFrame();
  ScriptedServer server(whole.substr(0, kFrameHeaderBytes));
  ASSERT_TRUE(server.Launch().ok());

  Result<CorrobClient> client = CorrobClient::Connect(server.path());
  ASSERT_TRUE(client.ok());
  Result<CorroborateOutcome> outcome =
      client.ValueOrDie().Corroborate(CorroborateRequest{}, NoStop());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kConnectionLost);
}

TEST(CorrobClientTest, BoundaryCloseBeforeAnyResponseIsIoError) {
  ScriptedServer server("");  // reads the request, answers nothing
  ASSERT_TRUE(server.Launch().ok());

  Result<CorrobClient> client = CorrobClient::Connect(server.path());
  ASSERT_TRUE(client.ok());
  Result<CorroborateOutcome> outcome =
      client.ValueOrDie().Corroborate(CorroborateRequest{}, NoStop());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kIoError)
      << outcome.status().ToString();
}

TEST(CorrobClientTest, IntactScriptedResponseStillDecodes) {
  // Control arm: the same scripted server delivering the whole frame
  // produces a normal outcome, so the failures above are about the
  // truncation, not the harness.
  ScriptedServer server(WellFormedResultFrame());
  ASSERT_TRUE(server.Launch().ok());

  Result<CorrobClient> client = CorrobClient::Connect(server.path());
  ASSERT_TRUE(client.ok());
  Result<CorroborateOutcome> outcome =
      client.ValueOrDie().Corroborate(CorroborateRequest{}, NoStop());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
  EXPECT_EQ(outcome.ValueOrDie().result.iterations, 3u);
  EXPECT_EQ(outcome.ValueOrDie().raw_frame, WellFormedResultFrame());
}

TEST(CorrobClientTest, DisconnectedClientFailsFast) {
  CorrobClient never_connected;
  EXPECT_FALSE(never_connected.connected());
  Result<CorroborateOutcome> outcome =
      never_connected.Corroborate(CorroborateRequest{}, NoStop());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace server
}  // namespace corrob
