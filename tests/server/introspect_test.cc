#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "common/failpoint.h"
#include "common/socket.h"
#include "data/dataset_io.h"
#include "data/motivating_example.h"
#include "obs/clock.h"
#include "obs/json.h"
#include "server/client.h"
#include "server/frame.h"
#include "server/protocol.h"
#include "server/server.h"

// Live-introspection tests: the 0x06/0x89 frame pair, the flight
// recorder's determinism contract, request-id echo (protocol v3), the
// stuck-request watchdog, and snapshot integrity under concurrent
// load. Deterministic in-flight control comes from the
// server.request.stall_hard failpoint, never from timing guesses.

namespace corrob {
namespace server {
namespace {

StopSignal NoStop() { return StopSignal(); }

template <typename Predicate>
bool EventuallyTrue(Predicate predicate) {
  CancellationToken pacer;
  for (int i = 0; i < 400; ++i) {
    if (predicate()) return true;
    // lint: discard-ok: plain sleep; the token is never cancelled
    (void)pacer.WaitForMs(5.0);
  }
  return predicate();
}

/// A corrobd serving the motivating example on its own socket, with
/// Serve() on a background thread and drain-on-destruction.
class Daemon {
 public:
  explicit Daemon(ServerOptions options) : options_(std::move(options)) {}

  ~Daemon() {
    drain_.Cancel();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] Status Launch() {
    server_ = std::make_unique<CorrobdServer>(options_);
    CORROB_RETURN_NOT_OK(server_->Start());
    thread_ = std::thread([this] { serve_status_ = server_->Serve(&drain_); });
    return Status::OK();
  }

  Status Drain() {
    drain_.Cancel();
    if (thread_.joinable()) thread_.join();
    return serve_status_;
  }

  CorrobdServer& server() { return *server_; }

 private:
  ServerOptions options_;
  std::unique_ptr<CorrobdServer> server_;
  CancellationToken drain_;
  std::thread thread_;
  Status serve_status_;
};

class IntrospectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string stem =
        ::testing::TempDir() + "/introspect_" + info->name();
    csv_path_ = stem + ".csv";
    socket_path_ = stem + ".sock";
    const MotivatingExample example = MakeMotivatingExample();
    ASSERT_TRUE(SaveDatasetCsv(csv_path_, example.dataset).ok());
  }

  void TearDown() override { Failpoints::DisarmAll(); }

  ServerOptions BaseOptions() const {
    ServerOptions options;
    options.socket_path = socket_path_;
    options.dataset_specs = {"table1=" + csv_path_};
    options.drain_timeout_ms = 10000;
    return options;
  }

  Result<CorrobClient> Connect() const {
    return CorrobClient::Connect(socket_path_);
  }

  /// Fetches and parses the introspection document.
  Result<obs::JsonValue> FetchIntrospect(CorrobClient* client,
                                         uint32_t top_k = 10,
                                         uint32_t max_recent = 100) const {
    IntrospectRequest request;
    request.top_k = top_k;
    request.max_recent = max_recent;
    CORROB_ASSIGN_OR_RETURN(std::string payload,
                            client->Introspect(request, NoStop()));
    obs::JsonValue doc;
    std::string error;
    if (!obs::JsonValue::Parse(payload, &doc, &error)) {
      return Status::ParseError("bad introspect JSON: " + error);
    }
    return doc;
  }

  std::string csv_path_;
  std::string socket_path_;
};

TEST_F(IntrospectTest, IntrospectReportsSchemaActiveAndRecorder) {
  ServerOptions options = BaseOptions();
  options.cache.capacity_entries = 16;
  Daemon daemon(options);
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  CorroborateRequest request;
  request.dataset = "table1";
  request.request_id = "intro-1";
  Result<CorroborateOutcome> outcome =
      client.ValueOrDie().Corroborate(request, NoStop());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);

  Result<obs::JsonValue> doc = FetchIntrospect(&client.ValueOrDie());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::JsonValue& introspect = doc.ValueOrDie();
  EXPECT_EQ(introspect.Find("schema")->string_value(), "corrob.introspect/1");
  // The corroborate request completed before the introspect was read:
  // the active table is empty, the ring holds the one record.
  EXPECT_EQ(introspect.Find("active")->size(), 0u);
  const obs::JsonValue* recorder = introspect.Find("recorder");
  ASSERT_NE(recorder, nullptr);
  ASSERT_EQ(recorder->Find("recent")->size(), 1u);
  const obs::JsonValue& record = recorder->Find("recent")->at(0);
  EXPECT_EQ(record.Find("id")->string_value(), "intro-1");
  EXPECT_EQ(record.Find("dataset")->string_value(), "table1");
  EXPECT_EQ(record.Find("priority")->string_value(), "batch");
  // Watchdog and metrics blocks ride along.
  ASSERT_NE(introspect.Find("watchdog"), nullptr);
  EXPECT_TRUE(introspect.Find("watchdog")->Find("stuck")->int_value() == 0);
  ASSERT_NE(introspect.Find("metrics"), nullptr);
  EXPECT_TRUE(introspect.Find("metrics")->Find("counters") != nullptr);
}

TEST_F(IntrospectTest, MalformedIntrospectPayloadGetsTypedError) {
  Daemon daemon(BaseOptions());
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = Connect();
  ASSERT_TRUE(client.ok());

  Frame wire;
  wire.type = FrameType::kIntrospectRequest;
  wire.payload = "\x01garbage";  // version 1 is below the v3 floor
  ASSERT_TRUE(WriteFrame(client.ValueOrDie().fd(), wire, NoStop()).ok());
  Result<Frame> response = ReadFrame(client.ValueOrDie().fd(), NoStop());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.ValueOrDie().type, FrameType::kErrorResponse);
}

TEST_F(IntrospectTest, RequestIdEchoedOnResultCacheHitAndError) {
  ServerOptions options = BaseOptions();
  options.cache.capacity_entries = 16;
  Daemon daemon(options);
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = Connect();
  ASSERT_TRUE(client.ok());

  CorroborateRequest request;
  request.dataset = "table1";
  request.request_id = "echo-cold";
  Result<CorroborateOutcome> cold =
      client.ValueOrDie().Corroborate(request, NoStop());
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
  EXPECT_EQ(cold.ValueOrDie().result.request_id, "echo-cold");

  // The replay serves the SAME canonical bytes but must echo THIS
  // request's id: the id is spliced onto the response, never cached.
  request.request_id = "echo-hit";
  Result<CorroborateOutcome> hit =
      client.ValueOrDie().Corroborate(request, NoStop());
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(hit.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
  EXPECT_EQ(hit.ValueOrDie().result.request_id, "echo-hit");
  EXPECT_EQ(hit.ValueOrDie().result.fact_probability,
            cold.ValueOrDie().result.fact_probability);

  CorroborateRequest bad;
  bad.dataset = "no-such-dataset";
  bad.request_id = "echo-error";
  Result<CorroborateOutcome> error =
      client.ValueOrDie().Corroborate(bad, NoStop());
  ASSERT_TRUE(error.ok());
  ASSERT_EQ(error.ValueOrDie().kind, CorroborateOutcome::Kind::kError);
  EXPECT_EQ(error.ValueOrDie().error.request_id, "echo-error");

  // Requests without an id round-trip byte-identically to v1 clients:
  // the recorder ring shows them with an empty id.
  CorroborateRequest anonymous;
  anonymous.dataset = "table1";
  Result<CorroborateOutcome> plain =
      client.ValueOrDie().Corroborate(anonymous, NoStop());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.ValueOrDie().result.request_id, "");
}

TEST_F(IntrospectTest, RecorderSnapshotIsByteIdenticalAcrossRunThreads) {
  // The acceptance bar: under a ManualClock, a scripted request
  // sequence produces a bit-identical flight-recorder JSON subtree
  // whether the daemon runs 1 worker thread or 4, and the active
  // table is empty at quiesce. (The metrics dump is process-global
  // and excluded; only the "recorder" subtree is compared.)
  obs::ManualClock clock;
  clock.SetNanos(1'000);
  const auto run_script = [&](int run_threads) -> std::string {
    ServerOptions options = BaseOptions();
    options.run_threads = run_threads;
    options.cache.capacity_entries = 16;
    options.clock = &clock;
    Daemon daemon(options);
    if (!daemon.Launch().ok()) return "launch failed";
    Result<CorrobClient> client = Connect();
    if (!client.ok()) return "connect failed";

    // The script: a cold run, a cache hit on the same key, a second
    // cold key, an error, tenants alternating.
    CorroborateRequest request;
    request.dataset = "table1";
    for (int i = 0; i < 8; ++i) {
      request.request_id = "script-" + std::to_string(i);
      request.tenant = i % 2 == 0 ? "alpha" : "beta";
      request.options.clear();
      if (i >= 6) {
        // A distinct cache key for the tail: two cold runs.
        request.options = {{"script_key", std::to_string(i)}};
      }
      if (!client.ValueOrDie().Corroborate(request, NoStop()).ok()) {
        return "corroborate failed";
      }
    }
    CorroborateRequest bad;
    bad.dataset = "no-such-dataset";
    bad.request_id = "script-err";
    bad.tenant = "alpha";
    if (!client.ValueOrDie().Corroborate(bad, NoStop()).ok()) {
      return "error request failed";
    }

    IntrospectRequest introspect_request;
    introspect_request.top_k = 10;
    introspect_request.max_recent = 100;
    Result<std::string> payload =
        client.ValueOrDie().Introspect(introspect_request, NoStop());
    if (!payload.ok()) return "introspect failed";
    obs::JsonValue doc;
    if (!obs::JsonValue::Parse(payload.ValueOrDie(), &doc)) {
      return "parse failed";
    }
    EXPECT_EQ(doc.Find("active")->size(), 0u);
    return doc.Find("recorder")->Dump();
  };

  const std::string single = run_script(1);
  const std::string pooled = run_script(4);
  ASSERT_NE(single, "launch failed");
  EXPECT_EQ(single, pooled);
  // Sanity: the subtree really carries the script.
  EXPECT_NE(single.find("script-0"), std::string::npos);
  EXPECT_NE(single.find("script-err"), std::string::npos);
  EXPECT_NE(single.find("cache_hit"), std::string::npos);
  EXPECT_NE(single.find("rejected"), std::string::npos);
}

TEST_F(IntrospectTest, WatchdogFlagsStuckRequestAndRecoversOnRelease) {
  ServerOptions options = BaseOptions();
  options.watchdog_interval_ms = 10;
  options.watchdog_deadline_multiplier = 1.0;
  Daemon daemon(options);
  ASSERT_TRUE(daemon.Launch().ok());

  Failpoints::Arm("server.request.stall_hard",
                  {.code = StatusCode::kInternal, .message = "stall"});
  Result<CorrobClient> stuck_client = Connect();
  ASSERT_TRUE(stuck_client.ok());
  Result<CorroborateOutcome> held = Status::Internal("not yet run");
  std::thread holder([&] {
    CorroborateRequest request;
    request.dataset = "table1";
    request.request_id = "wedged";
    request.timeout_ms = 5;  // allowance 5ms; stall_hard ignores it
    held = stuck_client.ValueOrDie().Corroborate(request, NoStop());
  });

  // The watchdog must flag the wedged request: visible in the active
  // table and in the corrob.server.watchdog.* accounting.
  Result<CorrobClient> observer = Connect();
  ASSERT_TRUE(observer.ok());
  ASSERT_TRUE(EventuallyTrue([&] {
    Result<obs::JsonValue> doc = FetchIntrospect(&observer.ValueOrDie());
    if (!doc.ok()) return false;
    const obs::JsonValue* active = doc.ValueOrDie().Find("active");
    if (active == nullptr || active->size() != 1) return false;
    const obs::JsonValue& row = active->at(0);
    return row.Find("id")->string_value() == "wedged" &&
           row.Find("flagged")->bool_value();
  }));
  Result<obs::JsonValue> flagged_doc =
      FetchIntrospect(&observer.ValueOrDie());
  ASSERT_TRUE(flagged_doc.ok());
  const obs::JsonValue* watchdog = flagged_doc.ValueOrDie().Find("watchdog");
  ASSERT_NE(watchdog, nullptr);
  EXPECT_GE(watchdog->Find("scans")->int_value(), 1);
  EXPECT_GE(watchdog->Find("flagged")->int_value(), 1);
  EXPECT_EQ(watchdog->Find("stuck")->int_value(), 1);

  // Releasing the failpoint lets the request finish; the stuck gauge
  // returns to zero and the record lands in the ring.
  Failpoints::Disarm("server.request.stall_hard");
  holder.join();
  ASSERT_TRUE(held.ok()) << held.status().ToString();
  Result<obs::JsonValue> after = FetchIntrospect(&observer.ValueOrDie());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.ValueOrDie().Find("active")->size(), 0u);
  EXPECT_EQ(after.ValueOrDie().Find("watchdog")->Find("stuck")->int_value(),
            0);
}

TEST_F(IntrospectTest, SnapshotsNeverTearUnderConcurrentLoad) {
  // 4 worker threads mutate every counter the snapshots read while
  // the main thread alternates stats and introspect fetches: each
  // snapshot must parse, carry its schema, keep `recent` in ascending
  // sequence order, and the recorder counters must be monotone from
  // one snapshot to the next.
  ServerOptions options = BaseOptions();
  options.cache.capacity_entries = 16;
  Daemon daemon(options);
  ASSERT_TRUE(daemon.Launch().ok());

  constexpr int kWorkers = 4;
  constexpr int kRequestsPerWorker = 40;
  std::atomic<int> completed{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      Result<CorrobClient> client = Connect();
      if (!client.ok()) return;
      CorroborateRequest request;
      request.dataset = "table1";
      for (int i = 0; i < kRequestsPerWorker; ++i) {
        request.request_id =
            "w" + std::to_string(w) + "-" + std::to_string(i);
        request.tenant = "tenant" + std::to_string(w);
        request.options = {{"key", std::to_string(i % 4)}};
        if (client.ValueOrDie().Corroborate(request, NoStop()).ok()) {
          completed.fetch_add(1);
        }
      }
    });
  }

  Result<CorrobClient> observer = Connect();
  ASSERT_TRUE(observer.ok());
  int64_t last_started = 0;
  int64_t last_completed = 0;
  int snapshots = 0;
  while (completed.load() < kWorkers * kRequestsPerWorker) {
    Result<obs::JsonValue> doc = FetchIntrospect(&observer.ValueOrDie());
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    const obs::JsonValue& introspect = doc.ValueOrDie();
    ASSERT_EQ(introspect.Find("schema")->string_value(),
              "corrob.introspect/1");
    const obs::JsonValue* recorder = introspect.Find("recorder");
    ASSERT_NE(recorder, nullptr);
    const int64_t started = recorder->Find("started")->int_value();
    const int64_t finished = recorder->Find("completed")->int_value();
    ASSERT_GE(started, finished);
    ASSERT_GE(started, last_started) << "started went backwards";
    ASSERT_GE(finished, last_completed) << "completed went backwards";
    last_started = started;
    last_completed = finished;
    int64_t last_seq = 0;
    for (const obs::JsonValue& row : recorder->Find("recent")->items()) {
      const int64_t seq = row.Find("seq")->int_value();
      ASSERT_GT(seq, last_seq) << "recent ring out of order";
      last_seq = seq;
    }
    // Stats must stay parseable concurrently too.
    Result<std::string> stats = observer.ValueOrDie().Stats(NoStop());
    ASSERT_TRUE(stats.ok());
    obs::JsonValue stats_doc;
    ASSERT_TRUE(obs::JsonValue::Parse(stats.ValueOrDie(), &stats_doc));
    ASSERT_GE(stats_doc.Find("recorder")->Find("started")->int_value(),
              last_started);
    ++snapshots;
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_GT(snapshots, 0);

  // Quiesce: everything started has completed and the ring agrees.
  Result<obs::JsonValue> final_doc = FetchIntrospect(&observer.ValueOrDie());
  ASSERT_TRUE(final_doc.ok());
  const obs::JsonValue* recorder = final_doc.ValueOrDie().Find("recorder");
  EXPECT_EQ(recorder->Find("started")->int_value(),
            recorder->Find("completed")->int_value());
  EXPECT_EQ(final_doc.ValueOrDie().Find("active")->size(), 0u);
}

}  // namespace
}  // namespace server
}  // namespace corrob
