#include <dirent.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "common/failpoint.h"
#include "core/delta_apply.h"
#include "core/registry.h"
#include "data/dataset_io.h"
#include "data/motivating_example.h"
#include "data/wal.h"
#include "server/client.h"
#include "server/server.h"

// Durable delta ingestion end to end: apply-delta changes the served
// answers and bumps the generation, acked deltas survive a daemon
// restart (the crash-soak CI job does the kill -9 variant of this),
// and a WAL disk failure degrades the dataset to read-only serving
// instead of taking the daemon down.

namespace corrob {
namespace server {
namespace {

StopSignal NoStop() { return StopSignal(); }

/// A corrobd on its own socket with Serve() on a background thread;
/// drains on destruction. Mirrors the helper in server_test.cc.
class Daemon {
 public:
  explicit Daemon(ServerOptions options) : options_(std::move(options)) {}

  ~Daemon() {
    drain_.Cancel();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] Status Launch() {
    server_ = std::make_unique<CorrobdServer>(options_);
    CORROB_RETURN_NOT_OK(server_->Start());
    thread_ = std::thread([this] { serve_status_ = server_->Serve(&drain_); });
    return Status::OK();
  }

  Status Drain() {
    drain_.Cancel();
    if (thread_.joinable()) thread_.join();
    return serve_status_;
  }

  CorrobdServer& server() { return *server_; }

 private:
  ServerOptions options_;
  std::unique_ptr<CorrobdServer> server_;
  CancellationToken drain_;
  std::thread thread_;
  Status serve_status_;
};

/// Removes every file in `dir` and the directory itself, so each test
/// starts with a WAL directory that does not exist.
void RemoveTree(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return;
  std::vector<std::string> names;
  for (struct dirent* entry = ::readdir(handle); entry != nullptr;
       entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(handle);
  for (const std::string& name : names) {
    const std::string path = dir + "/" + name;
    if (::unlink(path.c_str()) != 0) RemoveTree(path);
  }
  ::rmdir(dir.c_str());
}

class WalServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string stem =
        ::testing::TempDir() + "/wal_serving_" + info->name();
    csv_path_ = stem + ".csv";
    socket_path_ = stem + ".sock";
    wal_dir_ = stem + ".wal";
    RemoveTree(wal_dir_);
    const MotivatingExample example = MakeMotivatingExample();
    ASSERT_TRUE(SaveDatasetCsv(csv_path_, example.dataset).ok());
  }

  void TearDown() override {
    Failpoints::DisarmAll();
    RemoveTree(wal_dir_);
  }

  ServerOptions WalOptionsBase() const {
    ServerOptions options;
    options.socket_path = socket_path_;
    options.dataset_specs = {"table1=" + csv_path_};
    options.drain_timeout_ms = 10000;
    options.wal_dir = wal_dir_;
    return options;
  }

  static ApplyDeltaRequest SampleDeltaRequest() {
    ApplyDeltaRequest request;
    request.dataset = "table1";
    request.deltas = {
        MakeAddVote("new-witness", "obama-born-hawaii", Vote::kTrue),
        MakeAddVote("new-witness", "obama-born-kenya", Vote::kFalse),
    };
    return request;
  }

  static CorroborateRequest SampleCorroborate() {
    CorroborateRequest request;
    request.dataset = "table1";
    request.algorithm = "TwoEstimate";
    return request;
  }

  std::string csv_path_;
  std::string socket_path_;
  std::string wal_dir_;
};

TEST_F(WalServingTest, ApplyDeltaWithoutWalIsFailedPrecondition) {
  ServerOptions options = WalOptionsBase();
  options.wal_dir.clear();
  Daemon daemon(options);
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = CorrobClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok());
  Result<ApplyDeltaResponse> applied =
      client.ValueOrDie().ApplyDelta(SampleDeltaRequest(), NoStop());
  EXPECT_EQ(applied.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(applied.status().message().find("--wal"), std::string::npos);
}

TEST_F(WalServingTest, ApplyDeltaToUnknownDatasetIsNotFound) {
  Daemon daemon(WalOptionsBase());
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = CorrobClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok());
  ApplyDeltaRequest request = SampleDeltaRequest();
  request.dataset = "no-such-table";
  Result<ApplyDeltaResponse> applied =
      client.ValueOrDie().ApplyDelta(request, NoStop());
  EXPECT_EQ(applied.status().code(), StatusCode::kNotFound);
}

TEST_F(WalServingTest, ApplyDeltaChangesServedAnswersBitExactly) {
  Daemon daemon(WalOptionsBase());
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = CorrobClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok());

  // Answer before the delta (also warms the result cache, so this
  // exercises invalidation too).
  Result<CorroborateOutcome> before =
      client.ValueOrDie().Corroborate(SampleCorroborate(), NoStop());
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);

  const ApplyDeltaRequest delta = SampleDeltaRequest();
  Result<ApplyDeltaResponse> applied =
      client.ValueOrDie().ApplyDelta(delta, NoStop());
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied.ValueOrDie().applied, 2u);
  EXPECT_GE(applied.ValueOrDie().generation, 2u);

  Result<CorroborateOutcome> after =
      client.ValueOrDie().Corroborate(SampleCorroborate(), NoStop());
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
  // The cached pre-delta answer must not leak through.
  EXPECT_NE(after.ValueOrDie().raw_frame, before.ValueOrDie().raw_frame);

  // The served answer equals an in-process rebuild from the same CSV
  // and the same deltas, bit for bit.
  Result<LabeledDataset> loaded = LoadDatasetCsv(csv_path_);
  ASSERT_TRUE(loaded.ok());
  Result<Dataset> rebuilt =
      ApplyDeltasToDataset(loaded.ValueOrDie().dataset, delta.deltas);
  ASSERT_TRUE(rebuilt.ok());
  Result<std::unique_ptr<Corroborator>> direct =
      MakeCorroborator("TwoEstimate", CorroboratorOptions{.num_threads = 1});
  ASSERT_TRUE(direct.ok());
  Result<CorroborationResult> run =
      direct.ValueOrDie()->Run(rebuilt.ValueOrDie());
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(after.ValueOrDie().result.fact_probability,
            run.ValueOrDie().fact_probability);
  EXPECT_EQ(after.ValueOrDie().result.source_trust,
            run.ValueOrDie().source_trust);
}

TEST_F(WalServingTest, AckedDeltasSurviveDaemonRestart) {
  const ApplyDeltaRequest delta = SampleDeltaRequest();
  std::vector<double> probabilities_before_restart;
  {
    Daemon daemon(WalOptionsBase());
    ASSERT_TRUE(daemon.Launch().ok());
    Result<CorrobClient> client = CorrobClient::Connect(socket_path_);
    ASSERT_TRUE(client.ok());
    Result<ApplyDeltaResponse> applied =
        client.ValueOrDie().ApplyDelta(delta, NoStop());
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    Result<CorroborateOutcome> answer =
        client.ValueOrDie().Corroborate(SampleCorroborate(), NoStop());
    ASSERT_TRUE(answer.ok());
    ASSERT_EQ(answer.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
    probabilities_before_restart =
        answer.ValueOrDie().result.fact_probability;
    EXPECT_TRUE(daemon.Drain().ok());
  }
  // A fresh daemon on the same WAL directory replays the acked deltas
  // before serving its first request.
  {
    Daemon daemon(WalOptionsBase());
    ASSERT_TRUE(daemon.Launch().ok());
    Result<CorrobClient> client = CorrobClient::Connect(socket_path_);
    ASSERT_TRUE(client.ok());
    Result<CorroborateOutcome> answer =
        client.ValueOrDie().Corroborate(SampleCorroborate(), NoStop());
    ASSERT_TRUE(answer.ok());
    ASSERT_EQ(answer.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
    EXPECT_EQ(answer.ValueOrDie().result.fact_probability,
              probabilities_before_restart);
    // Stats report the replayed deltas.
    Result<std::string> stats = client.ValueOrDie().Stats(NoStop());
    ASSERT_TRUE(stats.ok());
    EXPECT_NE(stats.ValueOrDie().find("\"wal\""), std::string::npos);
    EXPECT_NE(stats.ValueOrDie().find("\"deltas_applied\""),
              std::string::npos);
  }
}

TEST_F(WalServingTest, ReloadIsRejectedForWalBackedDatasets) {
  // A CSV reload would resurrect the startup file and silently drop
  // every acked delta from live serving (restart would then replay
  // them — live and recovered state diverging). corrobd refuses.
  Daemon daemon(WalOptionsBase());
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = CorrobClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok());
  Result<ApplyDeltaResponse> applied =
      client.ValueOrDie().ApplyDelta(SampleDeltaRequest(), NoStop());
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  Result<CorroborateOutcome> before =
      client.ValueOrDie().Corroborate(SampleCorroborate(), NoStop());
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);

  ReloadRequest named;
  named.dataset = "table1";
  Result<ReloadResponse> reloaded =
      client.ValueOrDie().Reload(named, NoStop());
  EXPECT_EQ(reloaded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(reloaded.status().message().find("vote-delta log"),
            std::string::npos);
  // The bulk variant walks the same per-dataset path.
  Result<ReloadResponse> bulk =
      client.ValueOrDie().Reload(ReloadRequest(), NoStop());
  EXPECT_EQ(bulk.status().code(), StatusCode::kFailedPrecondition);

  // The refusal leaves serving untouched: the applied deltas still
  // shape the answers.
  Result<CorroborateOutcome> after =
      client.ValueOrDie().Corroborate(SampleCorroborate(), NoStop());
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
  EXPECT_EQ(after.ValueOrDie().result.fact_probability,
            before.ValueOrDie().result.fact_probability);
}

TEST_F(WalServingTest, WalFailureDegradesToReadOnlyServing) {
  Daemon daemon(WalOptionsBase());
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = CorrobClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok());

  // First apply succeeds and is on the log.
  Result<ApplyDeltaResponse> applied =
      client.ValueOrDie().ApplyDelta(SampleDeltaRequest(), NoStop());
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();

  // The disk starts failing: the next apply reports the typed code
  // and flips the dataset read-only.
  Failpoints::Arm("wal.append");
  ApplyDeltaRequest second;
  second.dataset = "table1";
  second.deltas = {MakeAddVote("late-witness", "obama-born-hawaii",
                               Vote::kTrue)};
  Result<ApplyDeltaResponse> failed =
      client.ValueOrDie().ApplyDelta(second, NoStop());
  EXPECT_EQ(failed.status().code(), StatusCode::kWalUnavailable);

  // Sticky even after the disk recovers: the log can no longer be
  // trusted to be ahead of the resident state.
  Failpoints::DisarmAll();
  Result<ApplyDeltaResponse> still_failed =
      client.ValueOrDie().ApplyDelta(second, NoStop());
  EXPECT_EQ(still_failed.status().code(), StatusCode::kWalUnavailable);
  EXPECT_NE(still_failed.status().message().find("read-only"),
            std::string::npos);

  // Reads are unaffected; no in-flight response was dropped and the
  // daemon is still healthy.
  Result<CorroborateOutcome> answer =
      client.ValueOrDie().Corroborate(SampleCorroborate(), NoStop());
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
  Result<std::string> stats = client.ValueOrDie().Stats(NoStop());
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.ValueOrDie().find("\"unhealthy_datasets\":1"),
            std::string::npos)
      << stats.ValueOrDie();
  EXPECT_TRUE(daemon.Drain().ok());
}

TEST_F(WalServingTest, RejectedDeltaBatchLeavesWalAndStateUntouched) {
  Daemon daemon(WalOptionsBase());
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = CorrobClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok());

  Result<CorroborateOutcome> before =
      client.ValueOrDie().Corroborate(SampleCorroborate(), NoStop());
  ASSERT_TRUE(before.ok());

  // An empty batch is rejected at the codec layer; the WAL never
  // sees it and later applies still work.
  ApplyDeltaRequest empty;
  empty.dataset = "table1";
  Result<ApplyDeltaResponse> rejected =
      client.ValueOrDie().ApplyDelta(empty, NoStop());
  EXPECT_FALSE(rejected.ok());

  Result<CorroborateOutcome> after =
      client.ValueOrDie().Corroborate(SampleCorroborate(), NoStop());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.ValueOrDie().raw_frame, before.ValueOrDie().raw_frame);

  Result<ApplyDeltaResponse> applied =
      client.ValueOrDie().ApplyDelta(SampleDeltaRequest(), NoStop());
  EXPECT_TRUE(applied.ok()) << applied.status().ToString();
}

}  // namespace
}  // namespace server
}  // namespace corrob
