#include "server/coalesce.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"

// Unit tests for corrobd's request coalescer. The invariants under
// test are exactly the ones ExecuteOne's promotion loop depends on:
// follower cancellation never disturbs the leader, a leader abandon
// promotes exactly one follower, and published bytes reach every
// waiter unchanged.

namespace corrob {
namespace server {
namespace {

StopSignal NoStop() { return StopSignal(); }

StopSignal StopOn(const CancellationToken* token) {
  return StopSignal(token, Deadline());
}

TEST(RunCoalescerTest, FirstAttachLeadsLaterAttachesFollow) {
  RunCoalescer coalescer;
  RunCoalescer::Ticket leader = coalescer.Attach("k");
  EXPECT_EQ(leader.role(), RunCoalescer::Role::kLeader);
  RunCoalescer::Ticket follower = coalescer.Attach("k");
  EXPECT_EQ(follower.role(), RunCoalescer::Role::kFollower);
  // A different key is its own flight.
  RunCoalescer::Ticket other = coalescer.Attach("k2");
  EXPECT_EQ(other.role(), RunCoalescer::Role::kLeader);

  coalescer.Publish(leader, "bytes");
  RunCoalescer::WaitResult waited = coalescer.Wait(&follower, NoStop());
  EXPECT_EQ(waited.outcome, RunCoalescer::WaitOutcome::kGotResult);
  EXPECT_EQ(waited.payload, "bytes");
  coalescer.Abandon(other);

  const RunCoalescer::Stats stats = coalescer.stats();
  EXPECT_EQ(stats.leaders, 2);
  EXPECT_EQ(stats.followers, 1);
  EXPECT_EQ(stats.shared, 1);
  EXPECT_EQ(stats.promotions, 0);
  EXPECT_EQ(stats.abandoned, 1);
}

TEST(RunCoalescerTest, PublishRetiresTheFlight) {
  // The coalescer only dedupes *concurrent* arrivals; remembering
  // results is the cache's job. After a publish the key starts fresh.
  RunCoalescer coalescer;
  RunCoalescer::Ticket first = coalescer.Attach("k");
  coalescer.Publish(first, "bytes");
  RunCoalescer::Ticket second = coalescer.Attach("k");
  EXPECT_EQ(second.role(), RunCoalescer::Role::kLeader);
  coalescer.Abandon(second);
}

TEST(RunCoalescerTest, ManyFollowersReceiveBitIdenticalPayload) {
  RunCoalescer coalescer;
  const std::string payload = "the one true payload";
  RunCoalescer::Ticket leader = coalescer.Attach("k");

  constexpr int kFollowers = 6;
  std::vector<RunCoalescer::Ticket> tickets(kFollowers);
  for (int i = 0; i < kFollowers; ++i) tickets[i] = coalescer.Attach("k");

  std::vector<std::string> received(kFollowers);
  std::vector<std::thread> threads;
  threads.reserve(kFollowers);
  for (int i = 0; i < kFollowers; ++i) {
    threads.emplace_back([&, i] {
      RunCoalescer::WaitResult waited =
          coalescer.Wait(&tickets[i], NoStop());
      EXPECT_EQ(waited.outcome, RunCoalescer::WaitOutcome::kGotResult);
      received[i] = waited.payload;
    });
  }
  coalescer.Publish(leader, payload);
  for (std::thread& thread : threads) thread.join();
  for (const std::string& got : received) EXPECT_EQ(got, payload);
  EXPECT_EQ(coalescer.stats().shared, kFollowers);
}

TEST(RunCoalescerTest, AbandonWithNoWaitersRetiresTheFlight) {
  RunCoalescer coalescer;
  RunCoalescer::Ticket first = coalescer.Attach("k");
  coalescer.Abandon(first);
  RunCoalescer::Ticket second = coalescer.Attach("k");
  EXPECT_EQ(second.role(), RunCoalescer::Role::kLeader);
  coalescer.Abandon(second);
  const RunCoalescer::Stats stats = coalescer.stats();
  EXPECT_EQ(stats.abandoned, 2);
  EXPECT_EQ(stats.promotions, 0);
}

TEST(RunCoalescerTest, AbandonPromotesExactlyOneFollower) {
  RunCoalescer coalescer;
  RunCoalescer::Ticket leader = coalescer.Attach("k");
  RunCoalescer::Ticket f1 = coalescer.Attach("k");
  RunCoalescer::Ticket f2 = coalescer.Attach("k");

  std::atomic<int> promoted{0};
  std::atomic<int> got_result{0};
  const std::string payload = "rerun payload";
  const auto waiter = [&](RunCoalescer::Ticket* ticket) {
    RunCoalescer::WaitResult waited = coalescer.Wait(ticket, NoStop());
    if (waited.outcome == RunCoalescer::WaitOutcome::kPromoted) {
      // The inherited leadership comes with the settle obligation:
      // this follower re-runs and publishes for the remaining waiter.
      EXPECT_EQ(ticket->role(), RunCoalescer::Role::kLeader);
      promoted.fetch_add(1);
      coalescer.Publish(*ticket, payload);
    } else {
      EXPECT_EQ(waited.outcome, RunCoalescer::WaitOutcome::kGotResult);
      EXPECT_EQ(waited.payload, payload);
      got_result.fetch_add(1);
    }
  };
  std::thread t1(waiter, &f1);
  std::thread t2(waiter, &f2);
  coalescer.Abandon(leader);
  t1.join();
  t2.join();

  EXPECT_EQ(promoted.load(), 1);
  EXPECT_EQ(got_result.load(), 1);
  const RunCoalescer::Stats stats = coalescer.stats();
  EXPECT_EQ(stats.promotions, 1);
  // The promotion counts as a fresh leadership of the same flight.
  EXPECT_EQ(stats.leaders, 2);
  EXPECT_EQ(stats.shared, 1);
}

TEST(RunCoalescerTest, CancelledFollowerDetachesWithoutDisturbingLeader) {
  RunCoalescer coalescer;
  RunCoalescer::Ticket leader = coalescer.Attach("k");
  RunCoalescer::Ticket follower = coalescer.Attach("k");

  CancellationToken token;
  token.Cancel();
  RunCoalescer::WaitResult waited =
      coalescer.Wait(&follower, StopOn(&token));
  EXPECT_EQ(waited.outcome, RunCoalescer::WaitOutcome::kCancelled);

  // The leader is untouched: it can still publish, and a fresh
  // follower attached after the cancellation still gets the bytes.
  RunCoalescer::Ticket late = coalescer.Attach("k");
  EXPECT_EQ(late.role(), RunCoalescer::Role::kFollower);
  std::thread late_waiter([&] {
    RunCoalescer::WaitResult got = coalescer.Wait(&late, NoStop());
    EXPECT_EQ(got.outcome, RunCoalescer::WaitOutcome::kGotResult);
    EXPECT_EQ(got.payload, "bytes");
  });
  coalescer.Publish(leader, "bytes");
  late_waiter.join();
  EXPECT_EQ(coalescer.stats().shared, 1);
}

TEST(RunCoalescerTest, StoppedFollowerDeclinesPromotion) {
  // An orphaned flight must never be inherited by a follower whose
  // own stop already fired — it would immediately abandon and the
  // remaining waiters would ping-pong. The stop check wins.
  RunCoalescer coalescer;
  RunCoalescer::Ticket leader = coalescer.Attach("k");
  RunCoalescer::Ticket doomed = coalescer.Attach("k");
  RunCoalescer::Ticket healthy = coalescer.Attach("k");

  coalescer.Abandon(leader);  // orphaned, two waiters
  CancellationToken token;
  token.Cancel();
  RunCoalescer::WaitResult cancelled =
      coalescer.Wait(&doomed, StopOn(&token));
  EXPECT_EQ(cancelled.outcome, RunCoalescer::WaitOutcome::kCancelled);

  RunCoalescer::WaitResult waited = coalescer.Wait(&healthy, NoStop());
  EXPECT_EQ(waited.outcome, RunCoalescer::WaitOutcome::kPromoted);
  coalescer.Publish(healthy, "bytes");
  const RunCoalescer::Stats stats = coalescer.stats();
  EXPECT_EQ(stats.promotions, 1);
  EXPECT_EQ(stats.shared, 0);
}

TEST(RunCoalescerTest, LastCancelledWaiterRetiresAnOrphanedFlight) {
  RunCoalescer coalescer;
  RunCoalescer::Ticket leader = coalescer.Attach("k");
  RunCoalescer::Ticket follower = coalescer.Attach("k");
  coalescer.Abandon(leader);

  CancellationToken token;
  token.Cancel();
  RunCoalescer::WaitResult waited =
      coalescer.Wait(&follower, StopOn(&token));
  EXPECT_EQ(waited.outcome, RunCoalescer::WaitOutcome::kCancelled);

  // The orphaned flight had nobody left; it must be gone from the
  // map, so the next attach starts clean rather than inheriting a
  // leaderless husk nobody will ever publish to.
  RunCoalescer::Ticket fresh = coalescer.Attach("k");
  EXPECT_EQ(fresh.role(), RunCoalescer::Role::kLeader);
  coalescer.Abandon(fresh);
}

TEST(RunCoalescerTest, RacingAttachesAlwaysConverge) {
  // Stress the full protocol: every round, four threads race to
  // attach the same key; whoever leads (initially or by promotion)
  // publishes, and every other thread must end with the bytes.
  RunCoalescer coalescer;
  constexpr int kRounds = 50;
  constexpr int kThreads = 4;
  for (int round = 0; round < kRounds; ++round) {
    const std::string key = "k" + std::to_string(round);
    const std::string payload = "p" + std::to_string(round);
    std::atomic<int> delivered{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        RunCoalescer::Ticket ticket = coalescer.Attach(key);
        for (;;) {
          if (ticket.role() == RunCoalescer::Role::kLeader) {
            coalescer.Publish(ticket, payload);
            delivered.fetch_add(1);
            return;
          }
          RunCoalescer::WaitResult waited =
              coalescer.Wait(&ticket, NoStop());
          if (waited.outcome == RunCoalescer::WaitOutcome::kGotResult) {
            EXPECT_EQ(waited.payload, payload);
            delivered.fetch_add(1);
            return;
          }
          ASSERT_EQ(waited.outcome, RunCoalescer::WaitOutcome::kPromoted);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    ASSERT_EQ(delivered.load(), kThreads) << "round " << round;
  }
}

}  // namespace
}  // namespace server
}  // namespace corrob
