#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "common/failpoint.h"
#include "common/status.h"
#include "data/dataset_io.h"
#include "data/motivating_example.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

// The serving-equivalence harness: every path corrobd can answer a
// corroborate request through — a cold run, a result-cache hit, a
// coalesced follower, a promoted follower, a batch item — must
// produce byte-identical response frames, at 1 and at 4 run threads,
// under armed failpoints and across a drain. This suite is the
// contract that makes the serving-efficiency layer invisible to
// clients: turning the cache or coalescer on can change latency,
// never bytes.
//
// Determinism discipline matches server_test.cc: in-flight control
// comes from the server.request.stall failpoint and counter polling,
// never from sleeps standing in for ordering.

namespace corrob {
namespace server {
namespace {

StopSignal NoStop() { return StopSignal(); }

template <typename Predicate>
bool EventuallyTrue(Predicate predicate) {
  CancellationToken pacer;
  for (int i = 0; i < 400; ++i) {
    if (predicate()) return true;
    // lint: discard-ok: plain sleep; the token is never cancelled
    (void)pacer.WaitForMs(5.0);
  }
  return predicate();
}

/// A corrobd on its own socket with Serve() on a background thread
/// (same shape as server_test.cc's Daemon).
class Daemon {
 public:
  explicit Daemon(ServerOptions options) : options_(std::move(options)) {}

  ~Daemon() {
    drain_.Cancel();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] Status Launch() {
    server_ = std::make_unique<CorrobdServer>(options_);
    CORROB_RETURN_NOT_OK(server_->Start());
    thread_ = std::thread([this] { serve_status_ = server_->Serve(&drain_); });
    return Status::OK();
  }

  Status Drain() {
    drain_.Cancel();
    if (thread_.joinable()) thread_.join();
    return serve_status_;
  }

  CorrobdServer& server() { return *server_; }
  CancellationToken& drain_token() { return drain_; }

 private:
  ServerOptions options_;
  std::unique_ptr<CorrobdServer> server_;
  CancellationToken drain_;
  std::thread thread_;
  Status serve_status_;
};

/// Parameterized on run_threads: every equivalence must hold with a
/// single-threaded corroborator and with intra-run parallelism.
class ServingEquivalenceTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string tag = info->name();  // "Case/0" for TEST_P instances
    std::replace(tag.begin(), tag.end(), '/', '_');
    const std::string stem = ::testing::TempDir() + "/equiv_" + tag;
    csv_path_ = stem + ".csv";
    socket_path_ = stem + ".sock";
    const MotivatingExample example = MakeMotivatingExample();
    ASSERT_TRUE(SaveDatasetCsv(csv_path_, example.dataset).ok());
  }

  void TearDown() override { Failpoints::DisarmAll(); }

  ServerOptions BaseOptions(const std::string& socket_suffix = "") const {
    ServerOptions options;
    options.socket_path = socket_path_ + socket_suffix;
    options.dataset_specs = {"table1=" + csv_path_};
    options.run_threads = GetParam();
    options.drain_timeout_ms = 10000;
    return options;
  }

  static CorroborateRequest BaseRequest() {
    CorroborateRequest request;
    request.dataset = "table1";
    request.algorithm = "IncEstHeu";
    return request;
  }

  /// One complete request against a throwaway daemon: the reference
  /// cold-run bytes everything else is compared to.
  std::string FreshDaemonFrame(const CorroborateRequest& request) {
    Daemon daemon(BaseOptions(".fresh"));
    EXPECT_TRUE(daemon.Launch().ok());
    Result<CorrobClient> client =
        CorrobClient::Connect(socket_path_ + ".fresh");
    EXPECT_TRUE(client.ok());
    Result<CorroborateOutcome> outcome =
        client.ValueOrDie().Corroborate(request, NoStop());
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
    return outcome.ValueOrDie().raw_frame;
  }

  std::string csv_path_;
  std::string socket_path_;
};

TEST_P(ServingEquivalenceTest, ColdCachedBatchLeaderAndFollowerAgree) {
  Daemon daemon(BaseOptions());
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = CorrobClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok());

  // Cold run: the reference bytes.
  Result<CorroborateOutcome> cold =
      client.ValueOrDie().Corroborate(BaseRequest(), NoStop());
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_EQ(cold.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
  const std::string reference = cold.ValueOrDie().raw_frame;
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(daemon.server().cache().stats().misses, 1);
  EXPECT_EQ(daemon.server().cache().stats().insertions, 1);

  // Cache hit: same request, replayed bytes.
  Result<CorroborateOutcome> cached =
      client.ValueOrDie().Corroborate(BaseRequest(), NoStop());
  ASSERT_TRUE(cached.ok());
  ASSERT_EQ(cached.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
  EXPECT_EQ(cached.ValueOrDie().raw_frame, reference);
  EXPECT_EQ(daemon.server().cache().stats().hits, 1);

  // Batch items: each item's standalone framing equals the reference.
  BatchRequest batch;
  batch.items.resize(2);
  for (BatchItem& item : batch.items) item.dataset = "table1";
  Result<std::vector<CorroborateOutcome>> items =
      client.ValueOrDie().BatchCorroborate(batch, NoStop());
  ASSERT_TRUE(items.ok()) << items.status().ToString();
  ASSERT_EQ(items.ValueOrDie().size(), 2u);
  for (const CorroborateOutcome& item : items.ValueOrDie()) {
    ASSERT_EQ(item.kind, CorroborateOutcome::Kind::kResult);
    EXPECT_EQ(item.raw_frame, reference);
  }

  // Leader + coalesced followers. Options change the cache key but
  // never the corroboration, so this key is cold while the expected
  // bytes stay `reference`. The stall failpoint holds the leader
  // in-flight until every follower has attached.
  CorroborateRequest coalesced = BaseRequest();
  coalesced.options = {{"lane", "coalesce"}};
  Failpoints::Arm("server.request.stall",
                  {.code = StatusCode::kInternal, .message = "stall"});
  Result<CorroborateOutcome> leader = Status::Internal("not yet run");
  std::thread leader_thread([&] {
    leader = client.ValueOrDie().Corroborate(coalesced, NoStop());
  });
  ASSERT_TRUE(EventuallyTrue(
      [&] { return daemon.server().admission().running() >= 1; }));

  constexpr int kFollowers = 3;
  std::vector<Result<CorroborateOutcome>> followers(
      kFollowers, Status::Internal("not yet run"));
  std::vector<std::thread> follower_threads;
  follower_threads.reserve(kFollowers);
  std::vector<CorrobClient> follower_clients;
  for (int i = 0; i < kFollowers; ++i) {
    Result<CorrobClient> follower_client =
        CorrobClient::Connect(socket_path_);
    ASSERT_TRUE(follower_client.ok());
    follower_clients.push_back(std::move(follower_client.ValueOrDie()));
  }
  for (int i = 0; i < kFollowers; ++i) {
    follower_threads.emplace_back([&, i] {
      followers[i] = follower_clients[i].Corroborate(coalesced, NoStop());
    });
  }
  ASSERT_TRUE(EventuallyTrue([&] {
    return daemon.server().coalescer().stats().followers >= kFollowers;
  }));
  Failpoints::DisarmAll();
  leader_thread.join();
  for (std::thread& thread : follower_threads) thread.join();

  ASSERT_TRUE(leader.ok()) << leader.status().ToString();
  ASSERT_EQ(leader.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
  EXPECT_EQ(leader.ValueOrDie().raw_frame, reference);
  for (int i = 0; i < kFollowers; ++i) {
    ASSERT_TRUE(followers[i].ok()) << followers[i].status().ToString();
    ASSERT_EQ(followers[i].ValueOrDie().kind,
              CorroborateOutcome::Kind::kResult);
    EXPECT_EQ(followers[i].ValueOrDie().raw_frame, reference)
        << "follower " << i;
  }
  EXPECT_GE(daemon.server().coalescer().stats().shared, kFollowers);
  EXPECT_TRUE(daemon.Drain().ok());
}

TEST_P(ServingEquivalenceTest, DrainedMidFlightRequestMatchesFreshDaemon) {
  // A request already executing when SIGTERM-style drain arrives must
  // finish and answer with exactly the bytes an undisturbed daemon
  // produces — now with the cache and coalescer in the path.
  const std::string reference = FreshDaemonFrame(BaseRequest());
  ASSERT_FALSE(reference.empty());

  Daemon daemon(BaseOptions());
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = CorrobClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok());

  Failpoints::Arm("server.request.stall",
                  {.code = StatusCode::kInternal, .message = "stall"});
  Result<CorroborateOutcome> outcome = Status::Internal("not yet run");
  std::thread in_flight([&] {
    outcome = client.ValueOrDie().Corroborate(BaseRequest(), NoStop());
  });
  ASSERT_TRUE(EventuallyTrue(
      [&] { return daemon.server().admission().running() == 1; }));

  daemon.drain_token().Cancel();
  Failpoints::DisarmAll();
  in_flight.join();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
  EXPECT_EQ(outcome.ValueOrDie().raw_frame, reference);
  EXPECT_TRUE(daemon.Drain().ok());
}

TEST_P(ServingEquivalenceTest, BatchStalledMidFlightMatchesFreshDaemon) {
  // The batch path under an armed failpoint: the first item stalls
  // in-flight, the second runs after the disarm (as a cache hit of
  // the first). Both must equal the fresh-daemon bytes.
  const std::string reference = FreshDaemonFrame(BaseRequest());

  Daemon daemon(BaseOptions());
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = CorrobClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok());

  Failpoints::Arm("server.request.stall",
                  {.code = StatusCode::kInternal, .message = "stall"});
  BatchRequest batch;
  batch.items.resize(2);
  for (BatchItem& item : batch.items) item.dataset = "table1";
  Result<std::vector<CorroborateOutcome>> items =
      Status::Internal("not yet run");
  std::thread in_flight([&] {
    items = client.ValueOrDie().BatchCorroborate(batch, NoStop());
  });
  ASSERT_TRUE(EventuallyTrue(
      [&] { return daemon.server().admission().running() == 1; }));
  Failpoints::DisarmAll();
  in_flight.join();

  ASSERT_TRUE(items.ok()) << items.status().ToString();
  ASSERT_EQ(items.ValueOrDie().size(), 2u);
  for (const CorroborateOutcome& item : items.ValueOrDie()) {
    ASSERT_EQ(item.kind, CorroborateOutcome::Kind::kResult);
    EXPECT_EQ(item.raw_frame, reference);
  }
  EXPECT_GE(daemon.server().cache().stats().hits, 1);
  EXPECT_TRUE(daemon.Drain().ok());
}

TEST_P(ServingEquivalenceTest, ReloadInvalidatesAndRerunsEquivalently) {
  Daemon daemon(BaseOptions());
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = CorrobClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok());

  Result<CorroborateOutcome> before =
      client.ValueOrDie().Corroborate(BaseRequest(), NoStop());
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
  ASSERT_EQ(daemon.server().cache().stats().insertions, 1);

  // Reload the same file: the data is unchanged, but the generation
  // bump must orphan the cached entry all the same.
  ReloadRequest reload;
  reload.dataset = "table1";
  Result<ReloadResponse> reloaded =
      client.ValueOrDie().Reload(reload, NoStop());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded.ValueOrDie().datasets_reloaded, 1u);
  EXPECT_EQ(reloaded.ValueOrDie().generation, 2u);
  EXPECT_EQ(daemon.server().cache().stats().invalidations, 1);
  EXPECT_EQ(daemon.server().cache().stats().entries, 0);

  // The stale key re-runs cold — and, the data being identical, the
  // rerun's bytes equal the original's.
  Result<CorroborateOutcome> after =
      client.ValueOrDie().Corroborate(BaseRequest(), NoStop());
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
  EXPECT_EQ(after.ValueOrDie().raw_frame, before.ValueOrDie().raw_frame);
  EXPECT_EQ(daemon.server().cache().stats().misses, 2);
  EXPECT_EQ(daemon.server().cache().stats().insertions, 2);
  EXPECT_TRUE(daemon.Drain().ok());
}

TEST_P(ServingEquivalenceTest, DisabledCacheStillAnswersIdentically) {
  // The whole layer must be transparent when switched off: capacity 0
  // serves every request cold with the same bytes.
  const std::string reference = FreshDaemonFrame(BaseRequest());

  ServerOptions options = BaseOptions();
  options.cache.capacity_entries = 0;
  Daemon daemon(options);
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = CorrobClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 2; ++i) {
    Result<CorroborateOutcome> outcome =
        client.ValueOrDie().Corroborate(BaseRequest(), NoStop());
    ASSERT_TRUE(outcome.ok());
    ASSERT_EQ(outcome.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
    EXPECT_EQ(outcome.ValueOrDie().raw_frame, reference) << "request " << i;
  }
  EXPECT_EQ(daemon.server().cache().stats().hits, 0);
  EXPECT_TRUE(daemon.Drain().ok());
}

INSTANTIATE_TEST_SUITE_P(RunThreads, ServingEquivalenceTest,
                         ::testing::Values(1, 4));

/// Cross-thread-count equivalence: the bytes must not depend on the
/// corroborator's intra-run parallelism either. (Not parameterized —
/// this is the comparison *between* the parameter values.)
TEST(ServingEquivalenceCrossThreadTest, OneAndFourThreadsAgreeByteForByte) {
  const std::string stem = ::testing::TempDir() + "/equiv_cross";
  const MotivatingExample example = MakeMotivatingExample();
  ASSERT_TRUE(SaveDatasetCsv(stem + ".csv", example.dataset).ok());

  std::string frames[2];
  const int threads[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    ServerOptions options;
    options.socket_path = stem + std::to_string(threads[i]) + ".sock";
    options.dataset_specs = {"table1=" + stem + ".csv"};
    options.run_threads = threads[i];
    Daemon daemon(options);
    ASSERT_TRUE(daemon.Launch().ok());
    Result<CorrobClient> client =
        CorrobClient::Connect(options.socket_path);
    ASSERT_TRUE(client.ok());
    CorroborateRequest request;
    request.dataset = "table1";
    Result<CorroborateOutcome> outcome =
        client.ValueOrDie().Corroborate(request, NoStop());
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_EQ(outcome.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
    frames[i] = outcome.ValueOrDie().raw_frame;
    EXPECT_TRUE(daemon.Drain().ok());
  }
  EXPECT_EQ(frames[0], frames[1]);
}

}  // namespace
}  // namespace server
}  // namespace corrob
