#include "server/quota.h"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "obs/clock.h"

// Unit tests for per-tenant quotas. Time is a hand-cranked
// ManualClock, so every refill is exact arithmetic, not a sleep.

namespace corrob {
namespace server {
namespace {

TEST(TenantQuotasTest, DefaultLimitsAreUnlimited) {
  obs::ManualClock clock;
  TenantQuotas quotas(QuotaOptions{}, &clock);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(quotas.ChargeRate("t", 1).allowed);
    EXPECT_TRUE(quotas.TryEnterRun("t").allowed);
  }
  const TenantQuotas::Stats stats = quotas.stats();
  EXPECT_EQ(stats.rate_rejections, 0);
  EXPECT_EQ(stats.slot_rejections, 0);
}

TEST(TenantQuotasTest, BucketStartsFullAndDrainsPerToken) {
  obs::ManualClock clock;
  QuotaOptions options;
  options.default_limits = {.qps = 2.0, .burst = 4.0};
  TenantQuotas quotas(options, &clock);

  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(quotas.ChargeRate("t", 1).allowed) << "token " << i;
  }
  const QuotaDecision rejected = quotas.ChargeRate("t", 1);
  EXPECT_FALSE(rejected.allowed);
  // Deficit of one token at 2 qps: 500 ms.
  EXPECT_EQ(rejected.retry_after_ms, 500u);
  EXPECT_NE(rejected.reason.find("rate limit"), std::string::npos);
  EXPECT_EQ(quotas.stats().rate_rejections, 1);
}

TEST(TenantQuotasTest, TokensRefillWithElapsedTime) {
  obs::ManualClock clock;
  QuotaOptions options;
  options.default_limits = {.qps = 10.0, .burst = 1.0};
  TenantQuotas quotas(options, &clock);

  EXPECT_TRUE(quotas.ChargeRate("t", 1).allowed);
  EXPECT_FALSE(quotas.ChargeRate("t", 1).allowed);
  // 100 ms at 10 qps refills exactly one token.
  clock.AdvanceNanos(100'000'000);
  EXPECT_TRUE(quotas.ChargeRate("t", 1).allowed);
  EXPECT_FALSE(quotas.ChargeRate("t", 1).allowed);
}

TEST(TenantQuotasTest, RefillIsCappedAtBurst) {
  obs::ManualClock clock;
  QuotaOptions options;
  options.default_limits = {.qps = 100.0, .burst = 3.0};
  TenantQuotas quotas(options, &clock);

  // Drain the full bucket, then go idle for an hour: only `burst`
  // tokens may accumulate, not qps * 3600.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(quotas.ChargeRate("t", 1).allowed);
  }
  clock.AdvanceNanos(int64_t{3600} * 1'000'000'000);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(quotas.ChargeRate("t", 1).allowed) << "token " << i;
  }
  EXPECT_FALSE(quotas.ChargeRate("t", 1).allowed);
}

TEST(TenantQuotasTest, BatchChargeIsAllOrNothing) {
  obs::ManualClock clock;
  QuotaOptions options;
  options.default_limits = {.qps = 1.0, .burst = 3.0};
  TenantQuotas quotas(options, &clock);

  // 3 tokens available: a 5-unit batch is refused and, crucially,
  // takes nothing — the 3 singles afterwards still succeed.
  const QuotaDecision rejected = quotas.ChargeRate("t", 5);
  EXPECT_FALSE(rejected.allowed);
  // Deficit of 2 tokens at 1 qps: 2000 ms.
  EXPECT_EQ(rejected.retry_after_ms, 2000u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(quotas.ChargeRate("t", 1).allowed) << "token " << i;
  }
  EXPECT_FALSE(quotas.ChargeRate("t", 1).allowed);
}

TEST(TenantQuotasTest, RetryAfterIsAtLeastOneMillisecond) {
  obs::ManualClock clock;
  QuotaOptions options;
  options.default_limits = {.qps = 1'000'000.0, .burst = 1.0};
  TenantQuotas quotas(options, &clock);
  ASSERT_TRUE(quotas.ChargeRate("t", 1).allowed);
  const QuotaDecision rejected = quotas.ChargeRate("t", 1);
  ASSERT_FALSE(rejected.allowed);
  // The true wait is a microsecond; the hint still rounds up to 1 ms
  // so clients never busy-spin on a zero.
  EXPECT_GE(rejected.retry_after_ms, 1u);
}

TEST(TenantQuotasTest, ConcurrentSlotsAreCappedAndReleased) {
  obs::ManualClock clock;
  QuotaOptions options;
  options.default_limits = {.concurrent_slots = 2};
  options.slot_retry_ms = 77;
  TenantQuotas quotas(options, &clock);

  EXPECT_TRUE(quotas.TryEnterRun("t").allowed);
  EXPECT_TRUE(quotas.TryEnterRun("t").allowed);
  const QuotaDecision rejected = quotas.TryEnterRun("t");
  EXPECT_FALSE(rejected.allowed);
  EXPECT_EQ(rejected.retry_after_ms, 77u);
  EXPECT_NE(rejected.reason.find("concurrent"), std::string::npos);
  EXPECT_EQ(quotas.stats().slot_rejections, 1);

  // Slots are per tenant, not global.
  EXPECT_TRUE(quotas.TryEnterRun("other").allowed);

  quotas.ExitRun("t");
  EXPECT_TRUE(quotas.TryEnterRun("t").allowed);
}

TEST(TenantQuotasTest, OverridesBeatDefaultsAndStartFull) {
  obs::ManualClock clock;
  QuotaOptions options;
  options.default_limits = {.qps = 1.0, .burst = 1.0};
  TenantQuotas quotas(options, &clock);

  // Drain the tenant under the default limits, then install a wider
  // override: the new allowance starts full rather than inheriting
  // the drained bucket.
  ASSERT_TRUE(quotas.ChargeRate("vip", 1).allowed);
  ASSERT_FALSE(quotas.ChargeRate("vip", 1).allowed);
  quotas.SetLimits("vip", {.qps = 100.0, .burst = 10.0});
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(quotas.ChargeRate("vip", 1).allowed) << "token " << i;
  }

  // Other tenants keep the defaults.
  const TenantLimits vip = quotas.LimitsFor("vip");
  EXPECT_DOUBLE_EQ(vip.qps, 100.0);
  const TenantLimits other = quotas.LimitsFor("someone-else");
  EXPECT_DOUBLE_EQ(other.qps, 1.0);
}

TEST(TenantQuotasTest, AnonymousTenantIsItsOwnBucket) {
  obs::ManualClock clock;
  QuotaOptions options;
  options.default_limits = {.qps = 1.0, .burst = 1.0};
  TenantQuotas quotas(options, &clock);

  ASSERT_TRUE(quotas.ChargeRate("", 1).allowed);
  const QuotaDecision rejected = quotas.ChargeRate("", 1);
  ASSERT_FALSE(rejected.allowed);
  EXPECT_NE(rejected.reason.find("(anonymous)"), std::string::npos);
  // Draining "" does not touch a named tenant.
  EXPECT_TRUE(quotas.ChargeRate("named", 1).allowed);
}

TEST(TenantQuotasTest, TinyQpsStillGetsOneBurstToken) {
  obs::ManualClock clock;
  QuotaOptions options;
  options.default_limits = {.qps = 0.5, .burst = 0.0};
  TenantQuotas quotas(options, &clock);
  // burst = 0 is clamped to one token's worth of capacity so the
  // tenant is slow, not silenced.
  EXPECT_TRUE(quotas.ChargeRate("t", 1).allowed);
  const QuotaDecision rejected = quotas.ChargeRate("t", 1);
  ASSERT_FALSE(rejected.allowed);
  EXPECT_EQ(rejected.retry_after_ms, 2000u);
  clock.AdvanceNanos(int64_t{2} * 1'000'000'000);
  EXPECT_TRUE(quotas.ChargeRate("t", 1).allowed);
}

}  // namespace
}  // namespace server
}  // namespace corrob
