#include "server/protocol.h"

#include <cmath>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

namespace corrob {
namespace server {
namespace {

TEST(ProtocolTest, PriorityNamesRoundTrip) {
  for (int cls = 0; cls < kNumPriorities; ++cls) {
    const Priority priority = static_cast<Priority>(cls);
    Result<Priority> parsed =
        ParsePriority(std::string(PriorityName(priority)));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.ValueOrDie(), priority);
  }
  EXPECT_EQ(ParsePriority("  Interactive ").ValueOrDie(),
            Priority::kInteractive);
  EXPECT_EQ(ParsePriority("best-effort").ValueOrDie(),
            Priority::kBestEffort);
  EXPECT_FALSE(ParsePriority("urgent").ok());
}

TEST(ProtocolTest, CorroborateRequestRoundTrip) {
  CorroborateRequest request;
  request.priority = Priority::kInteractive;
  request.dataset = "flights";
  request.algorithm = "TwoEstimate";
  request.timeout_ms = 1500;
  request.max_rounds = 7;
  Result<CorroborateRequest> decoded =
      DecodeCorroborateRequest(EncodeCorroborateRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.ValueOrDie().priority, request.priority);
  EXPECT_EQ(decoded.ValueOrDie().dataset, request.dataset);
  EXPECT_EQ(decoded.ValueOrDie().algorithm, request.algorithm);
  EXPECT_EQ(decoded.ValueOrDie().timeout_ms, request.timeout_ms);
  EXPECT_EQ(decoded.ValueOrDie().max_rounds, request.max_rounds);
}

TEST(ProtocolTest, CorroborateResponseBitExactDoubles) {
  CorroborateResponse response;
  response.algorithm = "IncEstHeu";
  response.termination = 2;
  response.iterations = 42;
  // Values chosen to catch any lossy round-trip: denormal, -0.0, NaN.
  response.fact_probability = {0.1, -0.0,
                               std::numeric_limits<double>::denorm_min(),
                               std::numeric_limits<double>::quiet_NaN()};
  response.source_trust = {1.0 / 3.0, 0.9999999999999999};
  Result<CorroborateResponse> decoded =
      DecodeCorroborateResponse(EncodeCorroborateResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const CorroborateResponse& got = decoded.ValueOrDie();
  ASSERT_EQ(got.fact_probability.size(), response.fact_probability.size());
  for (size_t i = 0; i < response.fact_probability.size(); ++i) {
    // Bit-pattern comparison: NaN == NaN fails, memcmp does not.
    EXPECT_EQ(std::memcmp(&got.fact_probability[i],
                          &response.fact_probability[i], sizeof(double)),
              0)
        << "fact " << i;
  }
  EXPECT_EQ(got.source_trust, response.source_trust);
  EXPECT_EQ(got.termination, response.termination);
  EXPECT_EQ(got.iterations, response.iterations);
}

TEST(ProtocolTest, ErrorAndOverloadedRoundTrip) {
  ErrorResponse error;
  error.code = 10;
  error.message = "cancelled while queued";
  Result<ErrorResponse> decoded_error =
      DecodeErrorResponse(EncodeErrorResponse(error));
  ASSERT_TRUE(decoded_error.ok());
  EXPECT_EQ(decoded_error.ValueOrDie().code, error.code);
  EXPECT_EQ(decoded_error.ValueOrDie().message, error.message);

  OverloadedResponse overloaded;
  overloaded.retry_after_ms = 750;
  overloaded.queue_depth = 16;
  overloaded.message = "interactive queue full";
  Result<OverloadedResponse> decoded_overloaded =
      DecodeOverloadedResponse(EncodeOverloadedResponse(overloaded));
  ASSERT_TRUE(decoded_overloaded.ok());
  EXPECT_EQ(decoded_overloaded.ValueOrDie().retry_after_ms,
            overloaded.retry_after_ms);
  EXPECT_EQ(decoded_overloaded.ValueOrDie().queue_depth,
            overloaded.queue_depth);
}

TEST(ProtocolTest, TruncatedPayloadsAreParseErrors) {
  CorroborateRequest request;
  request.dataset = "flights";
  const std::string wire = EncodeCorroborateRequest(request);
  for (size_t length = 0; length < wire.size(); ++length) {
    Result<CorroborateRequest> decoded =
        DecodeCorroborateRequest(wire.substr(0, length));
    ASSERT_FALSE(decoded.ok()) << "length " << length;
    EXPECT_EQ(decoded.status().code(), StatusCode::kParseError)
        << "length " << length;
  }
}

TEST(ProtocolTest, TrailingBytesRejected) {
  const std::string wire =
      EncodeCorroborateRequest(CorroborateRequest{}) + "extra";
  Result<CorroborateRequest> decoded = DecodeCorroborateRequest(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
  EXPECT_NE(decoded.status().message().find("trailing"), std::string::npos);
}

TEST(ProtocolTest, VersionSkewIsFailedPrecondition) {
  std::string wire = EncodeCorroborateRequest(CorroborateRequest{});
  wire[0] = static_cast<char>(kProtocolVersion + 1);
  Result<CorroborateRequest> decoded = DecodeCorroborateRequest(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ProtocolTest, UnknownPriorityByteRejected) {
  CorroborateRequest request;
  std::string wire = EncodeCorroborateRequest(request);
  wire[1] = static_cast<char>(kNumPriorities);  // one past the last class
  Result<CorroborateRequest> decoded = DecodeCorroborateRequest(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, PermutedOptionsEncodeByteIdentically) {
  // The codec canonicalizes option order, so two requests that differ
  // only in assembly order are the same bytes on the wire — the
  // property that gives permuted requests one cache key.
  CorroborateRequest forward;
  forward.dataset = "flights";
  forward.tenant = "analytics";
  forward.options = {{"alpha", "1"}, {"beta", "2"}, {"gamma", "3"}};
  CorroborateRequest shuffled = forward;
  shuffled.options = {{"gamma", "3"}, {"alpha", "1"}, {"beta", "2"}};
  EXPECT_EQ(EncodeCorroborateRequest(forward),
            EncodeCorroborateRequest(shuffled));

  Result<CorroborateRequest> decoded =
      DecodeCorroborateRequest(EncodeCorroborateRequest(shuffled));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.ValueOrDie().tenant, "analytics");
  const OptionList sorted = {{"alpha", "1"}, {"beta", "2"}, {"gamma", "3"}};
  EXPECT_EQ(decoded.ValueOrDie().options, sorted);
}

TEST(ProtocolTest, DuplicateOptionKeysRejected) {
  OptionList duplicated = {{"k", "a"}, {"k", "b"}};
  Status normalized = NormalizeOptions(&duplicated);
  ASSERT_FALSE(normalized.ok());
  EXPECT_EQ(normalized.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(normalized.message().find("duplicate"), std::string::npos);

  // The decoder applies the same rule to hostile payloads.
  CorroborateRequest request;
  request.dataset = "d";
  request.options = {{"k", "a"}, {"k", "b"}};
  Result<CorroborateRequest> decoded =
      DecodeCorroborateRequest(EncodeCorroborateRequest(request));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, VersionOneRequestsStillDecode) {
  // Daemons speak v2 but accept the v1 request layout from older
  // clients: no tenant, no options.
  CorroborateRequest request;
  request.priority = Priority::kInteractive;
  request.dataset = "flights";
  request.algorithm = "TwoEstimate";
  request.timeout_ms = 250;
  request.tenant = "ignored-at-v1";
  request.options = {{"also", "ignored"}};
  const std::string wire = EncodeCorroborateRequest(request, 1);
  Result<CorroborateRequest> decoded = DecodeCorroborateRequest(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.ValueOrDie().dataset, "flights");
  EXPECT_EQ(decoded.ValueOrDie().timeout_ms, 250u);
  EXPECT_TRUE(decoded.ValueOrDie().tenant.empty());
  EXPECT_TRUE(decoded.ValueOrDie().options.empty());
}

TEST(ProtocolTest, QuotaExceededRoundTrip) {
  QuotaExceededResponse response;
  response.retry_after_ms = 1250;
  response.tenant = "analytics";
  response.message = "rate limit";
  Result<QuotaExceededResponse> decoded =
      DecodeQuotaExceededResponse(EncodeQuotaExceededResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.ValueOrDie().retry_after_ms, response.retry_after_ms);
  EXPECT_EQ(decoded.ValueOrDie().tenant, response.tenant);
  EXPECT_EQ(decoded.ValueOrDie().message, response.message);
}

TEST(ProtocolTest, BatchRequestRoundTrip) {
  BatchRequest request;
  request.priority = Priority::kInteractive;
  request.tenant = "analytics";
  request.items.resize(2);
  request.items[0].dataset = "flights";
  request.items[0].max_rounds = 9;
  request.items[1].dataset = "books";
  request.items[1].algorithm = "TwoEstimate";
  request.items[1].options = {{"k", "v"}};

  Result<BatchRequest> decoded =
      DecodeBatchRequest(EncodeBatchRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const BatchRequest& got = decoded.ValueOrDie();
  EXPECT_EQ(got.priority, request.priority);
  EXPECT_EQ(got.tenant, request.tenant);
  ASSERT_EQ(got.items.size(), 2u);
  EXPECT_EQ(got.items[0].dataset, "flights");
  EXPECT_EQ(got.items[0].max_rounds, 9u);
  EXPECT_EQ(got.items[1].algorithm, "TwoEstimate");
  EXPECT_EQ(got.items[1].options, request.items[1].options);
}

TEST(ProtocolTest, BatchRequestBoundsEnforced) {
  BatchRequest empty;
  Result<BatchRequest> decoded_empty =
      DecodeBatchRequest(EncodeBatchRequest(empty));
  ASSERT_FALSE(decoded_empty.ok());
  EXPECT_EQ(decoded_empty.status().code(), StatusCode::kInvalidArgument);

  // A count beyond kMaxBatchItems is rejected from the header alone,
  // before any per-item allocation.
  BatchRequest one;
  one.items.resize(1);
  one.items[0].dataset = "d";
  std::string wire = EncodeBatchRequest(one);
  // Count sits after version + priority + tenant string.
  const size_t count_offset = 1 + 1 + 4 + one.tenant.size();
  const uint32_t huge = kMaxBatchItems + 1;
  std::memcpy(&wire[count_offset], &huge, sizeof(huge));
  Result<BatchRequest> decoded_huge = DecodeBatchRequest(wire);
  ASSERT_FALSE(decoded_huge.ok());
  EXPECT_EQ(decoded_huge.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded_huge.status().message().find("cap"), std::string::npos);
}

TEST(ProtocolTest, BatchResponseRoundTrip) {
  BatchResponse response;
  response.items.resize(2);
  response.items[0].type = 0x81;  // kResultResponse
  response.items[0].payload = "result bytes";
  response.items[1].type = 0x82;  // kErrorResponse
  response.items[1].payload = "error bytes";
  Result<BatchResponse> decoded =
      DecodeBatchResponse(EncodeBatchResponse(response));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.ValueOrDie().items.size(), 2u);
  EXPECT_EQ(decoded.ValueOrDie().items[0].payload, "result bytes");
  EXPECT_EQ(decoded.ValueOrDie().items[1].type, 0x82);
}

TEST(ProtocolTest, ReloadRoundTripAndTruncation) {
  ReloadRequest request;
  request.dataset = "flights";
  Result<ReloadRequest> decoded_request =
      DecodeReloadRequest(EncodeReloadRequest(request));
  ASSERT_TRUE(decoded_request.ok());
  EXPECT_EQ(decoded_request.ValueOrDie().dataset, "flights");

  ReloadResponse response;
  response.datasets_reloaded = 3;
  response.generation = uint64_t{1} << 40;
  const std::string wire = EncodeReloadResponse(response);
  Result<ReloadResponse> decoded = DecodeReloadResponse(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.ValueOrDie().datasets_reloaded, 3u);
  EXPECT_EQ(decoded.ValueOrDie().generation, uint64_t{1} << 40);

  for (size_t length = 0; length < wire.size(); ++length) {
    Result<ReloadResponse> truncated =
        DecodeReloadResponse(wire.substr(0, length));
    ASSERT_FALSE(truncated.ok()) << "length " << length;
    EXPECT_EQ(truncated.status().code(), StatusCode::kParseError)
        << "length " << length;
  }
  Result<ReloadResponse> trailing = DecodeReloadResponse(wire + "x");
  ASSERT_FALSE(trailing.ok());
  EXPECT_EQ(trailing.status().code(), StatusCode::kParseError);
}

TEST(ProtocolTest, BatchTruncationIsAlwaysAParseError) {
  BatchRequest request;
  request.tenant = "t";
  request.items.resize(1);
  request.items[0].dataset = "d";
  request.items[0].options = {{"k", "v"}};
  const std::string wire = EncodeBatchRequest(request);
  for (size_t length = 0; length < wire.size(); ++length) {
    Result<BatchRequest> decoded = DecodeBatchRequest(wire.substr(0, length));
    ASSERT_FALSE(decoded.ok()) << "length " << length;
    EXPECT_EQ(decoded.status().code(), StatusCode::kParseError)
        << "length " << length;
  }
}

TEST(ProtocolTest, HugeVectorCountRejectedWithoutAllocation) {
  // An f64 vector claiming ~4 billion entries in a tiny payload must
  // fail the bounds check before any resize.
  CorroborateResponse response;
  response.algorithm = "x";
  std::string wire = EncodeCorroborateResponse(response);
  // Overwrite the fact_probability count (after version + algorithm +
  // termination + iterations) with 0xFFFFFFFF.
  const size_t count_offset = 1 + (4 + 1) + 1 + 4;
  for (int i = 0; i < 4; ++i) {
    wire[count_offset + i] = static_cast<char>(0xFF);
  }
  Result<CorroborateResponse> decoded = DecodeCorroborateResponse(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
}

TEST(ProtocolTest, RequestIdRoundTripsAtVersionThree) {
  CorroborateRequest request;
  request.dataset = "flights";
  request.tenant = "alpha";
  request.request_id = "client-42";
  Result<CorroborateRequest> decoded =
      DecodeCorroborateRequest(EncodeCorroborateRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.ValueOrDie().request_id, "client-42");

  // Encoding at version 2 drops the id; decoding still succeeds and
  // leaves it empty — the v2 wire format is unchanged.
  Result<CorroborateRequest> old_wire =
      DecodeCorroborateRequest(EncodeCorroborateRequest(request, 2));
  ASSERT_TRUE(old_wire.ok());
  EXPECT_EQ(old_wire.ValueOrDie().request_id, "");
}

TEST(ProtocolTest, AttachRequestIdSplicesTrailingIdOntoEveryResponse) {
  CorroborateResponse response;
  response.algorithm = "IncEstHeu";
  response.fact_probability = {0.25, 0.75};
  const std::string canonical = EncodeCorroborateResponse(response);

  // An empty id must leave the canonical bytes untouched — cache
  // replays of id-less requests stay byte-identical to v1 responses.
  std::string untouched = canonical;
  AttachRequestId(&untouched, "");
  EXPECT_EQ(untouched, canonical);

  std::string spliced = canonical;
  AttachRequestId(&spliced, "client-42");
  EXPECT_EQ(static_cast<uint8_t>(spliced[0]), kProtocolVersion);
  Result<CorroborateResponse> decoded = DecodeCorroborateResponse(spliced);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.ValueOrDie().request_id, "client-42");
  EXPECT_EQ(decoded.ValueOrDie().fact_probability,
            response.fact_probability);

  ErrorResponse error;
  error.code = static_cast<uint8_t>(StatusCode::kNotFound);
  error.message = "no such dataset";
  std::string error_wire = EncodeErrorResponse(error);
  AttachRequestId(&error_wire, "client-43");
  Result<ErrorResponse> error_decoded = DecodeErrorResponse(error_wire);
  ASSERT_TRUE(error_decoded.ok());
  EXPECT_EQ(error_decoded.ValueOrDie().request_id, "client-43");
  EXPECT_EQ(error_decoded.ValueOrDie().message, "no such dataset");

  OverloadedResponse overloaded;
  overloaded.retry_after_ms = 25;
  std::string overloaded_wire = EncodeOverloadedResponse(overloaded);
  AttachRequestId(&overloaded_wire, "client-44");
  Result<OverloadedResponse> overloaded_decoded =
      DecodeOverloadedResponse(overloaded_wire);
  ASSERT_TRUE(overloaded_decoded.ok());
  EXPECT_EQ(overloaded_decoded.ValueOrDie().request_id, "client-44");
  EXPECT_EQ(overloaded_decoded.ValueOrDie().retry_after_ms, 25u);

  QuotaExceededResponse quota;
  quota.retry_after_ms = 50;
  std::string quota_wire = EncodeQuotaExceededResponse(quota);
  AttachRequestId(&quota_wire, "client-45");
  Result<QuotaExceededResponse> quota_decoded =
      DecodeQuotaExceededResponse(quota_wire);
  ASSERT_TRUE(quota_decoded.ok());
  EXPECT_EQ(quota_decoded.ValueOrDie().request_id, "client-45");
}

TEST(ProtocolTest, NonCorroboratePayloadsStayPinnedBelowVersionThree) {
  // Version 3 means exactly "plus a trailing request id", and only
  // AttachRequestId produces it: every other payload encoder must
  // keep emitting its pre-v3 version byte so old decoders still work.
  EXPECT_LT(static_cast<uint8_t>(
                EncodeQuotaExceededResponse(QuotaExceededResponse())[0]),
            3);
  BatchRequest batch;
  BatchItem item;
  item.dataset = "flights";
  batch.items.push_back(item);
  EXPECT_LT(static_cast<uint8_t>(EncodeBatchRequest(batch)[0]), 3);
  EXPECT_LT(static_cast<uint8_t>(EncodeBatchResponse(BatchResponse())[0]), 3);
  EXPECT_LT(static_cast<uint8_t>(EncodeReloadRequest(ReloadRequest())[0]), 3);
  EXPECT_LT(static_cast<uint8_t>(EncodeReloadResponse(ReloadResponse())[0]),
            3);
}

TEST(ProtocolTest, IntrospectRequestRoundTripAndBounds) {
  IntrospectRequest request;
  request.top_k = 7;
  request.max_recent = 42;
  Result<IntrospectRequest> decoded =
      DecodeIntrospectRequest(EncodeIntrospectRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.ValueOrDie().top_k, 7u);
  EXPECT_EQ(decoded.ValueOrDie().max_recent, 42u);

  // Introspection is a v3 frame: older version bytes are rejected.
  std::string wire = EncodeIntrospectRequest(request);
  wire[0] = 2;
  EXPECT_EQ(DecodeIntrospectRequest(wire).status().code(),
            StatusCode::kFailedPrecondition);

  // Truncation anywhere is a parse error.
  const std::string full = EncodeIntrospectRequest(request);
  for (size_t len = 0; len < full.size(); ++len) {
    EXPECT_EQ(
        DecodeIntrospectRequest(full.substr(0, len)).status().code(),
        StatusCode::kParseError)
        << "truncated at " << len;
  }
}

}  // namespace
}  // namespace server
}  // namespace corrob
