#include "server/protocol.h"

#include <cmath>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

namespace corrob {
namespace server {
namespace {

TEST(ProtocolTest, PriorityNamesRoundTrip) {
  for (int cls = 0; cls < kNumPriorities; ++cls) {
    const Priority priority = static_cast<Priority>(cls);
    Result<Priority> parsed =
        ParsePriority(std::string(PriorityName(priority)));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.ValueOrDie(), priority);
  }
  EXPECT_EQ(ParsePriority("  Interactive ").ValueOrDie(),
            Priority::kInteractive);
  EXPECT_EQ(ParsePriority("best-effort").ValueOrDie(),
            Priority::kBestEffort);
  EXPECT_FALSE(ParsePriority("urgent").ok());
}

TEST(ProtocolTest, CorroborateRequestRoundTrip) {
  CorroborateRequest request;
  request.priority = Priority::kInteractive;
  request.dataset = "flights";
  request.algorithm = "TwoEstimate";
  request.timeout_ms = 1500;
  request.max_rounds = 7;
  Result<CorroborateRequest> decoded =
      DecodeCorroborateRequest(EncodeCorroborateRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.ValueOrDie().priority, request.priority);
  EXPECT_EQ(decoded.ValueOrDie().dataset, request.dataset);
  EXPECT_EQ(decoded.ValueOrDie().algorithm, request.algorithm);
  EXPECT_EQ(decoded.ValueOrDie().timeout_ms, request.timeout_ms);
  EXPECT_EQ(decoded.ValueOrDie().max_rounds, request.max_rounds);
}

TEST(ProtocolTest, CorroborateResponseBitExactDoubles) {
  CorroborateResponse response;
  response.algorithm = "IncEstHeu";
  response.termination = 2;
  response.iterations = 42;
  // Values chosen to catch any lossy round-trip: denormal, -0.0, NaN.
  response.fact_probability = {0.1, -0.0,
                               std::numeric_limits<double>::denorm_min(),
                               std::numeric_limits<double>::quiet_NaN()};
  response.source_trust = {1.0 / 3.0, 0.9999999999999999};
  Result<CorroborateResponse> decoded =
      DecodeCorroborateResponse(EncodeCorroborateResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const CorroborateResponse& got = decoded.ValueOrDie();
  ASSERT_EQ(got.fact_probability.size(), response.fact_probability.size());
  for (size_t i = 0; i < response.fact_probability.size(); ++i) {
    // Bit-pattern comparison: NaN == NaN fails, memcmp does not.
    EXPECT_EQ(std::memcmp(&got.fact_probability[i],
                          &response.fact_probability[i], sizeof(double)),
              0)
        << "fact " << i;
  }
  EXPECT_EQ(got.source_trust, response.source_trust);
  EXPECT_EQ(got.termination, response.termination);
  EXPECT_EQ(got.iterations, response.iterations);
}

TEST(ProtocolTest, ErrorAndOverloadedRoundTrip) {
  ErrorResponse error;
  error.code = 10;
  error.message = "cancelled while queued";
  Result<ErrorResponse> decoded_error =
      DecodeErrorResponse(EncodeErrorResponse(error));
  ASSERT_TRUE(decoded_error.ok());
  EXPECT_EQ(decoded_error.ValueOrDie().code, error.code);
  EXPECT_EQ(decoded_error.ValueOrDie().message, error.message);

  OverloadedResponse overloaded;
  overloaded.retry_after_ms = 750;
  overloaded.queue_depth = 16;
  overloaded.message = "interactive queue full";
  Result<OverloadedResponse> decoded_overloaded =
      DecodeOverloadedResponse(EncodeOverloadedResponse(overloaded));
  ASSERT_TRUE(decoded_overloaded.ok());
  EXPECT_EQ(decoded_overloaded.ValueOrDie().retry_after_ms,
            overloaded.retry_after_ms);
  EXPECT_EQ(decoded_overloaded.ValueOrDie().queue_depth,
            overloaded.queue_depth);
}

TEST(ProtocolTest, TruncatedPayloadsAreParseErrors) {
  CorroborateRequest request;
  request.dataset = "flights";
  const std::string wire = EncodeCorroborateRequest(request);
  for (size_t length = 0; length < wire.size(); ++length) {
    Result<CorroborateRequest> decoded =
        DecodeCorroborateRequest(wire.substr(0, length));
    ASSERT_FALSE(decoded.ok()) << "length " << length;
    EXPECT_EQ(decoded.status().code(), StatusCode::kParseError)
        << "length " << length;
  }
}

TEST(ProtocolTest, TrailingBytesRejected) {
  const std::string wire =
      EncodeCorroborateRequest(CorroborateRequest{}) + "extra";
  Result<CorroborateRequest> decoded = DecodeCorroborateRequest(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
  EXPECT_NE(decoded.status().message().find("trailing"), std::string::npos);
}

TEST(ProtocolTest, VersionSkewIsFailedPrecondition) {
  std::string wire = EncodeCorroborateRequest(CorroborateRequest{});
  wire[0] = static_cast<char>(kProtocolVersion + 1);
  Result<CorroborateRequest> decoded = DecodeCorroborateRequest(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ProtocolTest, UnknownPriorityByteRejected) {
  CorroborateRequest request;
  std::string wire = EncodeCorroborateRequest(request);
  wire[1] = static_cast<char>(kNumPriorities);  // one past the last class
  Result<CorroborateRequest> decoded = DecodeCorroborateRequest(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, HugeVectorCountRejectedWithoutAllocation) {
  // An f64 vector claiming ~4 billion entries in a tiny payload must
  // fail the bounds check before any resize.
  CorroborateResponse response;
  response.algorithm = "x";
  std::string wire = EncodeCorroborateResponse(response);
  // Overwrite the fact_probability count (after version + algorithm +
  // termination + iterations) with 0xFFFFFFFF.
  const size_t count_offset = 1 + (4 + 1) + 1 + 4;
  for (int i = 0; i < 4; ++i) {
    wire[count_offset + i] = static_cast<char>(0xFF);
  }
  Result<CorroborateResponse> decoded = DecodeCorroborateResponse(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace server
}  // namespace corrob
