#include "server/server.h"

#include <sys/socket.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "common/failpoint.h"
#include "common/socket.h"
#include "core/registry.h"
#include "core/run_context.h"
#include "data/dataset_io.h"
#include "data/motivating_example.h"
#include "server/client.h"
#include "server/frame.h"
#include "server/protocol.h"

// End-to-end corrobd tests: a daemon per test on a private socket in
// TempDir, driven through CorrobClient. Deterministic in-flight
// control comes from the server.request.stall / server.request.fail
// failpoints, never from timing guesses.

namespace corrob {
namespace server {
namespace {

StopSignal NoStop() { return StopSignal(); }

template <typename Predicate>
bool EventuallyTrue(Predicate predicate) {
  CancellationToken pacer;
  for (int i = 0; i < 400; ++i) {
    if (predicate()) return true;
    // lint: discard-ok: plain sleep; the token is never cancelled
    (void)pacer.WaitForMs(5.0);
  }
  return predicate();
}

/// A corrobd serving the motivating example on its own socket, with
/// Serve() on a background thread and drain-on-destruction.
class Daemon {
 public:
  explicit Daemon(ServerOptions options) : options_(std::move(options)) {}

  ~Daemon() {
    drain_.Cancel();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] Status Launch() {
    server_ = std::make_unique<CorrobdServer>(options_);
    CORROB_RETURN_NOT_OK(server_->Start());
    thread_ = std::thread([this] { serve_status_ = server_->Serve(&drain_); });
    return Status::OK();
  }

  /// Requests drain and waits for Serve() to return.
  Status Drain() {
    drain_.Cancel();
    if (thread_.joinable()) thread_.join();
    return serve_status_;
  }

  CorrobdServer& server() { return *server_; }
  CancellationToken& drain_token() { return drain_; }

 private:
  ServerOptions options_;
  std::unique_ptr<CorrobdServer> server_;
  CancellationToken drain_;
  std::thread thread_;
  Status serve_status_;
};

class CorrobdServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string stem =
        ::testing::TempDir() + "/corrobd_" + info->name();
    csv_path_ = stem + ".csv";
    socket_path_ = stem + ".sock";
    const MotivatingExample example = MakeMotivatingExample();
    ASSERT_TRUE(SaveDatasetCsv(csv_path_, example.dataset).ok());
  }

  void TearDown() override { Failpoints::DisarmAll(); }

  ServerOptions BaseOptions() const {
    ServerOptions options;
    options.socket_path = socket_path_;
    options.dataset_specs = {"table1=" + csv_path_};
    options.drain_timeout_ms = 10000;
    return options;
  }

  Result<CorrobClient> Connect() const {
    return CorrobClient::Connect(socket_path_);
  }

  std::string csv_path_;
  std::string socket_path_;
};

TEST_F(CorrobdServerTest, StartRejectsBadConfigurations) {
  {
    ServerOptions options = BaseOptions();
    options.dataset_specs = {"missing=" + csv_path_ + ".does-not-exist"};
    CorrobdServer server(options);
    EXPECT_EQ(server.Start().code(), StatusCode::kNotFound);
  }
  {
    ServerOptions options = BaseOptions();
    options.dataset_specs = {"table1=" + csv_path_, "table1=" + csv_path_};
    CorrobdServer server(options);
    EXPECT_EQ(server.Start().code(), StatusCode::kAlreadyExists);
  }
  {
    ServerOptions options = BaseOptions();
    options.dataset_specs.clear();
    CorrobdServer server(options);
    EXPECT_EQ(server.Start().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(CorrobdServerTest, BareDatasetPathIsServedUnderItsStem) {
  ServerOptions options = BaseOptions();
  options.dataset_specs = {csv_path_};
  CorrobdServer server(options);
  ASSERT_TRUE(server.Start().ok());
  const std::vector<std::string> names = server.dataset_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_NE(names[0].find("corrobd_"), std::string::npos);
  EXPECT_EQ(names[0].find(".csv"), std::string::npos);
}

TEST_F(CorrobdServerTest, PingEchoesAndStatsReportSchema) {
  Daemon daemon(BaseOptions());
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  Result<std::string> pong =
      client.ValueOrDie().Ping("are you there", NoStop());
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong.ValueOrDie(), "are you there");

  Result<std::string> stats = client.ValueOrDie().Stats(NoStop());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats.ValueOrDie().find("corrob.serving_stats/4"),
            std::string::npos);
  EXPECT_NE(stats.ValueOrDie().find("table1"), std::string::npos);
  // The serving-efficiency layer reports its own stats objects.
  EXPECT_NE(stats.ValueOrDie().find("\"cache\""), std::string::npos);
  EXPECT_NE(stats.ValueOrDie().find("\"coalesce\""), std::string::npos);
  EXPECT_NE(stats.ValueOrDie().find("\"quota\""), std::string::npos);
  // The introspection layer summarizes itself in stats too.
  EXPECT_NE(stats.ValueOrDie().find("\"recorder\""), std::string::npos);
  EXPECT_NE(stats.ValueOrDie().find("\"watchdog\""), std::string::npos);

  EXPECT_TRUE(daemon.Drain().ok());
  EXPECT_EQ(daemon.server().responses_sent(), 2);
}

TEST_F(CorrobdServerTest, CorroborateMatchesDirectRunBitExact) {
  Daemon daemon(BaseOptions());
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = Connect();
  ASSERT_TRUE(client.ok());

  CorroborateRequest request;
  request.dataset = "table1";
  request.algorithm = "IncEstHeu";
  Result<CorroborateOutcome> outcome =
      client.ValueOrDie().Corroborate(request, NoStop());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
  const CorroborateResponse& served = outcome.ValueOrDie().result;

  // The daemon must agree, bit for bit, with running the same
  // algorithm in-process on the same CSV.
  Result<LabeledDataset> loaded = LoadDatasetCsv(csv_path_);
  ASSERT_TRUE(loaded.ok());
  Result<std::unique_ptr<Corroborator>> direct =
      MakeCorroborator("IncEstHeu", CorroboratorOptions{.num_threads = 1});
  ASSERT_TRUE(direct.ok());
  Result<CorroborationResult> run =
      direct.ValueOrDie()->Run(loaded.ValueOrDie().dataset);
  ASSERT_TRUE(run.ok());

  EXPECT_EQ(served.algorithm, run.ValueOrDie().algorithm);
  EXPECT_EQ(served.iterations,
            static_cast<uint32_t>(run.ValueOrDie().iterations));
  EXPECT_EQ(served.fact_probability, run.ValueOrDie().fact_probability);
  EXPECT_EQ(served.source_trust, run.ValueOrDie().source_trust);
  EXPECT_FALSE(TerminatedEarly(
      static_cast<Termination>(served.termination)));
}

TEST_F(CorrobdServerTest, UnknownDatasetIsNotFoundAndConnectionSurvives) {
  Daemon daemon(BaseOptions());
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = Connect();
  ASSERT_TRUE(client.ok());

  CorroborateRequest request;
  request.dataset = "no-such-table";
  Result<CorroborateOutcome> outcome =
      client.ValueOrDie().Corroborate(request, NoStop());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome.ValueOrDie().kind, CorroborateOutcome::Kind::kError);
  EXPECT_EQ(outcome.ValueOrDie().error.code,
            static_cast<uint8_t>(StatusCode::kNotFound));

  // Same connection, correct dataset: the request-level failure left
  // the stream frame-aligned and the daemon healthy.
  request.dataset = "table1";
  Result<CorroborateOutcome> retry =
      client.ValueOrDie().Corroborate(request, NoStop());
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
}

TEST_F(CorrobdServerTest, UnknownAlgorithmIsTypedError) {
  Daemon daemon(BaseOptions());
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = Connect();
  ASSERT_TRUE(client.ok());

  CorroborateRequest request;
  request.dataset = "table1";
  request.algorithm = "NotAnAlgorithm";
  Result<CorroborateOutcome> outcome =
      client.ValueOrDie().Corroborate(request, NoStop());
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome.ValueOrDie().kind, CorroborateOutcome::Kind::kError);
  EXPECT_EQ(outcome.ValueOrDie().error.code,
            static_cast<uint8_t>(StatusCode::kNotFound));
  EXPECT_NE(outcome.ValueOrDie().error.message.find("NotAnAlgorithm"),
            std::string::npos);
}

TEST_F(CorrobdServerTest, MalformedPayloadIsParseErrorAndStreamSurvives) {
  Daemon daemon(BaseOptions());
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = Connect();
  ASSERT_TRUE(client.ok());

  // A well-framed corroborate request whose payload is empty: the
  // frame layer accepts it, the payload codec must reject it in-band.
  Frame bad;
  bad.type = FrameType::kCorroborateRequest;
  ASSERT_TRUE(WriteFrame(client.ValueOrDie().fd(), bad, NoStop()).ok());
  Result<Frame> reply = ReadFrame(client.ValueOrDie().fd(), NoStop());
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply.ValueOrDie().type, FrameType::kErrorResponse);
  Result<ErrorResponse> error =
      DecodeErrorResponse(reply.ValueOrDie().payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error.ValueOrDie().code,
            static_cast<uint8_t>(StatusCode::kParseError));

  // The stream stayed frame-aligned: the next request works.
  Result<std::string> pong = client.ValueOrDie().Ping("still here", NoStop());
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong.ValueOrDie(), "still here");
}

TEST_F(CorrobdServerTest, GarbageStreamGetsTypedErrorThenCloseNotCrash) {
  Daemon daemon(BaseOptions());
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = Connect();
  ASSERT_TRUE(client.ok());

  // Raw garbage desyncs the framing: the daemon answers with a typed
  // error, then hangs up (the stream cannot be trusted any more).
  const std::string garbage(32, '\x5A');
  ASSERT_EQ(::send(client.ValueOrDie().fd(), garbage.data(), garbage.size(),
                   MSG_NOSIGNAL),
            static_cast<ssize_t>(garbage.size()));
  Result<Frame> reply = ReadFrame(client.ValueOrDie().fd(), NoStop());
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.ValueOrDie().type, FrameType::kErrorResponse);
  // The server closes with unread garbage still buffered, which the
  // kernel may surface as a clean EOF or a reset; either way no
  // further frame arrives.
  Result<std::optional<Frame>> eof =
      ReadFrameOrEof(client.ValueOrDie().fd(), NoStop());
  if (eof.ok()) {
    EXPECT_FALSE(eof.ValueOrDie().has_value());
  } else {
    EXPECT_EQ(eof.status().code(), StatusCode::kIoError);
  }

  // The daemon survived and accepts fresh connections.
  Result<CorrobClient> fresh = Connect();
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh.ValueOrDie().Ping("hello", NoStop()).ok());
}

TEST_F(CorrobdServerTest, RequestFailpointIsTypedErrorAndDaemonSurvives) {
  Daemon daemon(BaseOptions());
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = Connect();
  ASSERT_TRUE(client.ok());

  Failpoints::Arm("server.request.fail",
                  {.code = StatusCode::kInternal,
                   .message = "injected request fault"});
  CorroborateRequest request;
  request.dataset = "table1";
  Result<CorroborateOutcome> outcome =
      client.ValueOrDie().Corroborate(request, NoStop());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome.ValueOrDie().kind, CorroborateOutcome::Kind::kError);
  EXPECT_EQ(outcome.ValueOrDie().error.code,
            static_cast<uint8_t>(StatusCode::kInternal));
  EXPECT_EQ(outcome.ValueOrDie().error.message, "injected request fault");

  Failpoints::DisarmAll();
  Result<CorroborateOutcome> retry =
      client.ValueOrDie().Corroborate(request, NoStop());
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
}

TEST_F(CorrobdServerTest, OverloadShedsWithRetryHintAndSlotHolderFinishes) {
  ServerOptions options = BaseOptions();
  options.admission.max_concurrency = 1;
  options.admission.queue_capacity = {0, 0, 0};
  Daemon daemon(options);
  ASSERT_TRUE(daemon.Launch().ok());

  Failpoints::Arm("server.request.stall",
                  {.code = StatusCode::kInternal, .message = "stall"});
  Result<CorrobClient> holder = Connect();
  ASSERT_TRUE(holder.ok());
  Result<CorroborateOutcome> held = Status::Internal("not yet run");
  std::thread holder_thread([&] {
    CorroborateRequest request;
    request.dataset = "table1";
    held = holder.ValueOrDie().Corroborate(request, NoStop());
  });
  ASSERT_TRUE(EventuallyTrue(
      [&] { return daemon.server().admission().running() == 1; }));

  // The slot is held and the queue has no room: the second request
  // must be shed immediately with a structured retry hint.
  Result<CorrobClient> shed_client = Connect();
  ASSERT_TRUE(shed_client.ok());
  CorroborateRequest request;
  request.dataset = "table1";
  Result<CorroborateOutcome> shed =
      shed_client.ValueOrDie().Corroborate(request, NoStop());
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  ASSERT_EQ(shed.ValueOrDie().kind, CorroborateOutcome::Kind::kOverloaded);
  EXPECT_GE(shed.ValueOrDie().overloaded.retry_after_ms, 25u);
  EXPECT_LE(shed.ValueOrDie().overloaded.retry_after_ms, 60000u);
  EXPECT_NE(shed.ValueOrDie().overloaded.message.find("batch"),
            std::string::npos);

  // Being shed never disturbs the request holding the slot.
  Failpoints::DisarmAll();
  holder_thread.join();
  ASSERT_TRUE(held.ok()) << held.status().ToString();
  EXPECT_EQ(held.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
}

TEST_F(CorrobdServerTest, ClientDisconnectCancelsOnlyThatRequest) {
  ServerOptions options = BaseOptions();
  options.admission.max_concurrency = 2;
  Daemon daemon(options);
  ASSERT_TRUE(daemon.Launch().ok());

  Failpoints::Arm("server.request.stall",
                  {.code = StatusCode::kInternal, .message = "stall"});
  Result<CorrobClient> doomed = Connect();
  Result<CorrobClient> survivor = Connect();
  ASSERT_TRUE(doomed.ok());
  ASSERT_TRUE(survivor.ok());

  CorroborateRequest request;
  request.dataset = "table1";
  // The doomed request never reads its response; fire-and-forget the
  // request frame, then vanish mid-execution.
  Frame doomed_frame;
  doomed_frame.type = FrameType::kCorroborateRequest;
  doomed_frame.payload = EncodeCorroborateRequest(request);
  ASSERT_TRUE(
      WriteFrame(doomed.ValueOrDie().fd(), doomed_frame, NoStop()).ok());

  Result<CorroborateOutcome> survived = Status::Internal("not yet run");
  std::thread survivor_thread([&] {
    survived = survivor.ValueOrDie().Corroborate(request, NoStop());
  });
  ASSERT_TRUE(EventuallyTrue(
      [&] { return daemon.server().admission().running() == 2; }));

  // Disconnect: the watcher must cancel the doomed request's token
  // and free its slot while the survivor keeps executing.
  // lint: discard-ok: Close() returns void; only the side effect matters
  doomed.ValueOrDie().Close();
  ASSERT_TRUE(EventuallyTrue(
      [&] { return daemon.server().admission().running() == 1; }));

  Failpoints::DisarmAll();
  survivor_thread.join();
  ASSERT_TRUE(survived.ok()) << survived.status().ToString();
  ASSERT_EQ(survived.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
  // The survivor was untouched by its neighbour's cancellation.
  EXPECT_FALSE(TerminatedEarly(
      static_cast<Termination>(survived.ValueOrDie().result.termination)));
}

TEST_F(CorrobdServerTest, DrainFinishesInFlightBitIdenticalToFreshDaemon) {
  CorroborateRequest request;
  request.dataset = "table1";

  // Reference bytes: the same request against an undisturbed daemon.
  std::string fresh_frame;
  {
    ServerOptions options = BaseOptions();
    options.socket_path = socket_path_ + ".fresh";
    Daemon daemon(options);
    ASSERT_TRUE(daemon.Launch().ok());
    Result<CorrobClient> client =
        CorrobClient::Connect(options.socket_path);
    ASSERT_TRUE(client.ok());
    Result<CorroborateOutcome> outcome =
        client.ValueOrDie().Corroborate(request, NoStop());
    ASSERT_TRUE(outcome.ok());
    ASSERT_EQ(outcome.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
    fresh_frame = outcome.ValueOrDie().raw_frame;
  }
  ASSERT_FALSE(fresh_frame.empty());

  // Now the same request caught mid-flight by a drain: it must finish
  // and answer with exactly the same bytes.
  Daemon daemon(BaseOptions());
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = Connect();
  ASSERT_TRUE(client.ok());

  Failpoints::Arm("server.request.stall",
                  {.code = StatusCode::kInternal, .message = "stall"});
  Result<CorroborateOutcome> outcome = Status::Internal("not yet run");
  std::thread in_flight([&] {
    outcome = client.ValueOrDie().Corroborate(request, NoStop());
  });
  ASSERT_TRUE(EventuallyTrue(
      [&] { return daemon.server().admission().running() == 1; }));

  daemon.drain_token().Cancel();
  Failpoints::DisarmAll();
  in_flight.join();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
  EXPECT_EQ(outcome.ValueOrDie().raw_frame, fresh_frame);
  EXPECT_TRUE(daemon.Drain().ok());
  EXPECT_EQ(daemon.server().responses_sent(), 1);
}

TEST_F(CorrobdServerTest, DeadlineExpiryYieldsGracefulEarlyStopResponse) {
  Daemon daemon(BaseOptions());
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = Connect();
  ASSERT_TRUE(client.ok());

  // Stall the request past its own deadline: it must still answer —
  // with a graceful deadline_exceeded result, not silence or a crash.
  Failpoints::Arm("server.request.stall",
                  {.code = StatusCode::kInternal, .message = "stall"});
  CorroborateRequest request;
  request.dataset = "table1";
  request.timeout_ms = 60;
  Result<CorroborateOutcome> outcome =
      client.ValueOrDie().Corroborate(request, NoStop());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
  EXPECT_EQ(static_cast<Termination>(outcome.ValueOrDie().result.termination),
            Termination::kDeadlineExceeded);
}

TEST_F(CorrobdServerTest, DrainExpiryCancelsStragglersButStillAnswers) {
  ServerOptions options = BaseOptions();
  options.drain_timeout_ms = 100;
  Daemon daemon(options);
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = Connect();
  ASSERT_TRUE(client.ok());

  // A request with no deadline of its own, stalled forever: only the
  // drain deadline's abort can unstick it, and even then it answers.
  Failpoints::Arm("server.request.stall",
                  {.code = StatusCode::kInternal, .message = "stall"});
  CorroborateRequest request;
  request.dataset = "table1";
  request.timeout_ms = 0;
  request.priority = Priority::kBestEffort;  // default timeout 120s
  Result<CorroborateOutcome> outcome = Status::Internal("not yet run");
  std::thread in_flight([&] {
    outcome = client.ValueOrDie().Corroborate(request, NoStop());
  });
  ASSERT_TRUE(EventuallyTrue(
      [&] { return daemon.server().admission().running() == 1; }));

  EXPECT_TRUE(daemon.Drain().ok());
  in_flight.join();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
  EXPECT_EQ(static_cast<Termination>(outcome.ValueOrDie().result.termination),
            Termination::kCancelled);
}

TEST_F(CorrobdServerTest, CacheHitReplaysAndCountsOneHit) {
  Daemon daemon(BaseOptions());
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = Connect();
  ASSERT_TRUE(client.ok());

  CorroborateRequest request;
  request.dataset = "table1";
  Result<CorroborateOutcome> cold =
      client.ValueOrDie().Corroborate(request, NoStop());
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
  Result<CorroborateOutcome> warm =
      client.ValueOrDie().Corroborate(request, NoStop());
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);

  EXPECT_EQ(warm.ValueOrDie().raw_frame, cold.ValueOrDie().raw_frame);
  const CacheStats stats = daemon.server().cache().stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_TRUE(daemon.Drain().ok());
  EXPECT_EQ(daemon.server().responses_sent(), 2);
}

TEST_F(CorrobdServerTest, RateQuotaShedsWithTypedRetryAfter) {
  ServerOptions options = BaseOptions();
  // 0.1 qps: the one burst token refills over ten seconds, far beyond
  // any sanitizer-slowed run, so the second request deterministically
  // finds the bucket empty.
  options.tenant_overrides = {
      {"metered", TenantLimits{.qps = 0.1, .burst = 1.0}}};
  Daemon daemon(options);
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = Connect();
  ASSERT_TRUE(client.ok());

  CorroborateRequest request;
  request.dataset = "table1";
  request.tenant = "metered";
  Result<CorroborateOutcome> first =
      client.ValueOrDie().Corroborate(request, NoStop());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);

  // The second request lands inside the same one-token second; it is
  // rejected BEFORE the cache could answer it — quota protects the
  // daemon's fairness contract, not just its CPU.
  Result<CorroborateOutcome> second =
      client.ValueOrDie().Corroborate(request, NoStop());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_EQ(second.ValueOrDie().kind,
            CorroborateOutcome::Kind::kQuotaExceeded);
  EXPECT_GE(second.ValueOrDie().quota.retry_after_ms, 1u);
  EXPECT_LE(second.ValueOrDie().quota.retry_after_ms, 10000u);
  EXPECT_EQ(second.ValueOrDie().quota.tenant, "metered");
  EXPECT_NE(second.ValueOrDie().quota.message.find("rate limit"),
            std::string::npos);
  EXPECT_EQ(daemon.server().quotas().stats().rate_rejections, 1);

  // Other tenants are untouched by the metered tenant's exhaustion.
  request.tenant.clear();
  Result<CorroborateOutcome> anonymous =
      client.ValueOrDie().Corroborate(request, NoStop());
  ASSERT_TRUE(anonymous.ok());
  EXPECT_EQ(anonymous.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
}

TEST_F(CorrobdServerTest, SlotQuotaShedsConcurrentTenantRuns) {
  ServerOptions options = BaseOptions();
  options.tenant_overrides = {
      {"slotted", TenantLimits{.concurrent_slots = 1}}};
  Daemon daemon(options);
  ASSERT_TRUE(daemon.Launch().ok());

  Failpoints::Arm("server.request.stall",
                  {.code = StatusCode::kInternal, .message = "stall"});
  Result<CorrobClient> holder = Connect();
  ASSERT_TRUE(holder.ok());
  Result<CorroborateOutcome> held = Status::Internal("not yet run");
  std::thread holder_thread([&] {
    CorroborateRequest request;
    request.dataset = "table1";
    request.tenant = "slotted";
    request.options = {{"k", "1"}};
    held = holder.ValueOrDie().Corroborate(request, NoStop());
  });
  ASSERT_TRUE(EventuallyTrue(
      [&] { return daemon.server().admission().running() == 1; }));

  // Different options → different cache key, so the second request
  // cannot ride the cache or the coalescer; it needs a run slot the
  // tenant does not have.
  Result<CorrobClient> second_client = Connect();
  ASSERT_TRUE(second_client.ok());
  CorroborateRequest request;
  request.dataset = "table1";
  request.tenant = "slotted";
  request.options = {{"k", "2"}};
  Result<CorroborateOutcome> rejected =
      second_client.ValueOrDie().Corroborate(request, NoStop());
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  ASSERT_EQ(rejected.ValueOrDie().kind,
            CorroborateOutcome::Kind::kQuotaExceeded);
  EXPECT_EQ(rejected.ValueOrDie().quota.retry_after_ms, 100u);
  EXPECT_NE(rejected.ValueOrDie().quota.message.find("concurrent"),
            std::string::npos);
  EXPECT_EQ(daemon.server().quotas().stats().slot_rejections, 1);

  Failpoints::DisarmAll();
  holder_thread.join();
  ASSERT_TRUE(held.ok()) << held.status().ToString();
  EXPECT_EQ(held.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
}

TEST_F(CorrobdServerTest, BatchReportsPerItemStatuses) {
  Daemon daemon(BaseOptions());
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = Connect();
  ASSERT_TRUE(client.ok());

  BatchRequest batch;
  batch.items.resize(2);
  batch.items[0].dataset = "table1";
  batch.items[1].dataset = "no-such-table";
  Result<std::vector<CorroborateOutcome>> outcomes =
      client.ValueOrDie().BatchCorroborate(batch, NoStop());
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes.ValueOrDie().size(), 2u);
  EXPECT_EQ(outcomes.ValueOrDie()[0].kind,
            CorroborateOutcome::Kind::kResult);
  ASSERT_EQ(outcomes.ValueOrDie()[1].kind, CorroborateOutcome::Kind::kError);
  EXPECT_EQ(outcomes.ValueOrDie()[1].error.code,
            static_cast<uint8_t>(StatusCode::kNotFound));

  // One frame went over the wire, and the good item's standalone
  // framing matches an actual standalone request (a cache hit now).
  EXPECT_EQ(daemon.server().responses_sent(), 1);
  CorroborateRequest standalone;
  standalone.dataset = "table1";
  Result<CorroborateOutcome> reference =
      client.ValueOrDie().Corroborate(standalone, NoStop());
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(outcomes.ValueOrDie()[0].raw_frame,
            reference.ValueOrDie().raw_frame);
}

TEST_F(CorrobdServerTest, BatchRateChargeIsAllOrNothing) {
  ServerOptions options = BaseOptions();
  options.tenant_overrides = {
      {"batcher", TenantLimits{.qps = 1.0, .burst = 2.0}}};
  Daemon daemon(options);
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = Connect();
  ASSERT_TRUE(client.ok());

  // Two tokens in the bucket: a three-item batch is refused as a
  // whole (one typed frame, nothing executed, nothing charged)...
  BatchRequest batch;
  batch.tenant = "batcher";
  batch.items.resize(3);
  for (BatchItem& item : batch.items) item.dataset = "table1";
  Result<std::vector<CorroborateOutcome>> refused =
      client.ValueOrDie().BatchCorroborate(batch, NoStop());
  ASSERT_TRUE(refused.ok()) << refused.status().ToString();
  ASSERT_EQ(refused.ValueOrDie().size(), 1u);
  ASSERT_EQ(refused.ValueOrDie()[0].kind,
            CorroborateOutcome::Kind::kQuotaExceeded);
  EXPECT_GE(refused.ValueOrDie()[0].quota.retry_after_ms, 1u);
  EXPECT_EQ(daemon.server().cache().stats().misses, 0);

  // ...so the untouched two tokens still cover a two-item batch.
  batch.items.resize(2);
  Result<std::vector<CorroborateOutcome>> accepted =
      client.ValueOrDie().BatchCorroborate(batch, NoStop());
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  ASSERT_EQ(accepted.ValueOrDie().size(), 2u);
  for (const CorroborateOutcome& outcome : accepted.ValueOrDie()) {
    EXPECT_EQ(outcome.kind, CorroborateOutcome::Kind::kResult);
  }
}

TEST_F(CorrobdServerTest, LeaderDisconnectPromotesExactlyOneFollower) {
  ServerOptions options = BaseOptions();
  options.admission.max_concurrency = 4;
  Daemon daemon(options);
  ASSERT_TRUE(daemon.Launch().ok());

  Failpoints::Arm("server.request.stall",
                  {.code = StatusCode::kInternal, .message = "stall"});
  CorroborateRequest request;
  request.dataset = "table1";
  request.options = {{"lane", "promote"}};

  // The doomed leader never reads its response: fire-and-forget the
  // frame, let it take the flight, then vanish.
  Result<CorrobClient> doomed = Connect();
  ASSERT_TRUE(doomed.ok());
  Frame doomed_frame;
  doomed_frame.type = FrameType::kCorroborateRequest;
  doomed_frame.payload = EncodeCorroborateRequest(request);
  ASSERT_TRUE(
      WriteFrame(doomed.ValueOrDie().fd(), doomed_frame, NoStop()).ok());
  ASSERT_TRUE(EventuallyTrue(
      [&] { return daemon.server().admission().running() == 1; }));

  Result<CorrobClient> survivor = Connect();
  ASSERT_TRUE(survivor.ok());
  Result<CorroborateOutcome> survived = Status::Internal("not yet run");
  std::thread survivor_thread([&] {
    survived = survivor.ValueOrDie().Corroborate(request, NoStop());
  });
  ASSERT_TRUE(EventuallyTrue(
      [&] { return daemon.server().coalescer().stats().followers == 1; }));

  // Disconnect the leader: its run is cancelled (not shareable), the
  // flight is handed to the one follower, which re-runs it whole.
  // lint: discard-ok: Close() returns void; only the side effect matters
  doomed.ValueOrDie().Close();
  ASSERT_TRUE(EventuallyTrue(
      [&] { return daemon.server().coalescer().stats().promotions == 1; }));

  Failpoints::DisarmAll();
  survivor_thread.join();
  ASSERT_TRUE(survived.ok()) << survived.status().ToString();
  ASSERT_EQ(survived.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
  EXPECT_FALSE(TerminatedEarly(
      static_cast<Termination>(survived.ValueOrDie().result.termination)));
  const RunCoalescer::Stats stats = daemon.server().coalescer().stats();
  EXPECT_EQ(stats.promotions, 1);
  EXPECT_EQ(stats.abandoned, 1);
  EXPECT_EQ(stats.shared, 0);
}

TEST_F(CorrobdServerTest, FollowerDisconnectNeverCancelsLeader) {
  ServerOptions options = BaseOptions();
  options.admission.max_concurrency = 4;
  Daemon daemon(options);
  ASSERT_TRUE(daemon.Launch().ok());

  Failpoints::Arm("server.request.stall",
                  {.code = StatusCode::kInternal, .message = "stall"});
  CorroborateRequest request;
  request.dataset = "table1";
  request.options = {{"lane", "isolate"}};

  Result<CorrobClient> leader_client = Connect();
  ASSERT_TRUE(leader_client.ok());
  Result<CorroborateOutcome> led = Status::Internal("not yet run");
  std::thread leader_thread([&] {
    led = leader_client.ValueOrDie().Corroborate(request, NoStop());
  });
  ASSERT_TRUE(EventuallyTrue(
      [&] { return daemon.server().admission().running() == 1; }));

  // A fire-and-forget follower joins the stalled flight, then
  // vanishes. Its cancellation must detach it — slot released — while
  // the leader keeps stalling, untouched.
  Result<CorrobClient> doomed = Connect();
  ASSERT_TRUE(doomed.ok());
  Frame doomed_frame;
  doomed_frame.type = FrameType::kCorroborateRequest;
  doomed_frame.payload = EncodeCorroborateRequest(request);
  ASSERT_TRUE(
      WriteFrame(doomed.ValueOrDie().fd(), doomed_frame, NoStop()).ok());
  ASSERT_TRUE(EventuallyTrue(
      [&] { return daemon.server().coalescer().stats().followers == 1; }));
  ASSERT_TRUE(EventuallyTrue(
      [&] { return daemon.server().admission().running() == 2; }));

  // lint: discard-ok: Close() returns void; only the side effect matters
  doomed.ValueOrDie().Close();
  ASSERT_TRUE(EventuallyTrue(
      [&] { return daemon.server().admission().running() == 1; }));

  Failpoints::DisarmAll();
  leader_thread.join();
  ASSERT_TRUE(led.ok()) << led.status().ToString();
  ASSERT_EQ(led.ValueOrDie().kind, CorroborateOutcome::Kind::kResult);
  EXPECT_FALSE(TerminatedEarly(
      static_cast<Termination>(led.ValueOrDie().result.termination)));
  const RunCoalescer::Stats stats = daemon.server().coalescer().stats();
  EXPECT_EQ(stats.promotions, 0);
  EXPECT_EQ(stats.shared, 0);
  EXPECT_EQ(stats.abandoned, 0);
}

TEST_F(CorrobdServerTest, ReloadUnknownDatasetIsTypedNotFound) {
  Daemon daemon(BaseOptions());
  ASSERT_TRUE(daemon.Launch().ok());
  Result<CorrobClient> client = Connect();
  ASSERT_TRUE(client.ok());

  ReloadRequest reload;
  reload.dataset = "no-such-table";
  Result<ReloadResponse> outcome =
      client.ValueOrDie().Reload(reload, NoStop());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotFound);

  // An empty name reloads everything the daemon serves.
  reload.dataset.clear();
  Result<ReloadResponse> all = client.ValueOrDie().Reload(reload, NoStop());
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(all.ValueOrDie().datasets_reloaded, 1u);
  EXPECT_EQ(all.ValueOrDie().generation, 2u);
}

}  // namespace
}  // namespace server
}  // namespace corrob
