#include "server/admission.h"

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "obs/clock.h"

namespace corrob {
namespace server {
namespace {

using Outcome = AdmissionDecision::Outcome;

StopSignal NoStop() { return StopSignal(); }

/// Spins until `predicate` holds or ~2s elapse; admission waiters poll
/// in 20ms slices, so anything they do becomes visible well inside
/// this bound.
template <typename Predicate>
bool EventuallyTrue(Predicate predicate) {
  CancellationToken pacer;
  for (int i = 0; i < 400; ++i) {
    if (predicate()) return true;
    // lint: discard-ok: plain sleep; the token is never cancelled
    (void)pacer.WaitForMs(5.0);
  }
  return predicate();
}

TEST(AdmissionTest, AdmitsUpToMaxConcurrency) {
  AdmissionOptions options;
  options.max_concurrency = 2;
  options.queue_capacity = {0, 0, 0};
  AdmissionController controller(options, obs::MonotonicClock::Get());

  AdmissionDecision first = controller.Admit(Priority::kBatch, NoStop());
  AdmissionDecision second = controller.Admit(Priority::kBatch, NoStop());
  EXPECT_EQ(first.outcome, Outcome::kAdmitted);
  EXPECT_EQ(second.outcome, Outcome::kAdmitted);
  EXPECT_EQ(controller.running(), 2);

  controller.Release(Priority::kBatch, 1000);
  controller.Release(Priority::kBatch, 1000);
  EXPECT_EQ(controller.running(), 0);
}

TEST(AdmissionTest, ShedWhenQueueFullCarriesClampedRetryAfter) {
  AdmissionOptions options;
  options.max_concurrency = 1;
  options.queue_capacity = {0, 0, 0};
  AdmissionController controller(options, obs::MonotonicClock::Get());

  ASSERT_EQ(controller.Admit(Priority::kInteractive, NoStop()).outcome,
            Outcome::kAdmitted);
  AdmissionDecision shed =
      controller.Admit(Priority::kInteractive, NoStop());
  EXPECT_EQ(shed.outcome, Outcome::kShed);
  EXPECT_GE(shed.retry_after_ms, 25u);
  EXPECT_LE(shed.retry_after_ms, 60000u);
  EXPECT_EQ(shed.queue_depth, 0u);
  // Shedding must not leak a slot.
  EXPECT_EQ(controller.running(), 1);
  controller.Release(Priority::kInteractive, 1000);
}

TEST(AdmissionTest, AlreadyFiredStopIsCancelledNotAdmitted) {
  AdmissionOptions options;
  options.max_concurrency = 1;
  AdmissionController controller(options, obs::MonotonicClock::Get());
  ASSERT_EQ(controller.Admit(Priority::kBatch, NoStop()).outcome,
            Outcome::kAdmitted);

  CancellationToken token;
  token.Cancel();
  AdmissionDecision decision =
      controller.Admit(Priority::kBatch, StopSignal(&token, Deadline()));
  EXPECT_EQ(decision.outcome, Outcome::kCancelled);
  EXPECT_EQ(controller.queued(Priority::kBatch), 0);
  controller.Release(Priority::kBatch, 1000);
}

TEST(AdmissionTest, ExpiredDeadlineWhileQueuedIsCancelled) {
  AdmissionOptions options;
  options.max_concurrency = 1;
  obs::ManualClock clock;
  AdmissionController controller(options, &clock);
  ASSERT_EQ(controller.Admit(Priority::kBatch, NoStop()).outcome,
            Outcome::kAdmitted);

  const Deadline deadline = Deadline::AfterMs(&clock, 10);
  std::atomic<bool> done{false};
  AdmissionDecision decision;
  std::thread waiter([&] {
    decision = controller.Admit(Priority::kBatch,
                                StopSignal(nullptr, deadline));
    done.store(true);
  });
  ASSERT_TRUE(EventuallyTrue(
      [&] { return controller.queued(Priority::kBatch) == 1; }));
  clock.AdvanceNanos(11ll * 1000 * 1000);
  ASSERT_TRUE(EventuallyTrue([&] { return done.load(); }));
  waiter.join();
  EXPECT_EQ(decision.outcome, Outcome::kCancelled);
  // The dead waiter's ticket is gone; nothing queued remains.
  EXPECT_EQ(controller.queued(Priority::kBatch), 0);
  controller.Release(Priority::kBatch, 1000);
}

TEST(AdmissionTest, InteractiveIsGrantedBeforeBestEffort) {
  AdmissionOptions options;
  options.max_concurrency = 1;
  AdmissionController controller(options, obs::MonotonicClock::Get());
  ASSERT_EQ(controller.Admit(Priority::kBatch, NoStop()).outcome,
            Outcome::kAdmitted);

  std::mutex order_mutex;
  std::vector<Priority> grant_order;
  auto waiter = [&](Priority priority) {
    AdmissionDecision decision = controller.Admit(priority, NoStop());
    EXPECT_EQ(decision.outcome, Outcome::kAdmitted);
    {
      std::lock_guard<std::mutex> lock(order_mutex);
      grant_order.push_back(priority);
    }
    controller.Release(priority, 1000);
  };

  // Enqueue the worse class first so arrival order and priority order
  // disagree.
  std::thread best_effort(waiter, Priority::kBestEffort);
  ASSERT_TRUE(EventuallyTrue(
      [&] { return controller.queued(Priority::kBestEffort) == 1; }));
  std::thread interactive(waiter, Priority::kInteractive);
  ASSERT_TRUE(EventuallyTrue(
      [&] { return controller.queued(Priority::kInteractive) == 1; }));

  controller.Release(Priority::kBatch, 1000);
  best_effort.join();
  interactive.join();

  ASSERT_EQ(grant_order.size(), 2u);
  EXPECT_EQ(grant_order[0], Priority::kInteractive);
  EXPECT_EQ(grant_order[1], Priority::kBestEffort);
}

TEST(AdmissionTest, CancelledWaiterDoesNotBlockThoseBehindIt) {
  AdmissionOptions options;
  options.max_concurrency = 1;
  AdmissionController controller(options, obs::MonotonicClock::Get());
  ASSERT_EQ(controller.Admit(Priority::kBatch, NoStop()).outcome,
            Outcome::kAdmitted);

  CancellationToken cancel_me;
  AdmissionDecision front_decision;
  std::thread front([&] {
    front_decision = controller.Admit(
        Priority::kBatch, StopSignal(&cancel_me, Deadline()));
  });
  ASSERT_TRUE(EventuallyTrue(
      [&] { return controller.queued(Priority::kBatch) == 1; }));

  std::atomic<bool> back_admitted{false};
  std::thread back([&] {
    AdmissionDecision decision = controller.Admit(Priority::kBatch, NoStop());
    EXPECT_EQ(decision.outcome, Outcome::kAdmitted);
    back_admitted.store(true);
    controller.Release(Priority::kBatch, 1000);
  });
  ASSERT_TRUE(EventuallyTrue(
      [&] { return controller.queued(Priority::kBatch) == 2; }));

  // Kill the front waiter while it is first in line, then free the
  // slot: the grant must skip the corpse and reach the back waiter.
  cancel_me.Cancel();
  front.join();
  EXPECT_EQ(front_decision.outcome, Outcome::kCancelled);
  controller.Release(Priority::kBatch, 1000);
  ASSERT_TRUE(EventuallyTrue([&] { return back_admitted.load(); }));
  back.join();
  EXPECT_EQ(controller.running(), 0);
}

TEST(AdmissionTest, QueueWaitIsMeasuredOnManualClock) {
  AdmissionOptions options;
  options.max_concurrency = 1;
  obs::ManualClock clock;
  AdmissionController controller(options, &clock);
  ASSERT_EQ(controller.Admit(Priority::kBatch, NoStop()).outcome,
            Outcome::kAdmitted);

  std::atomic<bool> done{false};
  AdmissionDecision decision;
  std::thread waiter([&] {
    decision = controller.Admit(Priority::kBatch, NoStop());
    done.store(true);
  });
  ASSERT_TRUE(EventuallyTrue(
      [&] { return controller.queued(Priority::kBatch) == 1; }));
  clock.AdvanceNanos(40ll * 1000 * 1000);
  controller.Release(Priority::kBatch, 1000);
  ASSERT_TRUE(EventuallyTrue([&] { return done.load(); }));
  waiter.join();
  EXPECT_EQ(decision.outcome, Outcome::kAdmitted);
  EXPECT_GE(decision.queue_wait_nanos, 40ll * 1000 * 1000);
  controller.Release(Priority::kBatch, 1000);
}

}  // namespace
}  // namespace server
}  // namespace corrob
