#include "obs/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace corrob {
namespace obs {
namespace {

TEST(CounterTest, AddsAndFolds) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.counter");
  EXPECT_EQ(counter->Value(), 0);
  counter->Add();
  counter->Add(41);
  EXPECT_EQ(counter->Value(), 42);
  counter->Reset();
  EXPECT_EQ(counter->Value(), 0);
}

TEST(CounterTest, ConcurrentIncrementsFoldToExactSum) {
  // The acceptance bar for the sharded design: N threads hammer the
  // same counters; the folded totals must equal the exact arithmetic
  // sum — no lost updates, no double counts.
  MetricsRegistry registry;
  Counter* fast = registry.GetCounter("test.fast");
  Counter* slow = registry.GetCounter("test.slow");
  Histogram* histogram = registry.GetHistogram("test.histogram");
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        fast->Add(1);
        if (i % 10 == 0) slow->Add(t + 1);
        histogram->Record(i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(fast->Value(),
            static_cast<int64_t>(kThreads) * kIncrementsPerThread);
  // Each thread t adds (t+1) on every 10th iteration.
  int64_t expected_slow = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_slow += static_cast<int64_t>(t + 1) * (kIncrementsPerThread / 10);
  }
  EXPECT_EQ(slow->Value(), expected_slow);
  EXPECT_EQ(histogram->Count(),
            static_cast<int64_t>(kThreads) * kIncrementsPerThread);
  int64_t per_thread_sum =
      static_cast<int64_t>(kIncrementsPerThread - 1) * kIncrementsPerThread / 2;
  EXPECT_EQ(histogram->Sum(), kThreads * per_thread_sum);
}

TEST(GaugeTest, KeepsLastValue) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("test.gauge");
  gauge->Set(7);
  gauge->Set(3);
  EXPECT_EQ(gauge->Value(), 3);
}

TEST(HistogramTest, BucketsAreLogScale) {
  // Bucket 0 is {0}; bucket b >= 1 is [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  EXPECT_EQ(Histogram::BucketOf(1023), 10);
  EXPECT_EQ(Histogram::BucketOf(1024), 11);

  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("test.h");
  histogram->Record(0);
  histogram->Record(3);
  histogram->Record(3);
  histogram->Record(-5);  // clamps to 0
  EXPECT_EQ(histogram->Count(), 4);
  EXPECT_EQ(histogram->Sum(), 6);
  EXPECT_EQ(histogram->BucketCount(0), 2);
  EXPECT_EQ(histogram->BucketCount(2), 2);
}

TEST(MetricsRegistryTest, GetIsCreateOrGetWithStablePointers) {
  MetricsRegistry registry;
  Counter* first = registry.GetCounter("test.same");
  Counter* second = registry.GetCounter("test.same");
  EXPECT_EQ(first, second);
  EXPECT_NE(registry.GetCounter("test.other"), first);
  // Counters, gauges and histograms live in separate namespaces.
  registry.GetGauge("test.same");
  registry.GetHistogram("test.same");
}

TEST(MetricsRegistryTest, SnapshotIsNameSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("test.b")->Add(2);
  registry.GetCounter("test.a")->Add(1);
  registry.GetGauge("test.g")->Set(5);
  registry.GetHistogram("test.h")->Record(9);

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "test.a");
  EXPECT_EQ(snapshot.counters[0].second, 1);
  EXPECT_EQ(snapshot.counters[1].first, "test.b");
  EXPECT_EQ(snapshot.counters[1].second, 2);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].second, 5);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1);
  EXPECT_EQ(snapshot.histograms[0].sum, 9);

  std::string json = snapshot.ToJsonString();
  EXPECT_NE(json.find("\"test.a\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
}

TEST(MetricsRegistryTest, ResetAllZeroesEverything) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.c");
  Gauge* gauge = registry.GetGauge("test.g");
  Histogram* histogram = registry.GetHistogram("test.h");
  counter->Add(3);
  gauge->Set(4);
  histogram->Record(5);
  registry.ResetAll();
  EXPECT_EQ(counter->Value(), 0);
  EXPECT_EQ(gauge->Value(), 0);
  EXPECT_EQ(histogram->Count(), 0);
  EXPECT_EQ(histogram->Sum(), 0);
}

}  // namespace
}  // namespace obs
}  // namespace corrob
