#include "obs/trace.h"

#include <thread>

#include <gtest/gtest.h>

#include "obs/clock.h"

namespace corrob {
namespace obs {
namespace {

/// The global recorder is process-wide state; every test starts and
/// ends with it stopped and empty so tests compose in any order.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().Stop();
    TraceRecorder::Global().Clear();
  }
  void TearDown() override {
    TraceRecorder::Global().Stop();
    TraceRecorder::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledRecorderRecordsNothing) {
  { CORROB_TRACE_SPAN("test.ignored"); }
  EXPECT_EQ(TraceRecorder::Global().event_count(), 0);
}

TEST_F(TraceTest, SpansRecordNameAndDuration) {
  ManualClock clock;
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start(&clock);
  {
    CORROB_TRACE_SPAN("test.outer");
    clock.AdvanceNanos(5000);
    {
      CORROB_TRACE_SPAN("test.inner");
      clock.AdvanceNanos(2000);
    }
    clock.AdvanceNanos(1000);
  }
  recorder.Stop();
  EXPECT_EQ(recorder.event_count(), 2);

  // Chrome trace_event schema: complete events, microsecond units.
  JsonValue json = recorder.ToJson();
  ASSERT_TRUE(json.is_object());
  EXPECT_EQ(json.Find("displayTimeUnit")->string_value(), "ms");
  const JsonValue* events = json.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 2u);
  // Events are (ts, tid)-sorted: outer starts at 0, inner at 5µs.
  const JsonValue& outer = events->at(0);
  EXPECT_EQ(outer.Find("name")->string_value(), "test.outer");
  EXPECT_EQ(outer.Find("ph")->string_value(), "X");
  EXPECT_EQ(outer.Find("ts")->int_value(), 0);
  EXPECT_EQ(outer.Find("dur")->int_value(), 8);
  ASSERT_NE(outer.Find("pid"), nullptr);
  ASSERT_NE(outer.Find("tid"), nullptr);
  const JsonValue& inner = events->at(1);
  EXPECT_EQ(inner.Find("name")->string_value(), "test.inner");
  EXPECT_EQ(inner.Find("ts")->int_value(), 5);
  EXPECT_EQ(inner.Find("dur")->int_value(), 2);
}

TEST_F(TraceTest, StopFreezesAndClearDrops) {
  ManualClock clock;
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start(&clock);
  {
    CORROB_TRACE_SPAN("test.kept");
    clock.AdvanceNanos(1000);
  }
  recorder.Stop();
  EXPECT_EQ(recorder.event_count(), 1);
  { CORROB_TRACE_SPAN("test.after_stop"); }
  EXPECT_EQ(recorder.event_count(), 1);
  recorder.Clear();
  EXPECT_EQ(recorder.event_count(), 0);
  EXPECT_EQ(recorder.ToJson().Find("traceEvents")->size(), 0u);
}

TEST_F(TraceTest, ThreadsGetDistinctTids) {
  ManualClock clock;
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start(&clock);
  {
    CORROB_TRACE_SPAN("test.main_thread");
    std::thread worker([&] {
      CORROB_TRACE_SPAN("test.worker_thread");
      clock.AdvanceNanos(100);
    });
    worker.join();
  }
  recorder.Stop();
  ASSERT_EQ(recorder.event_count(), 2);
  JsonValue json = recorder.ToJson();
  const JsonValue* events = json.Find("traceEvents");
  int64_t tid0 = events->at(0).Find("tid")->int_value();
  int64_t tid1 = events->at(1).Find("tid")->int_value();
  EXPECT_NE(tid0, tid1);
}

}  // namespace
}  // namespace obs
}  // namespace corrob
