#include "obs/json.h"

#include <gtest/gtest.h>

namespace corrob {
namespace obs {
namespace {

TEST(JsonValueTest, DumpsScalars) {
  EXPECT_EQ(JsonValue::Null().Dump(), "null");
  EXPECT_EQ(JsonValue::Bool(true).Dump(), "true");
  EXPECT_EQ(JsonValue::Bool(false).Dump(), "false");
  EXPECT_EQ(JsonValue::Int(-42).Dump(), "-42");
  EXPECT_EQ(JsonValue::Str("hi").Dump(), "\"hi\"");
}

TEST(JsonValueTest, EscapesStrings) {
  EXPECT_EQ(JsonValue::Str("a\"b\\c\n").Dump(), "\"a\\\"b\\\\c\\n\"");
  // Control characters below 0x20 must be escaped.
  EXPECT_EQ(JsonValue::Str(std::string(1, '\x01')).Dump(), "\"\\u0001\"");
}

TEST(JsonValueTest, ObjectsKeepInsertionOrder) {
  JsonValue object = JsonValue::Object();
  object.Set("zebra", JsonValue::Int(1));
  object.Set("alpha", JsonValue::Int(2));
  EXPECT_EQ(object.Dump(), "{\"zebra\":1,\"alpha\":2}");
  // Set on an existing key overwrites in place, keeping its slot.
  object.Set("zebra", JsonValue::Int(3));
  EXPECT_EQ(object.Dump(), "{\"zebra\":3,\"alpha\":2}");
}

TEST(JsonValueTest, ParseRoundTripsDump) {
  JsonValue original = JsonValue::Object();
  original.Set("name", JsonValue::Str("x"));
  JsonValue array = JsonValue::Array();
  array.Append(JsonValue::Int(1));
  array.Append(JsonValue::Double(0.5));
  array.Append(JsonValue::Null());
  original.Set("items", std::move(array));
  original.Set("flag", JsonValue::Bool(true));

  for (int indent : {-1, 0, 2}) {
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(JsonValue::Parse(original.Dump(indent), &parsed, &error))
        << error;
    EXPECT_EQ(parsed.Dump(), original.Dump()) << "indent=" << indent;
  }
}

TEST(JsonValueTest, DoubleDumpRoundTripsExactly) {
  // The formatter must emit enough digits that parsing returns the
  // same bits — telemetry determinism depends on it.
  for (double value : {0.1, 1.0 / 3.0, 1e-300, 123456.789012345, 2e17}) {
    std::string text = JsonValue::Double(value).Dump();
    JsonValue parsed;
    ASSERT_TRUE(JsonValue::Parse(text, &parsed, nullptr)) << text;
    EXPECT_EQ(parsed.double_value(), value) << text;
  }
}

TEST(JsonValueTest, ParseRejectsMalformedInput) {
  JsonValue out;
  std::string error;
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\" 1}", "nan"}) {
    EXPECT_FALSE(JsonValue::Parse(bad, &out, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonValueTest, FindReturnsNullForMissingKeys) {
  JsonValue object = JsonValue::Object();
  object.Set("present", JsonValue::Int(7));
  ASSERT_NE(object.Find("present"), nullptr);
  EXPECT_EQ(object.Find("present")->int_value(), 7);
  EXPECT_EQ(object.Find("absent"), nullptr);
  EXPECT_EQ(JsonValue::Int(1).Find("anything"), nullptr);
}

}  // namespace
}  // namespace obs
}  // namespace corrob
