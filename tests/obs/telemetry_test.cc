#include "obs/telemetry.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "core/inc_estimate.h"
#include "core/registry.h"
#include "core/two_estimate.h"
#include "obs/trace.h"
#include "synth/synthetic.h"

namespace corrob {
namespace obs {
namespace {

SyntheticDataset MakeCorpus(int32_t facts = 600) {
  SyntheticOptions options;
  options.num_facts = facts;
  options.num_sources = 8;
  options.num_inaccurate = 2;
  options.eta = 0.05;
  options.seed = 20140328;  // the paper's conference date
  return GenerateSynthetic(options).ValueOrDie();
}

TEST(TelemetryTest, TrustDistributionComputesMinMeanMax) {
  double min = -1, mean = -1, max = -1;
  TrustDistribution({0.25, 0.5, 0.75}, &min, &mean, &max);
  EXPECT_DOUBLE_EQ(min, 0.25);
  EXPECT_DOUBLE_EQ(mean, 0.5);
  EXPECT_DOUBLE_EQ(max, 0.75);
  TrustDistribution({}, &min, &mean, &max);
  EXPECT_EQ(min, 0.0);
  EXPECT_EQ(mean, 0.0);
  EXPECT_EQ(max, 0.0);
}

TEST(TelemetryTest, RunWithoutCollectionAttachesNothing) {
  SyntheticDataset corpus = MakeCorpus(100);
  TwoEstimateCorroborator two_estimate;
  CorroborationResult result = two_estimate.Run(corpus.dataset).ValueOrDie();
  EXPECT_EQ(result.telemetry, nullptr);
}

TEST(TelemetryTest, FixpointRunRecordsIterations) {
  SyntheticDataset corpus = MakeCorpus(200);
  TwoEstimateOptions options;
  options.collect_telemetry = true;
  TwoEstimateCorroborator two_estimate(options);
  CorroborationResult result = two_estimate.Run(corpus.dataset).ValueOrDie();
  ASSERT_NE(result.telemetry, nullptr);
  const RunTelemetry& telemetry = *result.telemetry;
  EXPECT_EQ(telemetry.algorithm, "TwoEstimate");
  EXPECT_EQ(telemetry.num_facts, 200);
  EXPECT_EQ(telemetry.num_sources, 8);
  EXPECT_TRUE(telemetry.converged);
  ASSERT_FALSE(telemetry.iteration_stats.empty());
  EXPECT_EQ(static_cast<int32_t>(telemetry.iteration_stats.size()),
            telemetry.iterations);
  for (const IterationStats& stats : telemetry.iteration_stats) {
    EXPECT_LE(stats.trust_min, stats.trust_mean);
    EXPECT_LE(stats.trust_mean, stats.trust_max);
  }
  // The final iteration is the converged one: delta under tolerance.
  EXPECT_LT(telemetry.iteration_stats.back().max_delta,
            options.tolerance);
}

TEST(TelemetryTest, IncEstimateRoundsSatisfyBalancedCommitInvariant) {
  // The paper's balanced selection commits n = min(|FG+|, |FG-|)
  // facts per side. Every recorded balanced round must show exactly
  // that relation, and 2n facts committed in total.
  SyntheticDataset corpus = MakeCorpus();
  IncEstimateOptions options;
  options.collect_telemetry = true;
  IncEstimateCorroborator inc_est(options);
  CorroborationResult result = inc_est.Run(corpus.dataset).ValueOrDie();
  ASSERT_NE(result.telemetry, nullptr);
  const RunTelemetry& telemetry = *result.telemetry;
  ASSERT_FALSE(telemetry.rounds.empty());

  int balanced_rounds = 0;
  int32_t last_round = 0;
  for (const IncRoundEvent& event : telemetry.rounds) {
    EXPECT_GT(event.round, last_round);
    last_round = event.round;
    if (event.kind != "balanced") continue;
    ++balanced_rounds;
    EXPECT_EQ(event.committed_n,
              std::min(event.fg_positive, event.fg_negative))
        << "round " << event.round;
    EXPECT_EQ(event.facts_committed, 2 * event.committed_n)
        << "round " << event.round;
    EXPECT_FALSE(event.positive_signature.empty());
    EXPECT_FALSE(event.negative_signature.empty());
    EXPECT_GE(event.positive_group, 0);
    EXPECT_GE(event.negative_group, 0);
  }
  EXPECT_GT(balanced_rounds, 0);

  // Every fact the corroborator decided shows up in some round.
  int64_t total_committed = 0;
  for (const IncRoundEvent& event : telemetry.rounds) {
    total_committed += event.facts_committed;
  }
  EXPECT_EQ(total_committed, corpus.dataset.num_facts());
}

TEST(TelemetryTest, JsonRoundTripPreservesEverything) {
  SyntheticDataset corpus = MakeCorpus(300);
  IncEstimateOptions options;
  options.collect_telemetry = true;
  IncEstimateCorroborator inc_est(options);
  CorroborationResult result = inc_est.Run(corpus.dataset).ValueOrDie();
  ASSERT_NE(result.telemetry, nullptr);

  std::string json = TelemetryToJsonString(*result.telemetry);
  RunTelemetry parsed;
  std::string error;
  ASSERT_TRUE(TelemetryFromJsonString(json, &parsed, &error)) << error;
  EXPECT_EQ(TelemetryToJsonString(parsed), json);
  EXPECT_EQ(parsed.algorithm, result.telemetry->algorithm);
  EXPECT_EQ(parsed.rounds.size(), result.telemetry->rounds.size());
}

TEST(TelemetryTest, FromJsonRejectsMalformedInput) {
  RunTelemetry out;
  std::string error;
  EXPECT_FALSE(TelemetryFromJsonString("not json", &out, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(TelemetryFromJsonString("{}", &out, &error));
  EXPECT_FALSE(
      TelemetryFromJsonString("{\"schema\":\"bogus/9\"}", &out, &error));
}

TEST(TelemetryTest, TelemetryIsByteIdenticalAcrossRunsAndThreadCounts) {
  // Telemetry must contain no clocks, thread ids, or pointer values:
  // two identical runs — even at different thread counts, even while
  // tracing is live — serialize to the same bytes.
  SyntheticDataset corpus = MakeCorpus();
  auto run = [&](const std::string& name, int threads) {
    CorroboratorOptions shared;
    shared.num_threads = threads;
    shared.collect_telemetry = true;
    auto corroborator = MakeCorroborator(name, shared).ValueOrDie();
    CorroborationResult result = corroborator->Run(corpus.dataset).ValueOrDie();
    return TelemetryToJsonString(*result.telemetry);
  };
  for (const std::string name :
       {"TwoEstimate", "ThreeEstimate", "IncEstHeu", "BayesEstimate"}) {
    const std::string sequential = run(name, 1);
    EXPECT_EQ(run(name, 1), sequential) << name;
    EXPECT_EQ(run(name, 4), sequential) << name;
  }
  // Tracing observes but never perturbs.
  TraceRecorder::Global().Clear();
  TraceRecorder::Global().Start();
  const std::string traced = run("IncEstHeu", 4);
  TraceRecorder::Global().Stop();
  EXPECT_GT(TraceRecorder::Global().event_count(), 0);
  TraceRecorder::Global().Clear();
  EXPECT_EQ(traced, run("IncEstHeu", 1));
}

}  // namespace
}  // namespace obs
}  // namespace corrob
