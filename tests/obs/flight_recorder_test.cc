#include "obs/flight_recorder.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/clock.h"
#include "obs/json.h"

namespace corrob {
namespace obs {
namespace {

RequestStart MakeStart(const std::string& id, const std::string& tenant,
                       int64_t deadline_nanos = 0) {
  RequestStart start;
  start.client_request_id = id;
  start.tenant = tenant;
  start.dataset = "flights";
  start.method = "IncEstHeu";
  start.priority = "batch";
  start.deadline_nanos = deadline_nanos;
  return start;
}

RequestFinish MakeFinish(RequestRole role, const std::string& termination) {
  RequestFinish finish;
  finish.role = role;
  finish.termination = termination;
  return finish;
}

TEST(FlightRecorderTest, BeginEndRoundTripsOneRecord) {
  ManualClock clock;
  FlightRecorder::Options options;
  options.capacity = 8;
  options.clock = &clock;
  FlightRecorder recorder(options);
  ASSERT_TRUE(recorder.armed());

  clock.SetNanos(1'000);
  const uint64_t handle = recorder.Begin(MakeStart("req-1", "alpha", 0));
  ASSERT_NE(handle, 0u);
  EXPECT_EQ(recorder.stats().started, 1);
  EXPECT_EQ(recorder.stats().active, 1);

  clock.SetNanos(6'000);
  RequestFinish finish = MakeFinish(RequestRole::kCold, "converged");
  finish.service_nanos = 4'000;
  finish.response_bytes = 99;
  const FinishSummary summary = recorder.End(handle, finish);
  EXPECT_EQ(summary.total_nanos, 5'000);
  EXPECT_FALSE(summary.slow);
  EXPECT_EQ(recorder.stats().completed, 1);
  EXPECT_EQ(recorder.stats().active, 0);

  const JsonValue snapshot = recorder.SnapshotJson(10, 10);
  const JsonValue* recent = snapshot.Find("recent");
  ASSERT_NE(recent, nullptr);
  ASSERT_EQ(recent->size(), 1u);
  const JsonValue& record = recent->at(0);
  EXPECT_EQ(record.Find("id")->string_value(), "req-1");
  EXPECT_EQ(record.Find("tenant")->string_value(), "alpha");
  EXPECT_EQ(record.Find("role")->string_value(), "cold");
  EXPECT_EQ(record.Find("termination")->string_value(), "converged");
  EXPECT_EQ(record.Find("total_nanos")->int_value(), 5'000);
  EXPECT_EQ(record.Find("response_bytes")->int_value(), 99);
}

TEST(FlightRecorderTest, DisarmedRecorderIsANoOp) {
  ManualClock clock;
  FlightRecorder::Options options;
  options.capacity = 0;
  options.clock = &clock;
  FlightRecorder recorder(options);
  EXPECT_FALSE(recorder.armed());

  const uint64_t handle = recorder.Begin(MakeStart("req-1", "alpha", 0));
  EXPECT_EQ(handle, 0u);
  recorder.AddSpan(handle, "ignored");
  const FinishSummary summary =
      recorder.End(handle, MakeFinish(RequestRole::kCold, "converged"));
  EXPECT_EQ(summary.total_nanos, 0);
  EXPECT_FALSE(summary.slow);

  const FlightRecorderStats stats = recorder.stats();
  EXPECT_EQ(stats.started, 0);
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.active, 0);
  EXPECT_TRUE(recorder.ActiveRequests(0).empty());
  EXPECT_TRUE(recorder.SnapshotJson(10, 10).Find("recent")->items().empty());
}

TEST(FlightRecorderTest, UnknownAndZeroHandlesAreNoOps) {
  ManualClock clock;
  FlightRecorder::Options options;
  options.capacity = 8;
  options.clock = &clock;
  FlightRecorder recorder(options);

  recorder.AddSpan(0, "nothing");
  recorder.AddSpan(12345, "nothing");
  const FinishSummary summary =
      recorder.End(12345, MakeFinish(RequestRole::kCold, "converged"));
  EXPECT_EQ(summary.total_nanos, 0);
  EXPECT_EQ(recorder.stats().completed, 0);
}

TEST(FlightRecorderTest, RingWrapDropsOldestAndCountsDropped) {
  ManualClock clock;
  FlightRecorder::Options options;
  options.capacity = 4;
  options.shards = 1;
  options.clock = &clock;
  FlightRecorder recorder(options);

  for (int i = 0; i < 10; ++i) {
    const uint64_t handle =
        recorder.Begin(MakeStart("req-" + std::to_string(i), "alpha", 0));
    clock.AdvanceNanos(1'000);
    // lint: discard-ok: summary unused
    (void)recorder.End(handle, MakeFinish(RequestRole::kCold, "converged"));
  }

  const FlightRecorderStats stats = recorder.stats();
  EXPECT_EQ(stats.started, 10);
  EXPECT_EQ(stats.completed, 10);
  EXPECT_EQ(stats.dropped, 6);

  // The ring keeps the newest four, in ascending sequence order.
  const JsonValue snapshot = recorder.SnapshotJson(10, 100);
  const JsonValue* recent = snapshot.Find("recent");
  ASSERT_EQ(recent->size(), 4u);
  EXPECT_EQ(recent->at(0).Find("id")->string_value(), "req-6");
  EXPECT_EQ(recent->at(3).Find("id")->string_value(), "req-9");
  // max_recent trims to the NEWEST records.
  const JsonValue trimmed = recorder.SnapshotJson(10, 2);
  ASSERT_EQ(trimmed.Find("recent")->size(), 2u);
  EXPECT_EQ(trimmed.Find("recent")->at(0).Find("id")->string_value(),
            "req-8");
  EXPECT_EQ(trimmed.Find("recent")->at(1).Find("id")->string_value(),
            "req-9");
}

TEST(FlightRecorderTest, SlowRequestsRetainSpansFastOnesDoNot) {
  ManualClock clock;
  FlightRecorder::Options options;
  options.capacity = 8;
  options.slow_threshold_nanos = 5'000;
  options.clock = &clock;
  FlightRecorder recorder(options);

  const uint64_t fast = recorder.Begin(MakeStart("fast", "alpha", 0));
  recorder.AddSpan(fast, "run_start");
  clock.AdvanceNanos(1'000);
  EXPECT_FALSE(
      recorder.End(fast, MakeFinish(RequestRole::kCold, "converged")).slow);

  const uint64_t slow = recorder.Begin(MakeStart("slow", "alpha", 0));
  recorder.AddSpan(slow, "run_start");
  clock.AdvanceNanos(5'000);
  recorder.AddSpan(slow, "run_end");
  EXPECT_TRUE(
      recorder.End(slow, MakeFinish(RequestRole::kCold, "converged")).slow);
  EXPECT_EQ(recorder.stats().slow, 1);

  const JsonValue snapshot = recorder.SnapshotJson(10, 10);
  const JsonValue* recent = snapshot.Find("recent");
  ASSERT_EQ(recent->size(), 2u);
  EXPECT_EQ(recent->at(0).Find("spans"), nullptr);
  const JsonValue* spans = recent->at(1).Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->size(), 2u);
  EXPECT_EQ(spans->at(0).Find("name")->string_value(), "run_start");
  EXPECT_EQ(spans->at(0).Find("at_nanos")->int_value(), 0);
  EXPECT_EQ(spans->at(1).Find("name")->string_value(), "run_end");
  EXPECT_EQ(spans->at(1).Find("at_nanos")->int_value(), 5'000);
}

TEST(FlightRecorderTest, FlagStuckReportsEachRequestOnce) {
  ManualClock clock;
  FlightRecorder::Options options;
  options.capacity = 8;
  options.clock = &clock;
  FlightRecorder recorder(options);

  // deadline 1ms; "stuck" at 4x = 4ms of age.
  const uint64_t stuck = recorder.Begin(MakeStart("stuck", "alpha", 1'000'000));
  const uint64_t unbounded = recorder.Begin(MakeStart("nolimit", "alpha", 0));

  clock.AdvanceNanos(2'000'000);
  EXPECT_TRUE(recorder.FlagStuck(clock.NowNanos(), 4.0).empty());
  EXPECT_EQ(recorder.stuck_now(), 0);

  clock.AdvanceNanos(3'000'000);  // age 5ms > 4ms
  const std::vector<ActiveSnapshot> flagged =
      recorder.FlagStuck(clock.NowNanos(), 4.0);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0].client_request_id, "stuck");
  EXPECT_TRUE(flagged[0].flagged_stuck);
  EXPECT_EQ(recorder.stuck_now(), 1);

  // Already-flagged requests are not re-reported; requests without a
  // deadline are never flagged, however old.
  clock.AdvanceNanos(100'000'000);
  EXPECT_TRUE(recorder.FlagStuck(clock.NowNanos(), 4.0).empty());
  EXPECT_EQ(recorder.stuck_now(), 1);

  // Finishing the stuck request clears it from the active table.
  // lint: discard-ok: summary unused
  (void)recorder.End(stuck, MakeFinish(RequestRole::kCold, "converged"));
  EXPECT_EQ(recorder.stuck_now(), 0);
  // lint: discard-ok: summary unused
  (void)recorder.End(unbounded, MakeFinish(RequestRole::kCold, "converged"));
}

TEST(FlightRecorderTest, TenantsRankedByRequestsThenName) {
  ManualClock clock;
  FlightRecorder::Options options;
  options.capacity = 16;
  options.clock = &clock;
  FlightRecorder recorder(options);

  const auto run_one = [&](const std::string& tenant, int64_t nanos) {
    const uint64_t handle = recorder.Begin(MakeStart("", tenant, 0));
    clock.AdvanceNanos(nanos);
    // lint: discard-ok: summary unused
    (void)recorder.End(handle, MakeFinish(RequestRole::kCold, "converged"));
  };
  run_one("beta", 1'000);
  run_one("beta", 3'000);
  run_one("alpha", 2'000);
  run_one("gamma", 9'000);

  const JsonValue snapshot = recorder.SnapshotJson(2, 10);
  const JsonValue* tenants = snapshot.Find("tenants");
  ASSERT_NE(tenants, nullptr);
  // top_k = 2: beta (2 requests) first, then alpha/gamma tie on
  // requests broken by name — alpha wins.
  ASSERT_EQ(tenants->size(), 2u);
  EXPECT_EQ(tenants->at(0).Find("tenant")->string_value(), "beta");
  EXPECT_EQ(tenants->at(0).Find("requests")->int_value(), 2);
  EXPECT_EQ(tenants->at(0).Find("total_nanos")->int_value(), 4'000);
  EXPECT_EQ(tenants->at(0).Find("max_nanos")->int_value(), 3'000);
  EXPECT_EQ(tenants->at(1).Find("tenant")->string_value(), "alpha");
}

TEST(FlightRecorderTest, LatencyHistogramsSplitColdFromHit) {
  ManualClock clock;
  FlightRecorder::Options options;
  options.capacity = 16;
  options.clock = &clock;
  FlightRecorder recorder(options);

  const auto run_one = [&](RequestRole role, int64_t nanos,
                           const std::string& termination) {
    const uint64_t handle = recorder.Begin(MakeStart("", "alpha", 0));
    clock.AdvanceNanos(nanos);
    // lint: discard-ok: summary unused
    (void)recorder.End(handle, MakeFinish(role, termination));
  };
  run_one(RequestRole::kCold, 1'000, "converged");
  run_one(RequestRole::kLeader, 2'000, "converged");
  run_one(RequestRole::kCacheHit, 100, "cached");
  run_one(RequestRole::kFollower, 200, "coalesced");
  // Rejected requests never enter the latency histograms.
  run_one(RequestRole::kRejected, 50, "shed");

  const JsonValue snapshot = recorder.SnapshotJson(10, 10);
  const JsonValue* latency = snapshot.Find("latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->Find("cold")->Find("count")->int_value(), 2);
  EXPECT_EQ(latency->Find("cold")->Find("sum_nanos")->int_value(), 3'000);
  EXPECT_EQ(latency->Find("hit")->Find("count")->int_value(), 2);
  EXPECT_EQ(latency->Find("hit")->Find("sum_nanos")->int_value(), 300);
}

TEST(FlightRecorderTest, SnapshotIsByteDeterministicAcrossThreadCounts) {
  // The same scripted request set, completed from 1 thread and from 4
  // threads, must dump byte-identical JSON: sequence numbers are
  // global and the snapshot merges shards in ascending order.
  ManualClock clock;
  clock.SetNanos(1'000);
  const auto run_with_threads = [&clock](int num_threads) {
    FlightRecorder::Options options;
    options.capacity = 64;
    options.shards = 8;
    options.clock = &clock;
    FlightRecorder recorder(options);
    std::vector<uint64_t> handles;
    for (int i = 0; i < 32; ++i) {
      handles.push_back(recorder.Begin(
          MakeStart("req-" + std::to_string(i),
                    i % 2 == 0 ? "alpha" : "beta", 0)));
    }
    std::vector<std::thread> workers;
    const int per_thread = 32 / num_threads;
    for (int t = 0; t < num_threads; ++t) {
      workers.emplace_back([&recorder, &handles, t, per_thread] {
        for (int i = t * per_thread; i < (t + 1) * per_thread; ++i) {
          RequestFinish finish;
          finish.role =
              i % 3 == 0 ? RequestRole::kCacheHit : RequestRole::kCold;
          finish.termination = i % 3 == 0 ? "cached" : "converged";
          finish.response_bytes = i;
          (void)recorder.End(handles[static_cast<size_t>(i)], finish);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    return recorder.SnapshotJson(10, 100).Dump();
  };

  const std::string single = run_with_threads(1);
  const std::string pooled = run_with_threads(4);
  EXPECT_EQ(single, pooled);
}

}  // namespace
}  // namespace obs
}  // namespace corrob
