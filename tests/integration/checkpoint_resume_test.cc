// Crash-safety of the streaming corroborator: a stream killed by an
// injected fault mid-run, restored from its last checkpoint, must
// finish with trust scores and verdicts bit-identical to a run that
// was never interrupted.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "core/online.h"
#include "core/online_checkpoint.h"
#include "synth/synthetic.h"

namespace corrob {
namespace {

constexpr char kStepFailpoint[] = "integration.stream.step";
constexpr int64_t kCheckpointEvery = 100;

SyntheticDataset MakeStream() {
  SyntheticOptions options;
  options.num_facts = 1000;
  options.num_sources = 8;
  options.num_inaccurate = 2;
  options.eta = 0.05;
  options.seed = 404;
  return GenerateSynthetic(options).ValueOrDie();
}

OnlineCorroborator MakeCorroborator(const Dataset& dataset) {
  OnlineCorroborator online;
  for (SourceId s = 0; s < dataset.num_sources(); ++s) {
    online.AddSource(dataset.source_name(s));
  }
  return online;
}

/// Streams facts [online.facts_observed(), num_facts), appending each
/// verdict to `verdicts`, checkpointing every kCheckpointEvery facts.
/// Each step crosses the kStepFailpoint fault-injection site — the
/// "kill switch" of this test.
Status StreamWithCheckpoints(const Dataset& dataset,
                             OnlineCorroborator& online,
                             const std::string& checkpoint_path,
                             std::vector<OnlineCorroborator::Verdict>*
                                 verdicts) {
  for (FactId f = static_cast<FactId>(online.facts_observed());
       f < dataset.num_facts(); ++f) {
    CORROB_FAILPOINT(kStepFailpoint);
    auto votes = dataset.VotesOnFact(f);
    CORROB_ASSIGN_OR_RETURN(
        OnlineCorroborator::Verdict verdict,
        online.Observe(std::vector<SourceVote>(votes.begin(), votes.end())));
    verdicts->push_back(verdict);
    if (online.facts_observed() % kCheckpointEvery == 0) {
      CORROB_RETURN_NOT_OK(SaveOnlineSnapshot(checkpoint_path, online));
    }
  }
  return Status::OK();
}

TEST(CheckpointResumeTest, KillAt500AndResumeIsBitIdentical) {
  ScopedFailpointDisarmer disarmer;
  SyntheticDataset data = MakeStream();
  ASSERT_EQ(data.dataset.num_facts(), 1000);
  const std::string checkpoint =
      ::testing::TempDir() + "/corrob_resume_test.snap";

  // Reference: one uninterrupted pass.
  OnlineCorroborator reference = MakeCorroborator(data.dataset);
  std::vector<OnlineCorroborator::Verdict> reference_verdicts;
  {
    std::vector<OnlineCorroborator::Verdict>* verdicts =
        &reference_verdicts;
    for (FactId f = 0; f < data.dataset.num_facts(); ++f) {
      auto votes = data.dataset.VotesOnFact(f);
      verdicts->push_back(
          reference
              .Observe(std::vector<SourceVote>(votes.begin(), votes.end()))
              .ValueOrDie());
    }
  }

  // Interrupted: the armed failpoint kills the stream at fact 500.
  std::vector<OnlineCorroborator::Verdict> verdicts;
  {
    FailpointConfig config;
    config.skip = 500;
    config.message = "simulated crash at fact 500";
    Failpoints::Arm(kStepFailpoint, config);
    OnlineCorroborator doomed = MakeCorroborator(data.dataset);
    Status status =
        StreamWithCheckpoints(data.dataset, doomed, checkpoint, &verdicts);
    Failpoints::DisarmAll();
    ASSERT_EQ(status.code(), StatusCode::kIoError);
    ASSERT_EQ(verdicts.size(), 500u);
    // `doomed` dies here, like the process it stands in for; only the
    // checkpoint file survives.
  }

  // Restore and finish the stream.
  OnlineCorroborator resumed = LoadOnlineSnapshot(checkpoint).ValueOrDie();
  EXPECT_EQ(resumed.facts_observed(), 500);
  ASSERT_TRUE(StreamWithCheckpoints(data.dataset, resumed, checkpoint,
                                    &verdicts)
                  .ok());

  // Verdicts for all 1000 facts match the uninterrupted run exactly.
  ASSERT_EQ(verdicts.size(), reference_verdicts.size());
  for (size_t i = 0; i < verdicts.size(); ++i) {
    EXPECT_EQ(verdicts[i].probability, reference_verdicts[i].probability)
        << "fact " << i;
    EXPECT_EQ(verdicts[i].decision, reference_verdicts[i].decision)
        << "fact " << i;
  }

  // Trust state is bit-identical: exact counters, not just trust
  // within a tolerance.
  OnlineCorroboratorState a = reference.ExportState();
  OnlineCorroboratorState b = resumed.ExportState();
  EXPECT_EQ(a.correct, b.correct);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.facts_observed, b.facts_observed);
  EXPECT_EQ(reference.trust_snapshot(), resumed.trust_snapshot());

  std::remove(checkpoint.c_str());
}

TEST(CheckpointResumeTest, SurvivesRepeatedProbabilisticKills) {
  // A flakier world: the stream dies with probability 0.002 per fact,
  // over and over. Resuming from the interval checkpoint after every
  // death must still converge to the uninterrupted result. Lost tail
  // facts (observed after the last checkpoint, before the crash) are
  // re-observed on resume — re-observation is idempotent because the
  // restored state rewinds to the checkpoint.
  ScopedFailpointDisarmer disarmer;
  SyntheticDataset data = MakeStream();
  const std::string checkpoint =
      ::testing::TempDir() + "/corrob_flaky_resume_test.snap";

  OnlineCorroborator reference = MakeCorroborator(data.dataset);
  for (FactId f = 0; f < data.dataset.num_facts(); ++f) {
    auto votes = data.dataset.VotesOnFact(f);
    ASSERT_TRUE(
        reference
            .Observe(std::vector<SourceVote>(votes.begin(), votes.end()))
            .ok());
  }

  OnlineCorroborator current = MakeCorroborator(data.dataset);
  ASSERT_TRUE(SaveOnlineSnapshot(checkpoint, current).ok());
  FailpointConfig config;
  config.probability = 0.002;
  config.seed = 99;
  int crashes = 0;
  for (int attempt = 0; attempt < 200; ++attempt) {
    Failpoints::Arm(kStepFailpoint, config);
    // Resume from disk — except on the clean first attempt, the
    // in-memory instance is the casualty of the previous crash.
    OnlineCorroborator online =
        LoadOnlineSnapshot(checkpoint).ValueOrDie();
    // Rewind to the checkpoint: re-observed facts and their verdicts
    // are recomputed, so only count the final pass below.
    std::vector<OnlineCorroborator::Verdict> scratch;
    Status status = StreamWithCheckpoints(data.dataset, online, checkpoint,
                                          &scratch);
    Failpoints::DisarmAll();
    if (status.ok()) {
      ASSERT_TRUE(SaveOnlineSnapshot(checkpoint, online).ok());
      break;
    }
    ++crashes;
    // Advance the kill schedule so reruns do not die at the same fact.
    config.seed += 1;
  }
  OnlineCorroborator finished = LoadOnlineSnapshot(checkpoint).ValueOrDie();
  EXPECT_EQ(finished.facts_observed(), data.dataset.num_facts());
  EXPECT_GT(crashes, 0) << "failpoint never fired; weaken the seed";
  EXPECT_EQ(reference.trust_snapshot(), finished.trust_snapshot());
  std::remove(checkpoint.c_str());
}

}  // namespace
}  // namespace corrob
