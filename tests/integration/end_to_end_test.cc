// Cross-module integration tests: the full pipelines the benchmarks
// and examples rely on, at reduced scale so they stay fast.

#include <map>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "core/two_estimate.h"
#include "core/inc_estimate.h"
#include "data/dataset_io.h"
#include "data/dataset_stats.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "eval/significance.h"
#include "synth/hubdub_sim.h"
#include "synth/restaurant_sim.h"
#include "synth/synthetic.h"
#include "text/dedup.h"

namespace corrob {
namespace {

TEST(EndToEndTest, SyntheticPipelineIncEstHeuDominates) {
  // The Figure 3 claim at reduced scale: IncEstHeu beats every
  // baseline by a clear margin on §6.3.1 data.
  SyntheticOptions options;
  options.num_sources = 10;
  options.num_inaccurate = 2;
  options.num_facts = 2000;
  options.eta = 0.03;
  options.seed = 21;
  SyntheticDataset data = GenerateSynthetic(options).ValueOrDie();

  std::map<std::string, double> accuracy;
  for (const std::string& name :
       {std::string("Voting"), std::string("TwoEstimate"),
        std::string("BayesEstimate"), std::string("IncEstPS"),
        std::string("IncEstHeu")}) {
    auto algorithm = MakeCorroborator(name).ValueOrDie();
    CorroborationResult result = algorithm->Run(data.dataset).ValueOrDie();
    accuracy[name] = EvaluateOnTruth(result, data.truth).accuracy;
  }
  EXPECT_GT(accuracy["IncEstHeu"], accuracy["Voting"] + 0.05);
  EXPECT_GT(accuracy["IncEstHeu"], accuracy["TwoEstimate"] + 0.05);
  EXPECT_GT(accuracy["IncEstHeu"], accuracy["BayesEstimate"] + 0.05);
  EXPECT_GT(accuracy["IncEstHeu"], accuracy["IncEstPS"] + 0.05);
}

TEST(EndToEndTest, RestaurantPipelineMatchesTable4Shape) {
  RestaurantSimOptions options;
  options.num_facts = 12000;
  options.golden_true = 340;
  options.golden_false = 261;
  RestaurantCorpus corpus = GenerateRestaurantCorpus(options).ValueOrDie();

  MethodReport voting =
      RunCorroborationMethod("Voting", corpus.dataset, corpus.golden)
          .ValueOrDie();
  MethodReport two =
      RunCorroborationMethod("TwoEstimate", corpus.dataset, corpus.golden)
          .ValueOrDie();
  MethodReport inc =
      RunCorroborationMethod("IncEstHeu", corpus.dataset, corpus.golden)
          .ValueOrDie();

  // Voting/TwoEstimate: recall 1.0, precision near the golden true
  // fraction (Table 4 shape).
  EXPECT_GT(voting.metrics.recall, 0.99);
  EXPECT_GT(two.metrics.recall, 0.99);
  EXPECT_NEAR(voting.metrics.precision, 0.57, 0.06);
  // IncEstHeu: clear accuracy and F1 win over the fixpoint methods.
  EXPECT_GT(inc.metrics.accuracy, two.metrics.accuracy + 0.08);
  EXPECT_GT(inc.metrics.f1, 0.7);
  EXPECT_GT(inc.metrics.precision, two.metrics.precision + 0.1);

  // Statistical significance of the IncEstHeu vs TwoEstimate gap
  // (the paper reports p < 0.001 for this comparison).
  double p = McNemarPValue(inc.golden_correct, two.golden_correct)
                 .ValueOrDie();
  EXPECT_LT(p, 0.001);
}

TEST(EndToEndTest, RestaurantTrustReadoutBeatsTwoEstimateMse) {
  // The Table 5 claim: IncEstHeu's multi-value trust lands far closer
  // to the golden source accuracies than TwoEstimate's all-ones.
  RestaurantSimOptions options;
  options.num_facts = 12000;
  options.golden_true = 340;
  options.golden_false = 261;
  RestaurantCorpus corpus = GenerateRestaurantCorpus(options).ValueOrDie();
  std::vector<double> reference =
      SourceAccuracyOnGolden(corpus.dataset, corpus.golden);

  MethodReport two =
      RunCorroborationMethod("TwoEstimate", corpus.dataset, corpus.golden)
          .ValueOrDie();
  MethodReport inc =
      RunCorroborationMethod("IncEstHeu", corpus.dataset, corpus.golden)
          .ValueOrDie();
  double mse_two = TrustMse(reference, two.source_trust);
  double mse_inc = TrustMse(reference, inc.source_trust);
  EXPECT_LT(mse_inc, mse_two);
  EXPECT_GT(mse_two, 0.03);  // All-ones against accuracies ~0.6-0.95.
}

TEST(EndToEndTest, CrawlDedupCorroborateRoundTrip) {
  // Raw listings -> dedup -> corroboration -> audit against the
  // generator's entity truth.
  RawCrawlOptions options;
  options.num_restaurants = 400;
  options.seed = 9;
  RawCrawl crawl = GenerateRawCrawl(options).ValueOrDie();
  DedupResult dedup = Deduplicate(crawl.listings).ValueOrDie();

  // Dedup must compress the raw listings substantially (the paper:
  // 42,969 raw -> 36,916 entities) without collapsing below the real
  // restaurant count.
  EXPECT_LT(dedup.entities.size(), crawl.listings.size());
  EXPECT_GE(dedup.entities.size(), 350u);
  EXPECT_LE(dedup.entities.size(), crawl.listings.size());

  // Majority of clusters should be pure (one entity hint).
  std::map<std::string, int> hint_count;
  int pure = 0;
  for (const DedupEntity& entity : dedup.entities) {
    hint_count.clear();
    for (size_t member : entity.members) {
      ++hint_count[crawl.listings[member].entity_hint];
    }
    if (hint_count.size() == 1) ++pure;
  }
  EXPECT_GT(static_cast<double>(pure) / dedup.entities.size(), 0.95);

  // Corroborate the deduped matrix end to end.
  auto algorithm = MakeCorroborator("IncEstHeu").ValueOrDie();
  CorroborationResult result = algorithm->Run(dedup.dataset).ValueOrDie();
  EXPECT_EQ(result.fact_probability.size(), dedup.entities.size());
}

TEST(EndToEndTest, HubdubPipelineMatchesTable7Ordering) {
  QuestionDataset qd = GenerateHubdub(HubdubSimOptions{}).ValueOrDie();
  Dataset closed = qd.WithNegativeClosure();

  std::map<std::string, int64_t> errors;
  for (const std::string& name :
       {std::string("Voting"), std::string("Counting"),
        std::string("TwoEstimate"), std::string("ThreeEstimate"),
        std::string("IncEstHeu")}) {
    auto algorithm = MakeCorroborator(name).ValueOrDie();
    CorroborationResult result = algorithm->Run(closed).ValueOrDie();
    errors[name] =
        EvaluateOnTruth(result, qd.truth()).confusion.errors();
  }
  // Table 7 ordering: IncEstHeu best; Counting worst.
  EXPECT_LT(errors["IncEstHeu"], errors["TwoEstimate"]);
  EXPECT_LT(errors["IncEstHeu"], errors["ThreeEstimate"]);
  EXPECT_LT(errors["IncEstHeu"], errors["Voting"]);
  EXPECT_GT(errors["Counting"], errors["Voting"]);
  // Error counts in the paper's ballpark (hundreds, not thousands).
  EXPECT_GT(errors["IncEstHeu"], 100);
  EXPECT_LT(errors["IncEstHeu"], 400);
}

TEST(EndToEndTest, DatasetCsvRoundTripPreservesCorroboration) {
  SyntheticOptions options;
  options.num_sources = 6;
  options.num_inaccurate = 2;
  options.num_facts = 300;
  options.seed = 33;
  SyntheticDataset data = GenerateSynthetic(options).ValueOrDie();

  std::string csv = DatasetToCsv(data.dataset, &data.truth);
  LabeledDataset loaded = ParseDatasetCsv(csv).ValueOrDie();
  ASSERT_TRUE(loaded.truth.has_value());

  auto algorithm = MakeCorroborator("IncEstHeu").ValueOrDie();
  CorroborationResult original = algorithm->Run(data.dataset).ValueOrDie();
  CorroborationResult reloaded = algorithm->Run(loaded.dataset).ValueOrDie();
  EXPECT_EQ(original.Decisions(), reloaded.Decisions());
}

TEST(EndToEndTest, Figure2TrajectoriesDifferBetweenStrategies) {
  RestaurantSimOptions options;
  options.num_facts = 8000;
  options.golden_true = 200;
  options.golden_false = 150;
  RestaurantCorpus corpus = GenerateRestaurantCorpus(options).ValueOrDie();

  IncEstimateOptions heu;
  heu.record_trajectory = true;
  IncEstimateOptions ps = heu;
  ps.strategy = IncSelectStrategy::kProbability;

  CorroborationResult heu_result =
      IncEstimateCorroborator(heu).Run(corpus.dataset).ValueOrDie();
  CorroborationResult ps_result =
      IncEstimateCorroborator(ps).Run(corpus.dataset).ValueOrDie();

  ASSERT_GT(heu_result.trajectory.size(), 3u);
  ASSERT_GT(ps_result.trajectory.size(), 3u);

  // Figure 2(b): IncEstHeu drives some source below 0.5 mid-run.
  bool heu_has_negative_source = false;
  for (const TrajectoryPoint& point : heu_result.trajectory) {
    for (double t : point.trust) {
      if (t < 0.5) heu_has_negative_source = true;
    }
  }
  EXPECT_TRUE(heu_has_negative_source);

  // Figure 2(a): IncEstPS keeps every source's trust high until the
  // very tail of the run (first 80% of time points).
  size_t ps_early = ps_result.trajectory.size() * 8 / 10;
  bool ps_stays_high = true;
  for (size_t i = 0; i < ps_early; ++i) {
    for (double t : ps_result.trajectory[i].trust) {
      if (t < 0.5) ps_stays_high = false;
    }
  }
  EXPECT_TRUE(ps_stays_high);
}

}  // namespace
}  // namespace corrob
