// Robustness: hostile and degenerate inputs must produce Status
// errors or well-formed results — never crashes or hangs.

#include <string>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/random.h"
#include "core/registry.h"
#include "data/dataset_io.h"

namespace corrob {
namespace {

TEST(RobustnessTest, CsvParserSurvivesRandomBytes) {
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    std::string noise;
    size_t length = rng.NextBelow(200);
    for (size_t i = 0; i < length; ++i) {
      noise += static_cast<char>(rng.NextBelow(256));
    }
    // Must terminate and either parse or return ParseError.
    auto result = ParseCsv(noise);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError);
    }
  }
}

TEST(RobustnessTest, DatasetCsvParserSurvivesStructuredNoise) {
  Rng rng(2025);
  const std::string cells = "TF-?x,\"\n";
  for (int trial = 0; trial < 300; ++trial) {
    std::string text = "fact,s1,s2\n";
    size_t rows = rng.NextBelow(6);
    for (size_t r = 0; r < rows; ++r) {
      size_t length = rng.NextBelow(12);
      for (size_t i = 0; i < length; ++i) {
        text += cells[rng.NextBelow(cells.size())];
      }
      text += '\n';
    }
    auto result = ParseDatasetCsv(text);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError);
    }
  }
}

TEST(RobustnessTest, AlgorithmsHandlePathologicalShapes) {
  // Single source, single fact, each vote kind; a fact-free dataset
  // with sources; a source-free dataset with facts.
  std::vector<Dataset> shapes;
  for (Vote vote : {Vote::kTrue, Vote::kFalse}) {
    DatasetBuilder builder;
    SourceId s = builder.AddSource("s");
    FactId f = builder.AddFact("f");
    ASSERT_TRUE(builder.SetVote(s, f, vote).ok());
    shapes.push_back(builder.Build());
  }
  {
    DatasetBuilder builder;
    builder.AddSource("s1");
    builder.AddSource("s2");
    shapes.push_back(builder.Build());
  }
  {
    DatasetBuilder builder;
    builder.AddFact("f1");
    builder.AddFact("f2");
    shapes.push_back(builder.Build());
  }

  std::vector<std::string> names = CorroboratorNames();
  for (const std::string& extra : ExtendedCorroboratorNames()) {
    names.push_back(extra);
  }
  for (const Dataset& dataset : shapes) {
    for (const std::string& name : names) {
      auto algorithm = MakeCorroborator(name).ValueOrDie();
      auto result = algorithm->Run(dataset);
      ASSERT_TRUE(result.ok()) << name;
      EXPECT_EQ(result.ValueOrDie().fact_probability.size(),
                static_cast<size_t>(dataset.num_facts()))
          << name;
    }
  }
}

TEST(RobustnessTest, LargeCorpusSmoke) {
  // 100k facts through the linear-time paths: build, group, decide.
  DatasetBuilder builder;
  for (int s = 0; s < 12; ++s) builder.AddSource("s" + std::to_string(s));
  Rng rng(77);
  for (int f = 0; f < 100000; ++f) {
    FactId id = builder.AddFact("f" + std::to_string(f));
    int votes = 1 + static_cast<int>(rng.NextBelow(3));
    for (int v = 0; v < votes; ++v) {
      SourceId s = static_cast<SourceId>(rng.NextBelow(12));
      ASSERT_TRUE(builder
                      .SetVote(s, id,
                               rng.Bernoulli(0.97) ? Vote::kTrue
                                                   : Vote::kFalse)
                      .ok());
    }
  }
  Dataset dataset = builder.Build();
  EXPECT_EQ(dataset.num_facts(), 100000);

  for (const std::string& name :
       {std::string("Voting"), std::string("TwoEstimate"),
        std::string("IncEstPS")}) {
    auto algorithm = MakeCorroborator(name).ValueOrDie();
    auto result = algorithm->Run(dataset);
    ASSERT_TRUE(result.ok()) << name;
  }
}

}  // namespace
}  // namespace corrob
