// Exhaustive micro-harness: every algorithm is run on EVERY possible
// vote matrix of a tiny universe (each of S×F cells ∈ {T, F, -}),
// asserting the output contract — no crash, correctly sized and
// bounded probabilities and trust, determinism. 3^(2·2) = 81 and
// 3^(3·2) = 729 matrices cover an enormous space of edge shapes
// (empty facts, empty sources, all-F, single votes, full conflict).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"

namespace corrob {
namespace {

Dataset MakeDataset(int num_sources, int num_facts, int encoding) {
  DatasetBuilder builder;
  for (int s = 0; s < num_sources; ++s) {
    builder.AddSource("s" + std::to_string(s));
  }
  for (int f = 0; f < num_facts; ++f) {
    builder.AddFact("f" + std::to_string(f));
  }
  int code = encoding;
  for (int s = 0; s < num_sources; ++s) {
    for (int f = 0; f < num_facts; ++f) {
      int cell = code % 3;
      code /= 3;
      if (cell == 1) {
        EXPECT_TRUE(builder.SetVote(s, f, Vote::kTrue).ok());
      } else if (cell == 2) {
        EXPECT_TRUE(builder.SetVote(s, f, Vote::kFalse).ok());
      }
    }
  }
  return builder.Build();
}

int Pow3(int n) {
  int value = 1;
  for (int i = 0; i < n; ++i) value *= 3;
  return value;
}

class ExhaustiveSmallTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ExhaustiveSmallTest, TwoByTwoUniverse) {
  const std::string& name = GetParam();
  auto algorithm = MakeCorroborator(name).ValueOrDie();
  for (int encoding = 0; encoding < Pow3(4); ++encoding) {
    Dataset d = MakeDataset(2, 2, encoding);
    auto result = algorithm->Run(d);
    ASSERT_TRUE(result.ok()) << name << " encoding " << encoding;
    const CorroborationResult& r = result.ValueOrDie();
    ASSERT_EQ(r.fact_probability.size(), 2u) << name << " " << encoding;
    ASSERT_EQ(r.source_trust.size(), 2u) << name << " " << encoding;
    for (double p : r.fact_probability) {
      ASSERT_GE(p, 0.0) << name << " encoding " << encoding;
      ASSERT_LE(p, 1.0) << name << " encoding " << encoding;
    }
    for (double t : r.source_trust) {
      ASSERT_GE(t, 0.0) << name << " encoding " << encoding;
      ASSERT_LE(t, 1.0) << name << " encoding " << encoding;
    }
  }
}

TEST_P(ExhaustiveSmallTest, ThreeByTwoUniverseIsDeterministic) {
  const std::string& name = GetParam();
  auto algorithm = MakeCorroborator(name).ValueOrDie();
  // Stride through the 729 matrices; run each twice and require
  // bitwise-identical outputs.
  for (int encoding = 0; encoding < Pow3(6); encoding += 7) {
    Dataset d = MakeDataset(3, 2, encoding);
    auto first = algorithm->Run(d);
    auto second = algorithm->Run(d);
    ASSERT_TRUE(first.ok() && second.ok()) << name << " " << encoding;
    ASSERT_EQ(first.ValueOrDie().fact_probability,
              second.ValueOrDie().fact_probability)
        << name << " encoding " << encoding;
    ASSERT_EQ(first.ValueOrDie().source_trust,
              second.ValueOrDie().source_trust)
        << name << " encoding " << encoding;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, ExhaustiveSmallTest,
    ::testing::Values("Voting", "Counting", "TwoEstimate", "ThreeEstimate",
                      "BayesEstimate", "Cosine", "TruthFinder", "AvgLog",
                      "Invest", "PooledInvest", "IncEstPS", "IncEstHeu"));

}  // namespace
}  // namespace corrob
