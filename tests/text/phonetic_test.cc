#include "text/phonetic.h"

#include <gtest/gtest.h>

namespace corrob {
namespace {

TEST(SoundexTest, ClassicReferenceCodes) {
  // The canonical examples from the Soundex specification.
  EXPECT_EQ(Soundex("Robert"), "R163");
  EXPECT_EQ(Soundex("Rupert"), "R163");
  EXPECT_EQ(Soundex("Ashcraft"), "A261");  // H is transparent.
  EXPECT_EQ(Soundex("Ashcroft"), "A261");
  EXPECT_EQ(Soundex("Tymczak"), "T522");
  EXPECT_EQ(Soundex("Pfister"), "P236");
  EXPECT_EQ(Soundex("Honeyman"), "H555");
}

TEST(SoundexTest, CaseInsensitive) {
  EXPECT_EQ(Soundex("ROBERT"), Soundex("robert"));
}

TEST(SoundexTest, ShortWordsArePadded) {
  EXPECT_EQ(Soundex("A"), "A000");
  EXPECT_EQ(Soundex("Lee"), "L000");
}

TEST(SoundexTest, NonLettersIgnored) {
  EXPECT_EQ(Soundex("O'Brien"), Soundex("OBrien"));
  EXPECT_EQ(Soundex("123"), "");
  EXPECT_EQ(Soundex(""), "");
}

TEST(SoundexTest, DoubleLettersCollapse) {
  EXPECT_EQ(Soundex("Gutierrez"), "G362");
  EXPECT_EQ(Soundex("Jackson"), "J250");
}

TEST(PhoneticNamesTest, MisspelledNamesMatch) {
  EXPECT_TRUE(PhoneticallySimilarNames("Grand Sea Palace",
                                       "Grand See Pallace"));
  EXPECT_TRUE(PhoneticallySimilarNames("Smith Diner", "Smyth Diner"));
}

TEST(PhoneticNamesTest, DifferentNamesDoNotMatch) {
  EXPECT_FALSE(PhoneticallySimilarNames("Golden Dragon", "Silver Tiger"));
  EXPECT_FALSE(
      PhoneticallySimilarNames("Grand Sea Palace", "Grand Sea"));
}

TEST(PhoneticNamesTest, TokenOrderIrrelevant) {
  EXPECT_TRUE(PhoneticallySimilarNames("Palace Grand", "Grand Palace"));
}

TEST(PhoneticNamesTest, EmptyInputs) {
  EXPECT_TRUE(PhoneticallySimilarNames("", ""));
  EXPECT_FALSE(PhoneticallySimilarNames("a", ""));
}

}  // namespace
}  // namespace corrob
