#include "text/dedup.h"

#include <gtest/gtest.h>

namespace corrob {
namespace {

RawListing Listing(const std::string& source, const std::string& name,
                   const std::string& address, bool closed = false) {
  RawListing listing;
  listing.source = source;
  listing.name = name;
  listing.address = address;
  listing.closed = closed;
  return listing;
}

TEST(DedupTest, EmptyInput) {
  DedupResult result = Deduplicate({}).ValueOrDie();
  EXPECT_TRUE(result.entities.empty());
  EXPECT_EQ(result.dataset.num_facts(), 0);
}

TEST(DedupTest, MergesFormattingVariantsAtSameAddress) {
  std::vector<RawListing> listings = {
      Listing("Yelp", "Danny's Grand Sea Palace", "346 West 46th St"),
      Listing("Citysearch", "Dannys Grand Sea Palace",
              "346 W 46th Street"),
  };
  DedupResult result = Deduplicate(listings).ValueOrDie();
  ASSERT_EQ(result.entities.size(), 1u);
  EXPECT_EQ(result.entity_of[0], result.entity_of[1]);
  EXPECT_EQ(result.dataset.num_facts(), 1);
  EXPECT_EQ(result.dataset.num_sources(), 2);
  EXPECT_EQ(result.dataset.CountVotes(0, Vote::kTrue), 2);
}

TEST(DedupTest, DifferentRestaurantsSameAddressStayDistinct) {
  // A food court: two unrelated names at one address.
  std::vector<RawListing> listings = {
      Listing("Yelp", "Golden Dragon Noodle House", "12 Main St"),
      Listing("Yelp", "Stella's Pizzeria", "12 Main St"),
  };
  DedupResult result = Deduplicate(listings).ValueOrDie();
  EXPECT_EQ(result.entities.size(), 2u);
  EXPECT_NE(result.entity_of[0], result.entity_of[1]);
}

TEST(DedupTest, DifferentAddressesNeverCompared) {
  std::vector<RawListing> listings = {
      Listing("Yelp", "M Bar", "12 W 44th St"),
      Listing("Yelp", "M Bar", "99 W 44th St"),
  };
  DedupResult result = Deduplicate(listings).ValueOrDie();
  EXPECT_EQ(result.entities.size(), 2u);
}

TEST(DedupTest, ClosedMarkerBecomesFalseVote) {
  std::vector<RawListing> listings = {
      Listing("Yelp", "M Bar", "12 W 44th St", /*closed=*/true),
      Listing("Citysearch", "M Bar", "12 W 44th St"),
  };
  DedupResult result = Deduplicate(listings).ValueOrDie();
  ASSERT_EQ(result.entities.size(), 1u);
  SourceId yelp = result.dataset.FindSource("Yelp").ValueOrDie();
  SourceId cs = result.dataset.FindSource("Citysearch").ValueOrDie();
  EXPECT_EQ(result.dataset.GetVote(yelp, 0), Vote::kFalse);
  EXPECT_EQ(result.dataset.GetVote(cs, 0), Vote::kTrue);
}

TEST(DedupTest, ClosedBeatsOpenWithinOneSource) {
  // The same source carries a stale open copy and a CLOSED marker.
  std::vector<RawListing> listings = {
      Listing("Yelp", "M Bar", "12 W 44th St"),
      Listing("Yelp", "M Bar", "12 W 44 Street", /*closed=*/true),
  };
  DedupResult result = Deduplicate(listings).ValueOrDie();
  ASSERT_EQ(result.entities.size(), 1u);
  EXPECT_EQ(result.dataset.GetVote(0, 0), Vote::kFalse);
  EXPECT_EQ(result.dataset.num_votes(), 1);
}

TEST(DedupTest, CanonicalNameIsMostFrequent) {
  std::vector<RawListing> listings = {
      Listing("A", "M Bar", "12 W 44th St"),
      Listing("B", "M Bar", "12 W 44th St"),
      Listing("C", "m bar", "12 W 44th St"),
  };
  DedupResult result = Deduplicate(listings).ValueOrDie();
  ASSERT_EQ(result.entities.size(), 1u);
  EXPECT_EQ(result.entities[0].canonical_name, "M Bar");
  EXPECT_EQ(result.entities[0].members.size(), 3u);
}

TEST(DedupTest, TransitiveMergeAcrossBorderlineVariants) {
  // a~b and b~c above threshold merges all three even if a~c alone
  // falls below it.
  std::vector<RawListing> listings = {
      Listing("A", "Golden Dragon Palace Restaurant", "1 Oak St"),
      Listing("B", "Golden Dragon Palace", "1 Oak St"),
      Listing("C", "Golden Dragon", "1 Oak St"),
  };
  DedupOptions options;
  options.similarity_threshold = 0.75;
  DedupResult result = Deduplicate(listings, options).ValueOrDie();
  EXPECT_EQ(result.entities.size(), 1u);
}

TEST(DedupTest, ThresholdIsRespected) {
  std::vector<RawListing> listings = {
      Listing("A", "Alpha Beta", "1 Oak St"),
      Listing("B", "Alpha Beta", "1 Oak St"),
  };
  DedupOptions strict;
  strict.similarity_threshold = 1.0;
  DedupResult result = Deduplicate(listings, strict).ValueOrDie();
  EXPECT_EQ(result.entities.size(), 1u);  // Identical text still merges.

  DedupOptions invalid;
  invalid.similarity_threshold = 1.5;
  EXPECT_EQ(Deduplicate(listings, invalid).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DedupTest, PhoneticFallbackMergesMisspellings) {
  std::vector<RawListing> listings = {
      Listing("A", "Grandiose Pallace Buffet", "1 Oak St"),
      Listing("B", "Grandiese Palace Buffett", "1 Oak St"),
  };
  // Heavy misspellings: below the cosine threshold...
  DedupOptions strict;
  strict.similarity_threshold = 0.95;
  EXPECT_EQ(Deduplicate(listings, strict).ValueOrDie().entities.size(), 2u);
  // ...but phonetically identical.
  DedupOptions phonetic = strict;
  phonetic.use_phonetic_fallback = true;
  EXPECT_EQ(Deduplicate(listings, phonetic).ValueOrDie().entities.size(),
            1u);
}

TEST(DedupTest, EntityIndicesAreDenseAndConsistent) {
  std::vector<RawListing> listings = {
      Listing("A", "One", "1 Oak St"),
      Listing("B", "Two", "2 Oak St"),
      Listing("C", "One!", "1 Oak Street"),
  };
  DedupResult result = Deduplicate(listings).ValueOrDie();
  ASSERT_EQ(result.entity_of.size(), 3u);
  for (size_t i = 0; i < result.entity_of.size(); ++i) {
    ASSERT_LT(result.entity_of[i], result.entities.size());
  }
  // Every entity lists exactly its members.
  size_t total_members = 0;
  for (size_t e = 0; e < result.entities.size(); ++e) {
    for (size_t member : result.entities[e].members) {
      EXPECT_EQ(result.entity_of[member], e);
    }
    total_members += result.entities[e].members.size();
  }
  EXPECT_EQ(total_members, listings.size());
}

}  // namespace
}  // namespace corrob
