#include "text/address.h"

#include <string>

#include <gtest/gtest.h>

namespace corrob {
namespace {

TEST(AddressTest, LowercasesAndStripsPunctuation) {
  EXPECT_EQ(NormalizeAddress("346 WEST 46th St."), "346 w 46 st");
}

TEST(AddressTest, AbbreviatesSuffixAndDirection) {
  EXPECT_EQ(NormalizeAddress("346 West 46th Street"), "346 w 46 st");
  EXPECT_EQ(NormalizeAddress("346 W 46 St"), "346 w 46 st");
}

TEST(AddressTest, EquivalentFormsNormalizeIdentically) {
  const char* forms[] = {
      "346 West 46th Street, New York",
      "346 W 46th St, New York",
      "346 west 46 street new york",
      "346 W. 46th St., New York",
  };
  std::string canonical = NormalizeAddress(forms[0]);
  for (const char* form : forms) {
    EXPECT_EQ(NormalizeAddress(form), canonical) << form;
  }
}

TEST(AddressTest, StreetSuffixTable) {
  EXPECT_EQ(NormalizeAddress("1 Foo Avenue"), "1 foo ave");
  EXPECT_EQ(NormalizeAddress("1 Foo Av"), "1 foo ave");
  EXPECT_EQ(NormalizeAddress("1 Foo Boulevard"), "1 foo blvd");
  EXPECT_EQ(NormalizeAddress("1 Foo Road"), "1 foo rd");
  EXPECT_EQ(NormalizeAddress("1 Foo Drive"), "1 foo dr");
  EXPECT_EQ(NormalizeAddress("1 Foo Place"), "1 foo pl");
  EXPECT_EQ(NormalizeAddress("1 Foo Lane"), "1 foo ln");
  EXPECT_EQ(NormalizeAddress("1 Foo Court"), "1 foo ct");
  EXPECT_EQ(NormalizeAddress("1 Foo Square"), "1 foo sq");
  EXPECT_EQ(NormalizeAddress("1 Foo Parkway"), "1 foo pkwy");
  EXPECT_EQ(NormalizeAddress("1 Foo Highway"), "1 foo hwy");
  EXPECT_EQ(NormalizeAddress("1 Foo Terrace"), "1 foo ter");
}

TEST(AddressTest, Directionals) {
  EXPECT_EQ(NormalizeAddress("10 North Main St"), "10 n main st");
  EXPECT_EQ(NormalizeAddress("10 SOUTHEAST Main St"), "10 se main st");
}

TEST(AddressTest, OrdinalsStripped) {
  EXPECT_EQ(NormalizeAddress("1st Ave"), "1 ave");
  EXPECT_EQ(NormalizeAddress("2nd Ave"), "2 ave");
  EXPECT_EQ(NormalizeAddress("3rd Ave"), "3 ave");
  EXPECT_EQ(NormalizeAddress("44th Ave"), "44 ave");
  // Non-ordinal suffixes survive.
  EXPECT_EQ(NormalizeAddress("44b Ave"), "44b ave");
}

TEST(AddressTest, NumberWords) {
  EXPECT_EQ(NormalizeAddress("700 Fifth Avenue"), "700 5 ave");
  EXPECT_EQ(NormalizeAddress("700 5th Avenue"), "700 5 ave");
}

TEST(AddressTest, UnitDesignatorsDropped) {
  EXPECT_EQ(NormalizeAddress("12 Main St Suite 400"), "12 main st");
  EXPECT_EQ(NormalizeAddress("12 Main St Apt 4B"), "12 main st");
  EXPECT_EQ(NormalizeAddress("12 Main St Floor 2"), "12 main st");
  EXPECT_EQ(NormalizeAddress("12 Main St, Unit 9"), "12 main st");
}

TEST(AddressTest, HashBecomesPlainToken) {
  // '#' is punctuation; the unit number survives unless introduced by
  // a designator word.
  EXPECT_EQ(NormalizeAddress("12 Main St #4"), "12 main st 4");
}

TEST(AddressTest, DistinctAddressesStayDistinct) {
  EXPECT_NE(NormalizeAddress("12 Main St"), NormalizeAddress("14 Main St"));
  EXPECT_NE(NormalizeAddress("12 Main St"), NormalizeAddress("12 Oak St"));
  EXPECT_NE(NormalizeAddress("12 Main St"), NormalizeAddress("12 Main Ave"));
}

TEST(AddressTest, EmptyAndWhitespace) {
  EXPECT_EQ(NormalizeAddress(""), "");
  EXPECT_EQ(NormalizeAddress("   ,,,  "), "");
}

TEST(AddressTest, Idempotent) {
  const char* samples[] = {"346 West 46th Street, New York",
                           "12 Main St Suite 400", "700 Fifth Avenue"};
  for (const char* s : samples) {
    std::string once = NormalizeAddress(s);
    EXPECT_EQ(NormalizeAddress(once), once) << s;
  }
}

}  // namespace
}  // namespace corrob
