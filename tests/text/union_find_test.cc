#include "text/union_find.h"

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace corrob {
namespace {

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_EQ(uf.num_elements(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SetSize(i), 1u);
  }
  EXPECT_FALSE(uf.Connected(0, 1));
}

TEST(UnionFindTest, UnionMerges) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.SetSize(0), 2u);
  EXPECT_FALSE(uf.Union(1, 0));  // Already merged.
  EXPECT_EQ(uf.num_sets(), 3u);
}

TEST(UnionFindTest, TransitiveConnectivity) {
  UnionFind uf(5);
  uf.Union(0, 1);
  uf.Union(1, 2);
  uf.Union(3, 4);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(2, 3));
  EXPECT_EQ(uf.SetSize(2), 3u);
  EXPECT_EQ(uf.SetSize(3), 2u);
  EXPECT_EQ(uf.num_sets(), 2u);
}

TEST(UnionFindTest, MatchesNaiveImplementationOnRandomOps) {
  // Property: behaves exactly like a brute-force partition refinement.
  Rng rng(99);
  constexpr size_t kN = 60;
  UnionFind uf(kN);
  std::vector<size_t> naive(kN);  // naive[i] = set label
  for (size_t i = 0; i < kN; ++i) naive[i] = i;

  for (int op = 0; op < 300; ++op) {
    size_t a = rng.NextBelow(kN);
    size_t b = rng.NextBelow(kN);
    if (rng.Bernoulli(0.5)) {
      uf.Union(a, b);
      size_t from = naive[b], to = naive[a];
      for (size_t i = 0; i < kN; ++i) {
        if (naive[i] == from) naive[i] = to;
      }
    } else {
      EXPECT_EQ(uf.Connected(a, b), naive[a] == naive[b])
          << "op " << op << " a=" << a << " b=" << b;
    }
  }
  // Final partition sizes agree.
  std::map<size_t, size_t> naive_sizes;
  for (size_t i = 0; i < kN; ++i) ++naive_sizes[naive[i]];
  std::set<size_t> labels;
  for (size_t i = 0; i < kN; ++i) {
    labels.insert(uf.Find(i));
    EXPECT_EQ(uf.SetSize(i), naive_sizes[naive[i]]);
  }
  EXPECT_EQ(labels.size(), naive_sizes.size());
  EXPECT_EQ(uf.num_sets(), naive_sizes.size());
}

}  // namespace
}  // namespace corrob
