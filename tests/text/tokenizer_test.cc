#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace corrob {
namespace {

TEST(WordTokensTest, LowercasesAndSplitsOnPunctuation) {
  EXPECT_EQ(WordTokens("Danny's Grand Sea-Palace!"),
            (std::vector<std::string>{"danny", "s", "grand", "sea",
                                      "palace"}));
}

TEST(WordTokensTest, KeepsDigits) {
  EXPECT_EQ(WordTokens("346 West 46th St"),
            (std::vector<std::string>{"346", "west", "46th", "st"}));
}

TEST(WordTokensTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(WordTokens("").empty());
  EXPECT_TRUE(WordTokens("... !!! ---").empty());
}

TEST(CharNgramsTest, PadsWithSpaces) {
  // "ab" canonicalizes to " ab ": 3-grams " ab", "ab ".
  EXPECT_EQ(CharNgrams("ab", 3), (std::vector<std::string>{" ab", "ab "}));
}

TEST(CharNgramsTest, CollapsesSeparators) {
  // "a--b" and "a b" share identical gram sets.
  EXPECT_EQ(CharNgrams("a--b", 3), CharNgrams("a b", 3));
}

TEST(CharNgramsTest, CaseInsensitive) {
  EXPECT_EQ(CharNgrams("AbC", 3), CharNgrams("abc", 3));
}

TEST(CharNgramsTest, ShortInputYieldsEmpty) {
  EXPECT_TRUE(CharNgrams("", 3).empty());
  // "a" -> " a " has length 3: exactly one 3-gram.
  EXPECT_EQ(CharNgrams("a", 3), (std::vector<std::string>{" a "}));
}

TEST(CharNgramsTest, UnigramsCoverEveryCharacter) {
  auto grams = CharNgrams("ab", 1);
  EXPECT_EQ(grams, (std::vector<std::string>{" ", "a", "b", " "}));
}

TEST(CharNgramsDeathTest, NonPositiveNAborts) {
  EXPECT_DEATH({ CharNgrams("abc", 0); }, "positive");
}

}  // namespace
}  // namespace corrob
