#include "text/similarity.h"

#include <cmath>

#include <gtest/gtest.h>

#include "text/tokenizer.h"

namespace corrob {
namespace {

TEST(TermVectorTest, CosineOfIdenticalVectorsIsOne) {
  TermVector v = TermVector::FromFeatures({"a", "b", "a"});
  EXPECT_NEAR(v.Cosine(v), 1.0, 1e-12);
}

TEST(TermVectorTest, CosineOfDisjointVectorsIsZero) {
  TermVector a = TermVector::FromFeatures({"a", "b"});
  TermVector b = TermVector::FromFeatures({"c", "d"});
  EXPECT_DOUBLE_EQ(a.Cosine(b), 0.0);
}

TEST(TermVectorTest, EmptyVectorYieldsZero) {
  TermVector empty;
  TermVector a = TermVector::FromFeatures({"a"});
  EXPECT_DOUBLE_EQ(empty.Cosine(a), 0.0);
  EXPECT_DOUBLE_EQ(a.Cosine(empty), 0.0);
  EXPECT_DOUBLE_EQ(empty.Cosine(empty), 0.0);
}

TEST(TermVectorTest, KnownCosine) {
  // {a:1, b:1} vs {a:1, c:1}: dot 1, norms sqrt(2) -> 0.5.
  TermVector a = TermVector::FromFeatures({"a", "b"});
  TermVector b = TermVector::FromFeatures({"a", "c"});
  EXPECT_NEAR(a.Cosine(b), 0.5, 1e-12);
}

TEST(TermVectorTest, CountsMatter) {
  // {a:2} vs {a:1, b:1}: dot 2, norms 2 and sqrt(2) -> 1/sqrt(2).
  TermVector a = TermVector::FromFeatures({"a", "a"});
  TermVector b = TermVector::FromFeatures({"a", "b"});
  EXPECT_NEAR(a.Cosine(b), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(TermCosineTest, SymmetricAndBounded) {
  const char* samples[] = {"Danny's Grand Sea Palace",
                           "dannys grand sea palace", "M Bar",
                           "Completely Different Name"};
  for (const char* a : samples) {
    for (const char* b : samples) {
      double ab = TermCosine(a, b);
      double ba = TermCosine(b, a);
      EXPECT_NEAR(ab, ba, 1e-12);
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0 + 1e-12);
    }
  }
}

TEST(TermCosineTest, ApostropheVariantsStayClose) {
  // Token sets {danny,s,grand} vs {dannys,grand} differ, so the
  // term-level score is below 1; the trigram level closes the gap.
  EXPECT_GT(TrigramCosine("Danny's Grand", "dannys grand"), 0.8);
}

TEST(TrigramCosineTest, TypoTolerance) {
  double sim = TrigramCosine("Grand Sea Palace", "Grand Sea Palaec");
  EXPECT_GT(sim, 0.7);
  EXPECT_LT(sim, 1.0);
}

TEST(ListingSimilarityTest, TakesTheBetterLevel) {
  double term = TermCosine("Danny's Grand", "dannys grand");
  double gram = TrigramCosine("Danny's Grand", "dannys grand");
  EXPECT_DOUBLE_EQ(ListingSimilarity("Danny's Grand", "dannys grand"),
                   std::max(term, gram));
}

TEST(ListingSimilarityTest, IdenticalIsOne) {
  EXPECT_NEAR(ListingSimilarity("M Bar 12 W 44 St", "M Bar 12 W 44 St"), 1.0,
              1e-12);
}

}  // namespace
}  // namespace corrob
