#include "eval/report_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "core/inc_estimate.h"
#include "data/motivating_example.h"

namespace corrob {
namespace {

CorroborationResult RunWithTrajectory(const Dataset& dataset) {
  IncEstimateOptions options;
  options.record_trajectory = true;
  return IncEstimateCorroborator(options).Run(dataset).ValueOrDie();
}

TEST(ReportIoTest, TrajectoryCsvShape) {
  MotivatingExample example = MakeMotivatingExample();
  CorroborationResult result = RunWithTrajectory(example.dataset);
  std::string csv =
      TrajectoryToCsv(example.dataset, result).ValueOrDie();
  CsvDocument doc = ParseCsv(csv).ValueOrDie();
  ASSERT_EQ(doc.rows.size(), result.trajectory.size() + 1);
  EXPECT_EQ(doc.rows[0][0], "t");
  EXPECT_EQ(doc.rows[0][1], "facts_committed");
  EXPECT_EQ(doc.rows[0][2], "s1");
  ASSERT_EQ(doc.rows[1].size(), 7u);  // t, committed, 5 sources
  EXPECT_EQ(doc.rows[1][0], "0");
  EXPECT_EQ(doc.rows[1][1], "0");          // t0 commits nothing
  EXPECT_EQ(doc.rows[1][2], "0.900000");   // initial trust
}

TEST(ReportIoTest, TrajectoryRequiresRecording) {
  MotivatingExample example = MakeMotivatingExample();
  CorroborationResult result =
      IncEstimateCorroborator().Run(example.dataset).ValueOrDie();
  auto csv = TrajectoryToCsv(example.dataset, result);
  ASSERT_FALSE(csv.ok());
  EXPECT_EQ(csv.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ReportIoTest, SaveTrajectoryRoundTrips) {
  MotivatingExample example = MakeMotivatingExample();
  CorroborationResult result = RunWithTrajectory(example.dataset);
  std::string path = ::testing::TempDir() + "/corrob_trajectory.csv";
  ASSERT_TRUE(SaveTrajectoryCsv(path, example.dataset, result).ok());
  CsvDocument doc = ReadCsvFile(path).ValueOrDie();
  EXPECT_EQ(doc.rows.size(), result.trajectory.size() + 1);
  std::remove(path.c_str());
}

TEST(ReportIoTest, DecisionsCsv) {
  MotivatingExample example = MakeMotivatingExample();
  CorroborationResult result = RunWithTrajectory(example.dataset);
  CsvDocument doc = ParseCsv(DecisionsToCsv(example.dataset, result))
                        .ValueOrDie();
  ASSERT_EQ(doc.rows.size(), 13u);
  EXPECT_EQ(doc.rows[0],
            (std::vector<std::string>{"fact", "probability", "decision"}));
  EXPECT_EQ(doc.rows[12][0], "r12");
  EXPECT_EQ(doc.rows[12][2], "false");
}

}  // namespace
}  // namespace corrob
