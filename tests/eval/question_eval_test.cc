#include "eval/question_eval.h"

#include <gtest/gtest.h>

#include "core/registry.h"
#include "eval/metrics.h"
#include "synth/hubdub_sim.h"

namespace corrob {
namespace {

QuestionDataset TwoQuestions() {
  QuestionDatasetBuilder builder;
  QuestionId q0 = builder.AddQuestion("q0");
  builder.AddAnswer(q0, "a", true);    // fact 0
  builder.AddAnswer(q0, "b", false);   // fact 1
  QuestionId q1 = builder.AddQuestion("q1");
  builder.AddAnswer(q1, "c", false);   // fact 2
  builder.AddAnswer(q1, "d", true);    // fact 3
  SourceId u = builder.AddSource("u");
  EXPECT_TRUE(builder.SetVote(u, 0, Vote::kTrue).ok());
  return builder.Build().ValueOrDie();
}

TEST(QuestionEvalTest, HandComputedReport) {
  QuestionDataset qd = TwoQuestions();
  CorroborationResult result;
  // q0: a=0.9 (right winner, decided true: correct answer),
  //     b=0.6 (decided true but false: FP).
  // q1: c=0.7 (winner but wrong: FP), d=0.3 (decided false: FN).
  result.fact_probability = {0.9, 0.6, 0.7, 0.3};
  QuestionEvalReport report =
      EvaluateQuestions(result, qd).ValueOrDie();
  EXPECT_EQ(report.false_positives, 2);
  EXPECT_EQ(report.false_negatives, 1);
  EXPECT_EQ(report.answer_errors, 3);
  EXPECT_NEAR(report.answer_accuracy, 0.25, 1e-12);
  EXPECT_EQ(report.questions_total, 2);
  EXPECT_EQ(report.questions_correct, 1);
  EXPECT_NEAR(report.question_accuracy, 0.5, 1e-12);
  EXPECT_EQ(report.winners, (std::vector<FactId>{0, 2}));
}

TEST(QuestionEvalTest, SizeMismatchRejected) {
  QuestionDataset qd = TwoQuestions();
  CorroborationResult result;
  result.fact_probability = {0.9};
  EXPECT_EQ(EvaluateQuestions(result, qd).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QuestionEvalTest, MatchesConfusionOnHubdub) {
  QuestionDataset qd = GenerateHubdub(HubdubSimOptions{}).ValueOrDie();
  Dataset closed = qd.WithNegativeClosure();
  auto algorithm = MakeCorroborator("IncEstHeu").ValueOrDie();
  CorroborationResult result = algorithm->Run(closed).ValueOrDie();
  QuestionEvalReport report =
      EvaluateQuestions(result, qd).ValueOrDie();
  // Cross-check against the generic confusion counting.
  BinaryMetrics metrics = EvaluateOnTruth(result, qd.truth());
  EXPECT_EQ(report.answer_errors, metrics.confusion.errors());
  EXPECT_EQ(report.false_positives, metrics.confusion.false_positives);
  EXPECT_NEAR(report.answer_accuracy, metrics.accuracy, 1e-12);
  // Winner-based question accuracy should beat threshold accuracy on
  // this structure (one winner per question is a stronger prior).
  EXPECT_GT(report.question_accuracy, 0.5);
}

}  // namespace
}  // namespace corrob
