#include "eval/significance.h"

#include <gtest/gtest.h>

namespace corrob {
namespace {

TEST(McNemarTest, IdenticalMethodsGivePOne) {
  std::vector<bool> a{true, false, true, true};
  EXPECT_DOUBLE_EQ(McNemarPValue(a, a).ValueOrDie(), 1.0);
}

TEST(McNemarTest, OneSidedDominanceIsSignificant) {
  // Method A correct on 30 items where B is wrong; no discordant
  // pairs in the other direction: p = 2 * 0.5^30 (tiny).
  std::vector<bool> a(50, true);
  std::vector<bool> b(50, true);
  for (int i = 0; i < 30; ++i) b[i] = false;
  double p = McNemarPValue(a, b).ValueOrDie();
  EXPECT_LT(p, 1e-6);
}

TEST(McNemarTest, BalancedDisagreementNotSignificant) {
  // 10 discordant pairs split 5/5.
  std::vector<bool> a(20, true);
  std::vector<bool> b(20, true);
  for (int i = 0; i < 5; ++i) b[i] = false;      // a-only correct
  for (int i = 5; i < 10; ++i) a[i] = false;     // b-only correct
  double p = McNemarPValue(a, b).ValueOrDie();
  EXPECT_GT(p, 0.5);
  EXPECT_LE(p, 1.0);
}

TEST(McNemarTest, HandComputedSmallCase) {
  // Discordant 3-1: p = 2*(C(4,0)+C(4,1))*0.5^4 = 2*5/16 = 0.625.
  std::vector<bool> a{true, true, true, false, true};
  std::vector<bool> b{false, false, false, true, true};
  double p = McNemarPValue(a, b).ValueOrDie();
  EXPECT_NEAR(p, 0.625, 1e-12);
}

TEST(McNemarTest, Validation) {
  EXPECT_FALSE(McNemarPValue({true}, {true, false}).ok());
  EXPECT_FALSE(McNemarPValue({}, {}).ok());
}

TEST(PermutationTest, IdenticalMethodsGivePNearOne) {
  std::vector<bool> a{true, false, true, false};
  double p = PairedPermutationPValue(a, a).ValueOrDie();
  EXPECT_GT(p, 0.99);
}

TEST(PermutationTest, StrongDominanceIsSignificant) {
  std::vector<bool> a(60, true);
  std::vector<bool> b(60, true);
  for (int i = 0; i < 25; ++i) b[i] = false;
  double p = PairedPermutationPValue(a, b).ValueOrDie();
  EXPECT_LT(p, 0.01);
}

TEST(PermutationTest, DeterministicForFixedSeed) {
  std::vector<bool> a(30, true);
  std::vector<bool> b(30, false);
  for (int i = 0; i < 10; ++i) b[i] = true;
  double p1 = PairedPermutationPValue(a, b, 2000, 7).ValueOrDie();
  double p2 = PairedPermutationPValue(a, b, 2000, 7).ValueOrDie();
  EXPECT_DOUBLE_EQ(p1, p2);
}

TEST(PermutationTest, Validation) {
  EXPECT_FALSE(PairedPermutationPValue({true}, {true, false}).ok());
  EXPECT_FALSE(PairedPermutationPValue({}, {}).ok());
  EXPECT_FALSE(PairedPermutationPValue({true}, {true}, 0).ok());
}

}  // namespace
}  // namespace corrob
