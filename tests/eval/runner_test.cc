#include "eval/runner.h"

#include <gtest/gtest.h>

#include "data/motivating_example.h"

namespace corrob {
namespace {

GoldenSet FullGolden(const MotivatingExample& example) {
  return GoldenSet::FromFullTruth(example.truth);
}

TEST(RunnerTest, TwoEstimateReportMatchesTable2) {
  MotivatingExample example = MakeMotivatingExample();
  MethodReport report =
      RunCorroborationMethod("TwoEstimate", example.dataset,
                             FullGolden(example))
          .ValueOrDie();
  EXPECT_EQ(report.name, "TwoEstimate");
  EXPECT_NEAR(report.metrics.precision, 7.0 / 11.0, 1e-12);
  EXPECT_NEAR(report.metrics.recall, 1.0, 1e-12);
  EXPECT_NEAR(report.metrics.accuracy, 8.0 / 12.0, 1e-12);
  EXPECT_GE(report.seconds, 0.0);
  ASSERT_EQ(report.golden_correct.size(), 12u);
  // Wrong exactly on the four false restaurants decided true:
  // r4, r5, r6, r10 (ids 3, 4, 5, 9).
  for (size_t i = 0; i < 12; ++i) {
    bool expect_correct = !(i == 3 || i == 4 || i == 5 || i == 9);
    EXPECT_EQ(report.golden_correct[i], expect_correct) << "r" << (i + 1);
  }
}

TEST(RunnerTest, UnknownMethodIsNotFound) {
  MotivatingExample example = MakeMotivatingExample();
  EXPECT_EQ(RunCorroborationMethod("Oracle", example.dataset,
                                   FullGolden(example))
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      RunMlMethod("ML-Tree", example.dataset, FullGolden(example))
          .status()
          .code(),
      StatusCode::kNotFound);
}

TEST(RunnerTest, MlMethodsRunOnExample) {
  MotivatingExample example = MakeMotivatingExample();
  CrossValidationOptions options;
  options.folds = 3;  // 12 rows cannot feed 10 folds per class.
  for (const std::string& name : {std::string("ML-Logistic"),
                                  std::string("ML-SVM")}) {
    MethodReport report =
        RunMlMethod(name, example.dataset, FullGolden(example), options)
            .ValueOrDie();
    EXPECT_EQ(report.name, name);
    EXPECT_EQ(report.golden_correct.size(), 12u);
    EXPECT_EQ(report.source_trust.size(), 5u);
    EXPECT_GT(report.metrics.accuracy, 0.4);
  }
}

TEST(RunnerTest, MlSourceTrustAgainstPerfectPredictions) {
  MotivatingExample example = MakeMotivatingExample();
  GoldenSet golden = FullGolden(example);
  std::vector<bool> perfect(golden.size());
  for (size_t i = 0; i < golden.size(); ++i) perfect[i] = golden.label(i);
  std::vector<double> trust =
      MlSourceTrust(example.dataset, golden, perfect);
  // Against truth-perfect predictions the readout equals the actual
  // source accuracies.
  EXPECT_NEAR(trust[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(trust[3], 0.5, 1e-12);
}

}  // namespace
}  // namespace corrob
