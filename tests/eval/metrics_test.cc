#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace corrob {
namespace {

TEST(ConfusionTest, CountsAllQuadrants) {
  std::vector<bool> predicted{true, true, false, false, true};
  std::vector<bool> actual{true, false, true, false, true};
  ConfusionCounts c = CountConfusion(predicted, actual);
  EXPECT_EQ(c.true_positives, 2);
  EXPECT_EQ(c.false_positives, 1);
  EXPECT_EQ(c.false_negatives, 1);
  EXPECT_EQ(c.true_negatives, 1);
  EXPECT_EQ(c.total(), 5);
  EXPECT_EQ(c.errors(), 2);
}

TEST(MetricsTest, HandComputedValues) {
  ConfusionCounts c;
  c.true_positives = 7;
  c.false_positives = 2;
  c.false_negatives = 0;
  c.true_negatives = 3;
  BinaryMetrics m = MetricsFromConfusion(c);
  EXPECT_NEAR(m.precision, 7.0 / 9.0, 1e-12);
  EXPECT_NEAR(m.recall, 1.0, 1e-12);
  EXPECT_NEAR(m.accuracy, 10.0 / 12.0, 1e-12);
  EXPECT_NEAR(m.f1, 2.0 * (7.0 / 9.0) / (7.0 / 9.0 + 1.0), 1e-12);
}

TEST(MetricsTest, DegenerateDenominators) {
  ConfusionCounts none;
  BinaryMetrics m = MetricsFromConfusion(none);
  EXPECT_EQ(m.precision, 0.0);
  EXPECT_EQ(m.recall, 0.0);
  EXPECT_EQ(m.accuracy, 0.0);
  EXPECT_EQ(m.f1, 0.0);

  ConfusionCounts all_negative;
  all_negative.true_negatives = 5;
  m = MetricsFromConfusion(all_negative);
  EXPECT_EQ(m.precision, 0.0);  // No positive predictions.
  EXPECT_EQ(m.accuracy, 1.0);
}

TEST(MetricsTest, EvaluateOnGoldenUsesGoldenSubset) {
  CorroborationResult result;
  result.fact_probability = {0.9, 0.2, 0.7, 0.1};
  GoldenSet golden;
  golden.Add(0, true);   // predicted true  -> TP
  golden.Add(3, false);  // predicted false -> TN
  BinaryMetrics m = EvaluateOnGolden(result, golden);
  EXPECT_EQ(m.confusion.total(), 2);
  EXPECT_EQ(m.accuracy, 1.0);
}

TEST(MetricsTest, EvaluateOnTruthCoversAllFacts) {
  CorroborationResult result;
  result.fact_probability = {0.9, 0.2};
  GroundTruth truth(std::vector<bool>{false, false});
  BinaryMetrics m = EvaluateOnTruth(result, truth);
  EXPECT_EQ(m.confusion.false_positives, 1);
  EXPECT_EQ(m.confusion.true_negatives, 1);
}

TEST(MetricsTest, EvaluatePredictionsOnGolden) {
  GoldenSet golden;
  golden.Add(4, true);
  golden.Add(9, false);
  BinaryMetrics m = EvaluatePredictionsOnGolden({true, true}, golden);
  EXPECT_EQ(m.confusion.true_positives, 1);
  EXPECT_EQ(m.confusion.false_positives, 1);
}

TEST(MetricsTest, TrustMse) {
  EXPECT_DOUBLE_EQ(TrustMse({1.0, 0.0}, {0.5, 0.5}), 0.25);
}

TEST(MetricsDeathTest, SizeMismatchAborts) {
  EXPECT_DEATH({ CountConfusion({true}, {true, false}); }, "size mismatch");
  GoldenSet golden;
  golden.Add(0, true);
  EXPECT_DEATH({ EvaluatePredictionsOnGolden({true, false}, golden); },
               "must match golden size");
}

}  // namespace
}  // namespace corrob
