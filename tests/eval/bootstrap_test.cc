#include "eval/bootstrap.h"

#include <gtest/gtest.h>

namespace corrob {
namespace {

TEST(BootstrapTest, PointEstimateIsTheSampleAccuracy) {
  std::vector<bool> correct(100, false);
  for (int i = 0; i < 70; ++i) correct[static_cast<size_t>(i)] = true;
  BootstrapInterval interval =
      BootstrapAccuracy(correct).ValueOrDie();
  EXPECT_NEAR(interval.point, 0.7, 1e-12);
  EXPECT_LE(interval.lower, interval.point);
  EXPECT_GE(interval.upper, interval.point);
  // A 95% CI for p=0.7 at n=100 is roughly ±0.09.
  EXPECT_NEAR(interval.upper - interval.lower, 0.18, 0.08);
}

TEST(BootstrapTest, DegenerateSampleHasZeroWidth) {
  std::vector<bool> all_correct(50, true);
  BootstrapInterval interval =
      BootstrapAccuracy(all_correct).ValueOrDie();
  EXPECT_DOUBLE_EQ(interval.point, 1.0);
  EXPECT_DOUBLE_EQ(interval.lower, 1.0);
  EXPECT_DOUBLE_EQ(interval.upper, 1.0);
}

TEST(BootstrapTest, WiderConfidenceWidensInterval) {
  std::vector<bool> correct(200, false);
  for (int i = 0; i < 120; ++i) correct[static_cast<size_t>(i)] = true;
  double width90 = 0.0, width99 = 0.0;
  {
    BootstrapInterval interval =
        BootstrapAccuracy(correct, 0.90).ValueOrDie();
    width90 = interval.upper - interval.lower;
  }
  {
    BootstrapInterval interval =
        BootstrapAccuracy(correct, 0.99).ValueOrDie();
    width99 = interval.upper - interval.lower;
  }
  EXPECT_GT(width99, width90);
}

TEST(BootstrapTest, DeterministicForFixedSeed) {
  std::vector<bool> correct(80, false);
  for (int i = 0; i < 30; ++i) correct[static_cast<size_t>(i)] = true;
  BootstrapInterval a = BootstrapAccuracy(correct, 0.95, 500, 9).ValueOrDie();
  BootstrapInterval b = BootstrapAccuracy(correct, 0.95, 500, 9).ValueOrDie();
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(BootstrapTest, PairedDifferenceDetectsClearGap) {
  // A is correct on 90%, B on 60%, overlapping errors.
  std::vector<bool> a(300, true), b(300, true);
  for (int i = 0; i < 30; ++i) a[static_cast<size_t>(i)] = false;
  for (int i = 0; i < 120; ++i) b[static_cast<size_t>(i)] = false;
  BootstrapInterval interval =
      BootstrapPairedDifference(a, b).ValueOrDie();
  EXPECT_NEAR(interval.point, 0.3, 1e-12);
  EXPECT_GT(interval.lower, 0.0);  // Significant at 95%.
}

TEST(BootstrapTest, PairedDifferenceOfEqualMethodsStraddlesZero) {
  std::vector<bool> a(100, true);
  for (int i = 0; i < 50; ++i) a[static_cast<size_t>(i)] = false;
  std::vector<bool> b(a.rbegin(), a.rend());  // Same accuracy.
  BootstrapInterval interval =
      BootstrapPairedDifference(a, b).ValueOrDie();
  EXPECT_LE(interval.lower, 0.0);
  EXPECT_GE(interval.upper, 0.0);
}

TEST(BootstrapTest, Validation) {
  EXPECT_FALSE(BootstrapAccuracy({}).ok());
  EXPECT_FALSE(BootstrapAccuracy({true}, 1.5).ok());
  EXPECT_FALSE(BootstrapAccuracy({true}, 0.95, 10).ok());
  EXPECT_FALSE(BootstrapPairedDifference({true}, {true, false}).ok());
}

}  // namespace
}  // namespace corrob
