#include "eval/calibration.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace corrob {
namespace {

TEST(CalibrationTest, PerfectlyCalibratedPredictor) {
  // σ = 0.25 on facts that are true 25% of the time, etc.
  Rng rng(3);
  std::vector<double> probability;
  std::vector<bool> truth;
  for (double p : {0.05, 0.25, 0.55, 0.85}) {
    for (int i = 0; i < 4000; ++i) {
      probability.push_back(p);
      truth.push_back(rng.Bernoulli(p));
    }
  }
  CalibrationReport report =
      ComputeCalibration(probability, truth, 10).ValueOrDie();
  EXPECT_LT(report.expected_calibration_error, 0.03);
  EXPECT_EQ(report.total, 16000);
}

TEST(CalibrationTest, OverconfidentPredictorScoresBadly) {
  // Always predicts 1.0 on a half-true population.
  std::vector<double> probability(1000, 1.0);
  std::vector<bool> truth(1000, false);
  for (int i = 0; i < 500; ++i) truth[static_cast<size_t>(i)] = true;
  CalibrationReport report =
      ComputeCalibration(probability, truth, 10).ValueOrDie();
  EXPECT_NEAR(report.expected_calibration_error, 0.5, 1e-9);
  EXPECT_NEAR(report.brier_score, 0.5, 1e-9);
}

TEST(CalibrationTest, BrierScoreHandValues) {
  // (0.8 on true) and (0.3 on false): ((0.2)^2 + (0.3)^2)/2 = 0.065.
  CalibrationReport report =
      ComputeCalibration({0.8, 0.3}, {true, false}, 5).ValueOrDie();
  EXPECT_NEAR(report.brier_score, 0.065, 1e-12);
}

TEST(CalibrationTest, BinBoundaries) {
  CalibrationReport report =
      ComputeCalibration({0.0, 0.09, 0.95, 1.0}, {false, false, true, true},
                         10)
          .ValueOrDie();
  EXPECT_EQ(report.bins[0].count, 2);   // 0.0 and 0.09
  EXPECT_EQ(report.bins[9].count, 2);   // 0.95 and 1.0 (closed top bin)
  int64_t total = 0;
  for (const CalibrationBin& bin : report.bins) total += bin.count;
  EXPECT_EQ(total, 4);
}

TEST(CalibrationTest, EmptyInput) {
  CalibrationReport report = ComputeCalibration({}, {}, 10).ValueOrDie();
  EXPECT_EQ(report.total, 0);
  EXPECT_EQ(report.expected_calibration_error, 0.0);
  EXPECT_EQ(report.brier_score, 0.0);
}

TEST(CalibrationTest, Validation) {
  EXPECT_FALSE(ComputeCalibration({0.5}, {true, false}, 10).ok());
  EXPECT_FALSE(ComputeCalibration({0.5}, {true}, 0).ok());
  EXPECT_FALSE(ComputeCalibration({1.5}, {true}, 10).ok());
}

TEST(CalibrationTest, OnGoldenSelectsTheRightFacts) {
  CorroborationResult result;
  result.fact_probability = {0.9, 0.1, 0.6, 0.4};
  GoldenSet golden;
  golden.Add(0, true);
  golden.Add(1, false);
  CalibrationReport report =
      CalibrationOnGolden(result, golden, 10).ValueOrDie();
  EXPECT_EQ(report.total, 2);
  // Brier: ((0.9-1)^2 + (0.1-0)^2)/2 = 0.01.
  EXPECT_NEAR(report.brier_score, 0.01, 1e-12);
}

}  // namespace
}  // namespace corrob
