#include "data/motivating_example.h"

#include <gtest/gtest.h>

#include "data/dataset_stats.h"

namespace corrob {
namespace {

TEST(MotivatingExampleTest, ShapeMatchesTable1) {
  MotivatingExample example = MakeMotivatingExample();
  EXPECT_EQ(example.dataset.num_sources(), 5);
  EXPECT_EQ(example.dataset.num_facts(), 12);
  EXPECT_EQ(example.truth.num_facts(), 12);
}

TEST(MotivatingExampleTest, SpotCheckVotes) {
  MotivatingExample example = MakeMotivatingExample();
  const Dataset& d = example.dataset;
  // r1: - T - T -
  EXPECT_EQ(d.GetVote(0, 0), Vote::kNone);
  EXPECT_EQ(d.GetVote(1, 0), Vote::kTrue);
  EXPECT_EQ(d.GetVote(3, 0), Vote::kTrue);
  // r6: - - F T -
  EXPECT_EQ(d.GetVote(2, 5), Vote::kFalse);
  EXPECT_EQ(d.GetVote(3, 5), Vote::kTrue);
  // r12: - F F T -
  EXPECT_EQ(d.GetVote(1, 11), Vote::kFalse);
  EXPECT_EQ(d.GetVote(2, 11), Vote::kFalse);
  EXPECT_EQ(d.GetVote(3, 11), Vote::kTrue);
  EXPECT_EQ(d.GetVote(4, 11), Vote::kNone);
}

TEST(MotivatingExampleTest, GroundTruthMatchesTable1) {
  MotivatingExample example = MakeMotivatingExample();
  std::vector<bool> expected{true, true,  true,  false, false, false,
                             true, true,  true,  false, true,  false};
  EXPECT_EQ(example.truth.labels(), expected);
}

TEST(MotivatingExampleTest, MostFactsAreAffirmativeOnly) {
  // Paper §2: every restaurant except r6 and r12 receives T votes only.
  MotivatingExample example = MakeMotivatingExample();
  int affirmative = 0;
  for (FactId f = 0; f < 12; ++f) {
    if (example.dataset.IsAffirmativeOnly(f)) ++affirmative;
  }
  EXPECT_EQ(affirmative, 10);
  EXPECT_FALSE(example.dataset.IsAffirmativeOnly(5));   // r6
  EXPECT_FALSE(example.dataset.IsAffirmativeOnly(11));  // r12
}

TEST(MotivatingExampleTest, SourceAccuraciesAgainstFullTruth) {
  // Vote-level accuracy of each source against Table 1's truth
  // column: s1 2/3, s2 5/5, s3 5/5, s4 5/10, s5 6/8. (The prose in
  // §2 quotes {1, 0.8, 1, 0.5, 0.625}, which does not follow from
  // Table 1 under any vote-counting we could reconstruct; 0.5 for s4
  // is the one value both versions agree on.)
  MotivatingExample example = MakeMotivatingExample();
  GoldenSet golden = GoldenSet::FromFullTruth(example.truth);
  std::vector<double> accuracy =
      SourceAccuracyOnGolden(example.dataset, golden);
  ASSERT_EQ(accuracy.size(), 5u);
  EXPECT_NEAR(accuracy[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(accuracy[1], 1.0, 1e-12);
  EXPECT_NEAR(accuracy[2], 1.0, 1e-12);
  EXPECT_NEAR(accuracy[3], 0.5, 1e-12);
  EXPECT_NEAR(accuracy[4], 0.75, 1e-12);
}

}  // namespace
}  // namespace corrob
