#include "data/golden_io.h"

#include <gtest/gtest.h>

#include "data/motivating_example.h"

namespace corrob {
namespace {

TEST(GoldenIoTest, RoundTrip) {
  MotivatingExample example = MakeMotivatingExample();
  GoldenSet golden;
  golden.Add(0, true);
  golden.Add(11, false);
  std::string csv = GoldenToCsv(golden, example.dataset);
  GoldenSet loaded = ParseGoldenCsv(csv, example.dataset).ValueOrDie();
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.fact(0), 0);
  EXPECT_TRUE(loaded.label(0));
  EXPECT_EQ(loaded.fact(1), 11);
  EXPECT_FALSE(loaded.label(1));
}

TEST(GoldenIoTest, AcceptsNumericLabels) {
  MotivatingExample example = MakeMotivatingExample();
  GoldenSet loaded =
      ParseGoldenCsv("fact,label\nr1,1\nr2,0\n", example.dataset)
          .ValueOrDie();
  EXPECT_TRUE(loaded.label(0));
  EXPECT_FALSE(loaded.label(1));
}

TEST(GoldenIoTest, RejectsMalformedInputs) {
  MotivatingExample example = MakeMotivatingExample();
  EXPECT_EQ(ParseGoldenCsv("", example.dataset).status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(
      ParseGoldenCsv("name,verdict\nr1,true\n", example.dataset)
          .status()
          .code(),
      StatusCode::kParseError);
  EXPECT_EQ(ParseGoldenCsv("fact,label\nr1,maybe\n", example.dataset)
                .status()
                .code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseGoldenCsv("fact,label\nr1,true\nr1,false\n",
                           example.dataset)
                .status()
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(ParseGoldenCsv("fact,label\nunknown_fact,true\n",
                           example.dataset)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(GoldenIoTest, MissingFileIsNotFound) {
  MotivatingExample example = MakeMotivatingExample();
  auto result = LoadGoldenCsv("/nope/missing_golden.csv", example.dataset);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("/nope/missing_golden.csv"),
            std::string::npos);
}

TEST(GoldenIoTest, FileRoundTrip) {
  MotivatingExample example = MakeMotivatingExample();
  GoldenSet golden = GoldenSet::FromFullTruth(example.truth);
  std::string path = ::testing::TempDir() + "/corrob_golden_io.csv";
  ASSERT_TRUE(SaveGoldenCsv(path, golden, example.dataset).ok());
  GoldenSet loaded = LoadGoldenCsv(path, example.dataset).ValueOrDie();
  EXPECT_EQ(loaded.size(), 12u);
  EXPECT_EQ(loaded.CountTrue(), 7);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace corrob
