#include "data/wal.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/failpoint.h"

// WAL framing and recovery: round trips across reopen, segment
// rotation, compaction, and — the contract crash-safety rests on —
// byte-granular torn-tail truncation. A partial final record after
// kill -9 must recover with a single WARNING; the same damage
// anywhere else must be a hard error.

namespace corrob {
namespace {

/// Removes `dir` and every regular file directly inside it, so each
/// test starts from a WAL directory that does not exist. TempDir()
/// persists across runs; without this, a previous run's segments
/// would leak into this one's recovery.
void RemoveWalDir(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return;
  std::vector<std::string> names;
  for (struct dirent* entry = ::readdir(handle); entry != nullptr;
       entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(handle);
  for (const std::string& name : names) {
    ::unlink((dir + "/" + name).c_str());
  }
  ::rmdir(dir.c_str());
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "/wal_" + info->name();
    RemoveWalDir(dir_);
  }

  void TearDown() override {
    Failpoints::DisarmAll();
    RemoveWalDir(dir_);
  }

  /// Options tuned for tests: no fsync (speed), tiny segments where a
  /// test wants rotation.
  static WalOptions FastOptions() {
    WalOptions options;
    options.fsync_policy = WalFsyncPolicy::kNever;
    return options;
  }

  static std::vector<WalRecord> SampleRecords() {
    return {
        MakeAddSource("alice"),
        MakeAddVote("alice", "sky-is-blue", Vote::kTrue),
        MakeAddVote("bob", "sky-is-blue", Vote::kFalse),
        MakeRetractVote("alice", "sky-is-blue"),
        MakeAddVote("alice", "grass-is-green", Vote::kTrue),
    };
  }

  std::string SegmentPath(int64_t index) const {
    return dir_ + "/" + wal_internal::SegmentFileName(index);
  }

  std::string dir_;
};

TEST_F(WalTest, AppendThenReopenRecoversEveryRecord) {
  const std::vector<WalRecord> records = SampleRecords();
  {
    Result<WalWriter> writer = WalWriter::Open(dir_, FastOptions());
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const WalRecord& record : records) {
      ASSERT_TRUE(writer.ValueOrDie().Append(record).ok());
    }
    EXPECT_EQ(writer.ValueOrDie().records_appended(), 5);
  }
  WalRecovery recovery;
  Result<WalWriter> reopened = WalWriter::Open(dir_, FastOptions(), &recovery);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(recovery.records, records);
  EXPECT_FALSE(recovery.tail_truncated);
  EXPECT_FALSE(recovery.has_snapshot);
  EXPECT_EQ(recovery.segments_scanned, 1);
  // Mutations() passes vote deltas through untouched (no markers yet).
  EXPECT_EQ(recovery.Mutations(), records);
}

TEST_F(WalTest, InspectMatchesOpenAndDoesNotRepair) {
  {
    Result<WalWriter> writer = WalWriter::Open(dir_, FastOptions());
    ASSERT_TRUE(writer.ok());
    for (const WalRecord& record : SampleRecords()) {
      ASSERT_TRUE(writer.ValueOrDie().Append(record).ok());
    }
  }
  // Tear the tail: drop the last 3 bytes of the final record.
  Result<std::string> contents = ReadFileToString(SegmentPath(0));
  ASSERT_TRUE(contents.ok());
  const std::string& intact = contents.ValueOrDie();
  ASSERT_TRUE(WriteStringToFile(SegmentPath(0),
                                std::string_view(intact).substr(
                                    0, intact.size() - 3))
                  .ok());

  // Inspect reports the tear but leaves the bytes alone.
  for (int pass = 0; pass < 2; ++pass) {
    Result<WalRecovery> inspected = InspectWal(dir_);
    ASSERT_TRUE(inspected.ok()) << inspected.status().ToString();
    EXPECT_TRUE(inspected.ValueOrDie().tail_truncated);
    EXPECT_EQ(inspected.ValueOrDie().records.size(), 4u);
    struct stat info;
    ASSERT_EQ(::stat(SegmentPath(0).c_str(), &info), 0);
    EXPECT_EQ(static_cast<size_t>(info.st_size), intact.size() - 3);
  }

  // Open physically truncates to the last record boundary.
  WalRecovery recovery;
  Result<WalWriter> reopened = WalWriter::Open(dir_, FastOptions(), &recovery);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(recovery.tail_truncated);
  struct stat info;
  ASSERT_EQ(::stat(SegmentPath(0).c_str(), &info), 0);
  EXPECT_LT(static_cast<size_t>(info.st_size), intact.size() - 3);
  // A third open sees a clean log: the tear is gone.
  reopened = WalWriter::Open(dir_, FastOptions(), &recovery);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE(recovery.tail_truncated);
}

TEST_F(WalTest, InspectMissingDirectoryIsNotFound) {
  Result<WalRecovery> inspected = InspectWal(dir_ + "/nonexistent");
  EXPECT_EQ(inspected.status().code(), StatusCode::kNotFound);
}

TEST_F(WalTest, TornTailTruncatedAtEveryCutPosition) {
  // Build one intact segment and capture its bytes, then replay
  // recovery from every possible truncation point. Each cut must
  // recover exactly the records that fit whole before it — never an
  // error, never a partial record.
  const std::vector<WalRecord> records = SampleRecords();
  {
    Result<WalWriter> writer = WalWriter::Open(dir_, FastOptions());
    ASSERT_TRUE(writer.ok());
    for (const WalRecord& record : records) {
      ASSERT_TRUE(writer.ValueOrDie().Append(record).ok());
    }
  }
  Result<std::string> full = ReadFileToString(SegmentPath(0));
  ASSERT_TRUE(full.ok());
  const std::string intact = full.ValueOrDie();

  // Record boundaries, derived from the same encoder the writer used.
  std::vector<size_t> boundaries;
  size_t offset = wal_internal::SegmentHeader().size();
  boundaries.push_back(offset);
  for (const WalRecord& record : records) {
    offset += wal_internal::EncodeRecord(record).size();
    boundaries.push_back(offset);
  }
  ASSERT_EQ(offset, intact.size());

  for (size_t cut = 0; cut <= intact.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    RemoveWalDir(dir_);
    Result<WalWriter> writer = WalWriter::Open(dir_, FastOptions());
    ASSERT_TRUE(writer.ok());
    writer = Status::FailedPrecondition("closed");  // close the fd
    ASSERT_TRUE(WriteStringToFile(
                    SegmentPath(0), std::string_view(intact).substr(0, cut))
                    .ok());

    size_t expected_whole = 0;
    while (expected_whole < records.size() &&
           boundaries[expected_whole + 1] <= cut) {
      ++expected_whole;
    }
    WalRecovery recovery;
    Result<WalWriter> reopened =
        WalWriter::Open(dir_, FastOptions(), &recovery);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    ASSERT_EQ(recovery.records.size(), expected_whole);
    for (size_t i = 0; i < expected_whole; ++i) {
      EXPECT_EQ(recovery.records[i], records[i]);
    }
    const bool on_boundary =
        cut == 0 || (cut >= boundaries.front() &&
                     std::find(boundaries.begin(), boundaries.end(), cut) !=
                         boundaries.end());
    EXPECT_EQ(recovery.tail_truncated, !on_boundary);

    // The truncated log accepts new appends and the result replays.
    ASSERT_TRUE(
        reopened.ValueOrDie().Append(MakeAddSource("post-crash")).ok());
    reopened = Status::FailedPrecondition("closed");
    Result<WalRecovery> after = InspectWal(dir_);
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    ASSERT_EQ(after.ValueOrDie().records.size(), expected_whole + 1);
    EXPECT_EQ(after.ValueOrDie().records.back(), MakeAddSource("post-crash"));
  }
}

TEST_F(WalTest, TornTailLogsExactlyOneWarning) {
  {
    Result<WalWriter> writer = WalWriter::Open(dir_, FastOptions());
    ASSERT_TRUE(writer.ok());
    for (const WalRecord& record : SampleRecords()) {
      ASSERT_TRUE(writer.ValueOrDie().Append(record).ok());
    }
  }
  Result<std::string> contents = ReadFileToString(SegmentPath(0));
  ASSERT_TRUE(contents.ok());
  ASSERT_TRUE(WriteStringToFile(
                  SegmentPath(0),
                  std::string_view(contents.ValueOrDie())
                      .substr(0, contents.ValueOrDie().size() - 2))
                  .ok());

  ::testing::internal::CaptureStderr();
  WalRecovery recovery;
  Result<WalWriter> reopened = WalWriter::Open(dir_, FastOptions(), &recovery);
  const std::string stderr_text = ::testing::internal::GetCapturedStderr();
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(recovery.tail_truncated);
  size_t warnings = 0;
  for (size_t pos = stderr_text.find("torn tail"); pos != std::string::npos;
       pos = stderr_text.find("torn tail", pos + 1)) {
    ++warnings;
  }
  EXPECT_EQ(warnings, 1u) << stderr_text;
  EXPECT_EQ(stderr_text.find("ERROR"), std::string::npos) << stderr_text;
}

TEST_F(WalTest, CorruptRecordInNonFinalSegmentIsParseError) {
  WalOptions options = FastOptions();
  options.segment_bytes = 64;  // force rotation quickly
  {
    Result<WalWriter> writer = WalWriter::Open(dir_, options);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(writer.ValueOrDie()
                      .Append(MakeAddVote("s" + std::to_string(i), "f",
                                          Vote::kTrue))
                      .ok());
    }
    ASSERT_GT(writer.ValueOrDie().active_segment_index(), 0);
  }
  // Flip one payload byte in the FIRST segment: a CRC mismatch that
  // cannot be a torn tail.
  Result<std::string> contents = ReadFileToString(SegmentPath(0));
  ASSERT_TRUE(contents.ok());
  std::string damaged = contents.ValueOrDie();
  damaged[damaged.size() - 6] ^= 0x01;
  ASSERT_TRUE(WriteStringToFile(SegmentPath(0), damaged).ok());

  WalRecovery recovery;
  Result<WalWriter> reopened = WalWriter::Open(dir_, options, &recovery);
  EXPECT_EQ(reopened.status().code(), StatusCode::kParseError);
  EXPECT_NE(reopened.status().message().find("non-final"),
            std::string::npos);
}

TEST_F(WalTest, CrcFlipInFinalRecordTruncatesIt) {
  const std::vector<WalRecord> records = SampleRecords();
  {
    Result<WalWriter> writer = WalWriter::Open(dir_, FastOptions());
    ASSERT_TRUE(writer.ok());
    for (const WalRecord& record : records) {
      ASSERT_TRUE(writer.ValueOrDie().Append(record).ok());
    }
  }
  Result<std::string> contents = ReadFileToString(SegmentPath(0));
  ASSERT_TRUE(contents.ok());
  std::string damaged = contents.ValueOrDie();
  damaged.back() ^= 0xFF;  // stored CRC of the final record
  ASSERT_TRUE(WriteStringToFile(SegmentPath(0), damaged).ok());

  WalRecovery recovery;
  Result<WalWriter> reopened = WalWriter::Open(dir_, FastOptions(), &recovery);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(recovery.tail_truncated);
  ASSERT_EQ(recovery.records.size(), records.size() - 1);
  EXPECT_GT(recovery.tail_bytes_dropped, 0u);
}

TEST_F(WalTest, BadMagicAndBadVersionAreHardErrors) {
  {
    Result<WalWriter> writer = WalWriter::Open(dir_, FastOptions());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.ValueOrDie().Append(MakeAddSource("a")).ok());
  }
  Result<std::string> contents = ReadFileToString(SegmentPath(0));
  ASSERT_TRUE(contents.ok());
  const std::string intact = contents.ValueOrDie();

  std::string wrong_magic = intact;
  wrong_magic[0] = 'X';
  ASSERT_TRUE(WriteStringToFile(SegmentPath(0), wrong_magic).ok());
  EXPECT_EQ(InspectWal(dir_).status().code(), StatusCode::kParseError);

  std::string wrong_version = intact;
  wrong_version[8] = 9;  // version u32 follows the 8-byte magic
  ASSERT_TRUE(WriteStringToFile(SegmentPath(0), wrong_version).ok());
  EXPECT_EQ(InspectWal(dir_).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(WalTest, RotationSpreadsRecordsAcrossSegments) {
  WalOptions options = FastOptions();
  options.segment_bytes = 64;
  std::vector<WalRecord> records;
  {
    Result<WalWriter> writer = WalWriter::Open(dir_, options);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 40; ++i) {
      WalRecord record = MakeAddVote("source-" + std::to_string(i),
                                     "fact-" + std::to_string(i % 7),
                                     i % 3 == 0 ? Vote::kFalse : Vote::kTrue);
      ASSERT_TRUE(writer.ValueOrDie().Append(record).ok());
      records.push_back(record);
    }
    EXPECT_GT(writer.ValueOrDie().active_segment_index(), 2);
  }
  WalRecovery recovery;
  Result<WalWriter> reopened = WalWriter::Open(dir_, options, &recovery);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_GT(recovery.segments_scanned, 3);
  EXPECT_EQ(recovery.records, records);
  // Appends continue in the segment recovery left active.
  EXPECT_EQ(reopened.ValueOrDie().active_segment_index(),
            recovery.segments_scanned - 1);
}

TEST_F(WalTest, CompactFoldsLogIntoSnapshot) {
  WalOptions options = FastOptions();
  options.segment_bytes = 64;
  Result<WalWriter> writer = WalWriter::Open(dir_, options);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(writer.ValueOrDie()
                    .Append(MakeAddVote("s" + std::to_string(i), "f",
                                        Vote::kTrue))
                    .ok());
  }
  const std::string csv = "fact,s0,s1\nf,T,F\n";
  ASSERT_TRUE(writer.ValueOrDie().Compact(csv, 20).ok());
  const int64_t fresh_segment = writer.ValueOrDie().active_segment_index();
  ASSERT_TRUE(
      writer.ValueOrDie().Append(MakeAddSource("after-compact")).ok());
  writer = Status::FailedPrecondition("closed");

  WalRecovery recovery;
  Result<WalWriter> reopened = WalWriter::Open(dir_, options, &recovery);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(recovery.has_snapshot);
  EXPECT_EQ(recovery.snapshot_csv, csv);
  // Folded segments are gone; only the post-compaction log remains.
  EXPECT_EQ(recovery.segments_scanned, 1);
  ASSERT_EQ(recovery.records.size(), 2u);
  EXPECT_EQ(recovery.records[0].type, WalRecordType::kSnapshotMarker);
  EXPECT_EQ(recovery.records[0].records_folded, 20u);
  EXPECT_EQ(recovery.records[0].snapshot_crc, recovery.snapshot_crc);
  EXPECT_EQ(recovery.records[1], MakeAddSource("after-compact"));
  // Mutations() hides the marker from replay.
  const std::vector<WalRecord> mutations = recovery.Mutations();
  ASSERT_EQ(mutations.size(), 1u);
  EXPECT_EQ(mutations[0], MakeAddSource("after-compact"));
  // The folded segment files are actually unlinked.
  struct stat info;
  for (int64_t index = 0; index < fresh_segment; ++index) {
    EXPECT_NE(::stat(SegmentPath(index).c_str(), &info), 0)
        << "segment " << index << " should have been removed";
  }
}

TEST_F(WalTest, CompactInterruptedBeforeMarkerRecoversWithStaleMarker) {
  // The review scenario: a second compaction publishes its snapshot
  // (step 1) and crashes before logging the new marker — the live log
  // still ends with the FIRST compaction's marker, whose CRC pins the
  // superseded snapshot. Recovery must tolerate that marker by its
  // older compaction sequence, not refuse to start.
  Result<WalWriter> writer = WalWriter::Open(dir_, FastOptions());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.ValueOrDie().Append(MakeAddSource("a")).ok());
  ASSERT_TRUE(writer.ValueOrDie().Compact("fact,s0\nf,T\n", 1).ok());
  ASSERT_TRUE(
      writer.ValueOrDie().Append(MakeAddVote("b", "f", Vote::kTrue)).ok());
  // Second compaction dies between snapshot publish and rotation.
  Failpoints::Arm("wal.rotate");
  EXPECT_EQ(writer.ValueOrDie().Compact("fact,s0,b\nf,T,T\n", 2).code(),
            StatusCode::kIoError);
  Failpoints::Disarm("wal.rotate");
  writer = Status::FailedPrecondition("closed");

  WalRecovery recovery;
  Result<WalWriter> reopened =
      WalWriter::Open(dir_, FastOptions(), &recovery);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(recovery.has_snapshot);
  EXPECT_EQ(recovery.snapshot_csv, "fact,s0,b\nf,T,T\n");
  EXPECT_EQ(recovery.snapshot_seq, 2u);
  EXPECT_EQ(recovery.stale_markers, 1);
  // The surviving mutation replays idempotently on the new snapshot.
  const std::vector<WalRecord> mutations = recovery.Mutations();
  ASSERT_EQ(mutations.size(), 1u);
  EXPECT_EQ(mutations[0], MakeAddVote("b", "f", Vote::kTrue));
  // A third compaction supersedes cleanly on the reopened writer.
  ASSERT_TRUE(
      reopened.ValueOrDie().Compact("fact,s0,b\nf,T,T\n", 1).ok());
  Result<WalRecovery> after = InspectWal(dir_);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.ValueOrDie().snapshot_seq, 3u);
  EXPECT_EQ(after.ValueOrDie().stale_markers, 0);
}

TEST_F(WalTest, SurvivingFoldedSegmentAfterCompactionRecovers) {
  // The unlink-failure flavor: a folded segment (holding the OLD
  // marker) survives a completed second compaction. Its marker's
  // older sequence makes it stale, and its records replay
  // idempotently under the new snapshot.
  Result<WalWriter> writer = WalWriter::Open(dir_, FastOptions());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.ValueOrDie().Append(MakeAddSource("a")).ok());
  ASSERT_TRUE(writer.ValueOrDie().Compact("fact,s0\nf,T\n", 1).ok());
  const int64_t folded_index = writer.ValueOrDie().active_segment_index();
  ASSERT_TRUE(
      writer.ValueOrDie().Append(MakeAddVote("b", "f", Vote::kTrue)).ok());
  Result<std::string> folded_bytes = ReadFileToString(SegmentPath(folded_index));
  ASSERT_TRUE(folded_bytes.ok());
  ASSERT_TRUE(writer.ValueOrDie().Compact("fact,s0,b\nf,T,T\n", 1).ok());
  ASSERT_TRUE(writer.ValueOrDie().Append(MakeAddSource("c")).ok());
  writer = Status::FailedPrecondition("closed");
  // Resurrect the folded segment, as if its unlink had failed.
  ASSERT_TRUE(WriteStringToFile(SegmentPath(folded_index),
                                folded_bytes.ValueOrDie())
                  .ok());

  WalRecovery recovery;
  Result<WalWriter> reopened =
      WalWriter::Open(dir_, FastOptions(), &recovery);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(recovery.snapshot_seq, 2u);
  EXPECT_EQ(recovery.stale_markers, 1);
  EXPECT_EQ(recovery.segments_scanned, 2);
  // Stale-segment mutations come first (idempotent re-fold), then the
  // post-compaction ones.
  const std::vector<WalRecord> mutations = recovery.Mutations();
  ASSERT_EQ(mutations.size(), 2u);
  EXPECT_EQ(mutations[0], MakeAddVote("b", "f", Vote::kTrue));
  EXPECT_EQ(mutations[1], MakeAddSource("c"));
}

TEST_F(WalTest, SnapshotMarkerWithoutSnapshotIsParseError) {
  ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
  WalRecord marker;
  marker.type = WalRecordType::kSnapshotMarker;
  marker.snapshot_crc = 0xDEADBEEF;
  marker.records_folded = 7;
  ASSERT_TRUE(WriteStringToFile(SegmentPath(0),
                                wal_internal::SegmentHeader() +
                                    wal_internal::EncodeRecord(marker))
                  .ok());
  Result<WalRecovery> inspected = InspectWal(dir_);
  EXPECT_EQ(inspected.status().code(), StatusCode::kParseError);
  EXPECT_NE(inspected.status().message().find("no snapshot.snap"),
            std::string::npos);
}

TEST_F(WalTest, MismatchedSnapshotPairIsParseError) {
  Result<WalWriter> writer = WalWriter::Open(dir_, FastOptions());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.ValueOrDie().Append(MakeAddSource("a")).ok());
  ASSERT_TRUE(writer.ValueOrDie().Compact("fact\nf\n", 1).ok());
  writer = Status::FailedPrecondition("closed");
  // Replace the snapshot with a different (valid) one: the marker in
  // the log now pins a CRC that no longer matches.
  {
    Result<WalWriter> other =
        WalWriter::Open(dir_ + "_other", FastOptions());
    ASSERT_TRUE(other.ok());
    ASSERT_TRUE(other.ValueOrDie().Append(MakeAddSource("b")).ok());
    ASSERT_TRUE(other.ValueOrDie().Compact("fact\ng\n", 1).ok());
  }
  Result<std::string> foreign =
      ReadFileToString(dir_ + "_other/snapshot.snap");
  ASSERT_TRUE(foreign.ok());
  ASSERT_TRUE(
      WriteStringToFile(dir_ + "/snapshot.snap", foreign.ValueOrDie()).ok());
  RemoveWalDir(dir_ + "_other");

  Result<WalRecovery> inspected = InspectWal(dir_);
  EXPECT_EQ(inspected.status().code(), StatusCode::kParseError);
  EXPECT_NE(inspected.status().message().find("mismatched snapshot"),
            std::string::npos);
}

TEST_F(WalTest, CorruptionFollowedByIntactRecordsIsParseError) {
  // A flipped payload byte in the MIDDLE of the final (here: only)
  // segment, with intact acked records after it, is corruption — not
  // a torn tail. Truncating would silently drop the acked records
  // behind the damage, so recovery must refuse instead.
  const std::vector<WalRecord> records = SampleRecords();
  {
    Result<WalWriter> writer = WalWriter::Open(dir_, FastOptions());
    ASSERT_TRUE(writer.ok());
    for (const WalRecord& record : records) {
      ASSERT_TRUE(writer.ValueOrDie().Append(record).ok());
    }
  }
  Result<std::string> contents = ReadFileToString(SegmentPath(0));
  ASSERT_TRUE(contents.ok());
  std::string damaged = contents.ValueOrDie();
  // Flip a byte inside the second record's frame (well before the
  // final record).
  const size_t second_record =
      wal_internal::SegmentHeader().size() +
      wal_internal::EncodeRecord(records[0]).size();
  damaged[second_record + 7] ^= 0x01;
  ASSERT_TRUE(WriteStringToFile(SegmentPath(0), damaged).ok());

  Result<WalRecovery> inspected = InspectWal(dir_);
  EXPECT_EQ(inspected.status().code(), StatusCode::kParseError);
  EXPECT_NE(inspected.status().message().find("corruption"),
            std::string::npos);
  EXPECT_EQ(WalWriter::Open(dir_, FastOptions()).status().code(),
            StatusCode::kParseError);
}

TEST_F(WalTest, LengthFieldBitFlipMidSegmentIsParseError) {
  // The record CRC covers the length field, so a flipped length bit
  // mid-segment fails that record's CRC; the intact records after it
  // then classify the damage as corruption. Before the fix this
  // silently discarded every record from the flip onward.
  const std::vector<WalRecord> records = SampleRecords();
  {
    Result<WalWriter> writer = WalWriter::Open(dir_, FastOptions());
    ASSERT_TRUE(writer.ok());
    for (const WalRecord& record : records) {
      ASSERT_TRUE(writer.ValueOrDie().Append(record).ok());
    }
  }
  Result<std::string> contents = ReadFileToString(SegmentPath(0));
  ASSERT_TRUE(contents.ok());
  std::string damaged = contents.ValueOrDie();
  // Byte 1 of a record frame is the low byte of its u32 length.
  const size_t second_record =
      wal_internal::SegmentHeader().size() +
      wal_internal::EncodeRecord(records[0]).size();
  damaged[second_record + 1] ^= 0x04;
  ASSERT_TRUE(WriteStringToFile(SegmentPath(0), damaged).ok());

  Result<WalRecovery> inspected = InspectWal(dir_);
  EXPECT_EQ(inspected.status().code(), StatusCode::kParseError)
      << inspected.status().ToString();
}

TEST_F(WalTest, OversizeDigitRunInSegmentNameIsIgnored) {
  // A stray all-digits name wider than int64 must be skipped like any
  // other foreign file — stoll would throw out_of_range through
  // startup recovery and abort the daemon.
  {
    Result<WalWriter> writer = WalWriter::Open(dir_, FastOptions());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.ValueOrDie().Append(MakeAddSource("a")).ok());
  }
  ASSERT_TRUE(WriteStringToFile(
                  dir_ + "/wal-99999999999999999999999.log", "junk")
                  .ok());
  WalRecovery recovery;
  Result<WalWriter> reopened =
      WalWriter::Open(dir_, FastOptions(), &recovery);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(recovery.segments_scanned, 1);
  ASSERT_EQ(recovery.records.size(), 1u);
  EXPECT_EQ(recovery.records[0], MakeAddSource("a"));
}

TEST_F(WalTest, AppendBatchRoundTripsAndCountsOneFsync) {
  const std::vector<WalRecord> batch = {
      MakeAddVote("alice", "sky-is-blue", Vote::kTrue),
      MakeAddVote("bob", "sky-is-blue", Vote::kFalse),
      MakeRetractVote("alice", "sky-is-blue"),
  };
  {
    WalOptions options;
    options.fsync_policy = WalFsyncPolicy::kAlways;
    Result<WalWriter> writer = WalWriter::Open(dir_, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.ValueOrDie().Append(MakeAddSource("alice")).ok());
    // The batch is one frame and one fsync, not one per record.
    FailpointConfig observe;
    observe.probability = 0.0;
    Failpoints::Arm("wal.fsync", observe);
    ASSERT_TRUE(writer.ValueOrDie().AppendBatch(batch).ok());
    EXPECT_EQ(Failpoints::HitCount("wal.fsync"), 1);
    Failpoints::Disarm("wal.fsync");
    EXPECT_EQ(writer.ValueOrDie().records_appended(), 4);
    // Markers may only enter the log through Compact.
    WalRecord marker;
    marker.type = WalRecordType::kSnapshotMarker;
    EXPECT_EQ(writer.ValueOrDie().AppendBatch({&marker, 1}).code(),
              StatusCode::kInvalidArgument);
  }
  WalRecovery recovery;
  Result<WalWriter> reopened =
      WalWriter::Open(dir_, FastOptions(), &recovery);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(recovery.records.size(), 4u);
  EXPECT_EQ(recovery.records[0], MakeAddSource("alice"));
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(recovery.records[i + 1], batch[i]);
  }
}

TEST_F(WalTest, TornBatchFrameIsAllOrNothing) {
  // Cut the file at every byte inside the batch frame: recovery must
  // yield either the whole batch or none of it — never a strict
  // prefix — because the batch shares one length and one CRC.
  const WalRecord before = MakeAddSource("pre-batch");
  const std::vector<WalRecord> batch = {
      MakeAddVote("alice", "sky-is-blue", Vote::kTrue),
      MakeAddVote("bob", "sky-is-blue", Vote::kFalse),
      MakeAddVote("carol", "grass-is-green", Vote::kTrue),
  };
  {
    Result<WalWriter> writer = WalWriter::Open(dir_, FastOptions());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.ValueOrDie().Append(before).ok());
    ASSERT_TRUE(writer.ValueOrDie().AppendBatch(batch).ok());
  }
  Result<std::string> full = ReadFileToString(SegmentPath(0));
  ASSERT_TRUE(full.ok());
  const std::string intact = full.ValueOrDie();
  const size_t batch_start = wal_internal::SegmentHeader().size() +
                             wal_internal::EncodeRecord(before).size();
  ASSERT_EQ(batch_start + wal_internal::EncodeBatchRecord(batch).size(),
            intact.size());

  for (size_t cut = batch_start; cut <= intact.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    RemoveWalDir(dir_);
    {
      Result<WalWriter> writer = WalWriter::Open(dir_, FastOptions());
      ASSERT_TRUE(writer.ok());
    }
    ASSERT_TRUE(WriteStringToFile(
                    SegmentPath(0), std::string_view(intact).substr(0, cut))
                    .ok());
    WalRecovery recovery;
    Result<WalWriter> reopened =
        WalWriter::Open(dir_, FastOptions(), &recovery);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    if (cut == intact.size()) {
      ASSERT_EQ(recovery.records.size(), 1u + batch.size());
    } else {
      ASSERT_EQ(recovery.records.size(), 1u);
      EXPECT_EQ(recovery.records[0], before);
      EXPECT_EQ(recovery.tail_truncated, cut != batch_start);
    }
  }
}

TEST_F(WalTest, FailedBatchFsyncRollsTheFrameBack) {
  WalOptions options;
  options.fsync_policy = WalFsyncPolicy::kAlways;
  Result<WalWriter> writer = WalWriter::Open(dir_, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.ValueOrDie().Append(MakeAddSource("a")).ok());

  const std::vector<WalRecord> batch = {
      MakeAddVote("b", "f", Vote::kTrue),
      MakeAddVote("c", "f", Vote::kFalse),
  };
  Failpoints::Arm("wal.fsync");
  EXPECT_EQ(writer.ValueOrDie().AppendBatch(batch).code(),
            StatusCode::kIoError);
  Failpoints::Disarm("wal.fsync");
  // The NACKed frame left no trace: accounting and bytes both rolled
  // back, and the next append lands right after the surviving record.
  EXPECT_EQ(writer.ValueOrDie().records_appended(), 1);
  ASSERT_TRUE(writer.ValueOrDie().Append(MakeAddSource("d")).ok());
  writer = Status::FailedPrecondition("closed");

  WalRecovery recovery;
  Result<WalWriter> reopened = WalWriter::Open(dir_, options, &recovery);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(recovery.records.size(), 2u);
  EXPECT_EQ(recovery.records[0], MakeAddSource("a"));
  EXPECT_EQ(recovery.records[1], MakeAddSource("d"));
  EXPECT_FALSE(recovery.tail_truncated);
}

TEST_F(WalTest, FailpointsCoverEveryDurabilityEdge) {
  WalOptions options;
  options.fsync_policy = WalFsyncPolicy::kAlways;
  options.segment_bytes = 64;
  {
    Result<WalWriter> writer = WalWriter::Open(dir_, options);
    ASSERT_TRUE(writer.ok());

    Failpoints::Arm("wal.append");
    EXPECT_EQ(writer.ValueOrDie().Append(MakeAddSource("a")).code(),
              StatusCode::kIoError);
    Failpoints::Disarm("wal.append");
    ASSERT_TRUE(writer.ValueOrDie().Append(MakeAddSource("a")).ok());

    Failpoints::Arm("wal.fsync");
    EXPECT_EQ(writer.ValueOrDie().Append(MakeAddSource("b")).code(),
              StatusCode::kIoError);  // Append's policy fsync fails
    EXPECT_EQ(writer.ValueOrDie().Sync().code(), StatusCode::kIoError);
    Failpoints::Disarm("wal.fsync");

    Failpoints::Arm("wal.rotate");
    EXPECT_EQ(writer.ValueOrDie().Compact("fact\nf\n", 1).code(),
              StatusCode::kIoError);  // Compact rotates to a new segment
    Failpoints::Disarm("wal.rotate");
  }
  Failpoints::Arm("wal.replay");
  EXPECT_EQ(WalWriter::Open(dir_, options).status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(InspectWal(dir_).status().code(), StatusCode::kIoError);
  Failpoints::Disarm("wal.replay");
  EXPECT_TRUE(WalWriter::Open(dir_, options).ok());
}

TEST_F(WalTest, FsyncPolicyParsingAndOptionValidation) {
  EXPECT_EQ(ParseWalFsyncPolicy("always").ValueOrDie(),
            WalFsyncPolicy::kAlways);
  EXPECT_EQ(ParseWalFsyncPolicy("interval").ValueOrDie(),
            WalFsyncPolicy::kInterval);
  EXPECT_EQ(ParseWalFsyncPolicy("never").ValueOrDie(),
            WalFsyncPolicy::kNever);
  EXPECT_EQ(ParseWalFsyncPolicy("Always").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseWalFsyncPolicy("").status().code(),
            StatusCode::kInvalidArgument);
  for (WalFsyncPolicy policy :
       {WalFsyncPolicy::kAlways, WalFsyncPolicy::kInterval,
        WalFsyncPolicy::kNever}) {
    EXPECT_EQ(ParseWalFsyncPolicy(WalFsyncPolicyName(policy)).ValueOrDie(),
              policy);
  }

  WalOptions options;
  EXPECT_TRUE(ValidateWalOptions(options).ok());
  options.fsync_interval_records = 0;
  EXPECT_EQ(ValidateWalOptions(options).code(),
            StatusCode::kInvalidArgument);
  options = WalOptions{};
  options.segment_bytes = 0;
  EXPECT_EQ(ValidateWalOptions(options).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(WalTest, IntervalPolicySyncsEveryNRecords) {
  WalOptions options;
  options.fsync_policy = WalFsyncPolicy::kInterval;
  options.fsync_interval_records = 3;
  Result<WalWriter> writer = WalWriter::Open(dir_, options);
  ASSERT_TRUE(writer.ok());
  // Count fsyncs through the wal.fsync failpoint's hit counter; the
  // probability-0 arm never fails, only observes.
  FailpointConfig observe;
  observe.probability = 0.0;
  Failpoints::Arm("wal.fsync", observe);
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(
        writer.ValueOrDie().Append(MakeAddSource("s" + std::to_string(i)))
            .ok());
  }
  EXPECT_EQ(Failpoints::HitCount("wal.fsync"), 3);
}

TEST_F(WalTest, SegmentFileNamesArePaddedAndStable) {
  EXPECT_EQ(wal_internal::SegmentFileName(0), "wal-000000.log");
  EXPECT_EQ(wal_internal::SegmentFileName(42), "wal-000042.log");
  EXPECT_EQ(wal_internal::SegmentFileName(1234567), "wal-1234567.log");
}

}  // namespace
}  // namespace corrob
