#include "data/dataset_stats.h"

#include <gtest/gtest.h>

namespace corrob {
namespace {

Dataset MakeOverlapExample() {
  // s0 votes on f0,f1,f2; s1 votes on f1,f2,f3; s2 votes on nothing.
  DatasetBuilder builder;
  builder.AddSource("s0");
  builder.AddSource("s1");
  builder.AddSource("s2");
  for (int f = 0; f < 4; ++f) builder.AddFact("f" + std::to_string(f));
  EXPECT_TRUE(builder.SetVote(0, 0, Vote::kTrue).ok());
  EXPECT_TRUE(builder.SetVote(0, 1, Vote::kTrue).ok());
  EXPECT_TRUE(builder.SetVote(0, 2, Vote::kFalse).ok());
  EXPECT_TRUE(builder.SetVote(1, 1, Vote::kTrue).ok());
  EXPECT_TRUE(builder.SetVote(1, 2, Vote::kTrue).ok());
  EXPECT_TRUE(builder.SetVote(1, 3, Vote::kTrue).ok());
  return builder.Build();
}

TEST(SourceStatsTest, Coverage) {
  SourceStats stats = ComputeSourceStats(MakeOverlapExample());
  ASSERT_EQ(stats.coverage.size(), 3u);
  EXPECT_DOUBLE_EQ(stats.coverage[0], 0.75);
  EXPECT_DOUBLE_EQ(stats.coverage[1], 0.75);
  EXPECT_DOUBLE_EQ(stats.coverage[2], 0.0);
}

TEST(SourceStatsTest, JaccardOverlap) {
  SourceStats stats = ComputeSourceStats(MakeOverlapExample());
  // |{f1,f2}| / |{f0,f1,f2,f3}| = 0.5.
  EXPECT_DOUBLE_EQ(stats.overlap[0][1], 0.5);
  EXPECT_DOUBLE_EQ(stats.overlap[1][0], 0.5);
  EXPECT_DOUBLE_EQ(stats.overlap[0][0], 1.0);
  // An empty source has 0 overlap, even with itself.
  EXPECT_DOUBLE_EQ(stats.overlap[2][2], 0.0);
  EXPECT_DOUBLE_EQ(stats.overlap[0][2], 0.0);
}

TEST(SourceAccuracyTest, CorrectVotesCounted) {
  Dataset d = MakeOverlapExample();
  GoldenSet golden;
  golden.Add(0, true);    // s0 voted T: correct.
  golden.Add(2, false);   // s0 voted F: correct; s1 voted T: wrong.
  golden.Add(3, false);   // s1 voted T: wrong.
  std::vector<double> acc = SourceAccuracyOnGolden(d, golden);
  EXPECT_DOUBLE_EQ(acc[0], 1.0);
  EXPECT_DOUBLE_EQ(acc[1], 0.0);
  EXPECT_DOUBLE_EQ(acc[2], 0.0);  // No votes: default value.
}

TEST(SourceAccuracyTest, NoVoteValuePropagates) {
  Dataset d = MakeOverlapExample();
  GoldenSet golden;
  golden.Add(0, true);
  std::vector<double> acc = SourceAccuracyOnGolden(d, golden, 0.5);
  EXPECT_DOUBLE_EQ(acc[2], 0.5);
  EXPECT_DOUBLE_EQ(acc[1], 0.5);  // s1 has no vote on f0.
}

TEST(FalseVoteStatsTest, CountsPerSourceAndFacts) {
  Dataset d = MakeOverlapExample();
  std::vector<int64_t> counts = CountFalseVotesBySource(d);
  EXPECT_EQ(counts, (std::vector<int64_t>{1, 0, 0}));
  EXPECT_EQ(CountFactsWithFalseVotes(d), 1);
}

TEST(AffirmativeFractionTest, CountsAffirmativeOnlyFacts) {
  Dataset d = MakeOverlapExample();
  // f0: T only; f1: T,T; f2: has F; f3: T only. f2 disqualifies.
  EXPECT_DOUBLE_EQ(AffirmativeOnlyFraction(d), 3.0 / 4.0);
}

TEST(GoldenSetTest, Counts) {
  GoldenSet golden;
  golden.Add(0, true);
  golden.Add(1, false);
  golden.Add(2, true);
  EXPECT_EQ(golden.size(), 3u);
  EXPECT_EQ(golden.CountTrue(), 2);
  EXPECT_EQ(golden.CountFalse(), 1);
  EXPECT_FALSE(golden.empty());
}

TEST(GoldenSetTest, FromFullTruth) {
  GroundTruth truth(std::vector<bool>{true, false, true});
  GoldenSet golden = GoldenSet::FromFullTruth(truth);
  EXPECT_EQ(golden.size(), 3u);
  EXPECT_EQ(golden.fact(1), 1);
  EXPECT_FALSE(golden.label(1));
}

}  // namespace
}  // namespace corrob
