#include "data/dataset_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "data/motivating_example.h"

namespace corrob {
namespace {

TEST(DatasetIoTest, ParseBasicCsv) {
  std::string text =
      "fact,s1,s2\n"
      "r1,T,-\n"
      "r2,F,T\n";
  LabeledDataset loaded = ParseDatasetCsv(text).ValueOrDie();
  EXPECT_EQ(loaded.dataset.num_sources(), 2);
  EXPECT_EQ(loaded.dataset.num_facts(), 2);
  EXPECT_EQ(loaded.dataset.GetVote(0, 0), Vote::kTrue);
  EXPECT_EQ(loaded.dataset.GetVote(1, 0), Vote::kNone);
  EXPECT_EQ(loaded.dataset.GetVote(0, 1), Vote::kFalse);
  EXPECT_FALSE(loaded.truth.has_value());
}

TEST(DatasetIoTest, ParseTruthColumn) {
  std::string text =
      "fact,s1,__truth__\n"
      "r1,T,true\n"
      "r2,T,false\n";
  LabeledDataset loaded = ParseDatasetCsv(text).ValueOrDie();
  ASSERT_TRUE(loaded.truth.has_value());
  EXPECT_TRUE(loaded.truth->IsTrue(0));
  EXPECT_FALSE(loaded.truth->IsTrue(1));
}

TEST(DatasetIoTest, UnknownTruthDropsColumn) {
  std::string text =
      "fact,s1,__truth__\n"
      "r1,T,?\n"
      "r2,T,true\n";
  LabeledDataset loaded = ParseDatasetCsv(text).ValueOrDie();
  EXPECT_FALSE(loaded.truth.has_value());
}

TEST(DatasetIoTest, RejectsMalformedInputs) {
  EXPECT_EQ(ParseDatasetCsv("").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseDatasetCsv("bogus,s1\nr1,T\n").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseDatasetCsv("fact\nr1\n").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseDatasetCsv("fact,s1\nr1,T,extra\n").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseDatasetCsv("fact,s1\nr1,Q\n").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(
      ParseDatasetCsv("fact,s1,__truth__\nr1,T,maybe\n").status().code(),
      StatusCode::kParseError);
}

TEST(DatasetIoTest, MotivatingExampleRoundTrips) {
  MotivatingExample example = MakeMotivatingExample();
  std::string csv = DatasetToCsv(example.dataset, &example.truth);
  LabeledDataset loaded = ParseDatasetCsv(csv).ValueOrDie();

  ASSERT_EQ(loaded.dataset.num_sources(), example.dataset.num_sources());
  ASSERT_EQ(loaded.dataset.num_facts(), example.dataset.num_facts());
  for (FactId f = 0; f < example.dataset.num_facts(); ++f) {
    EXPECT_EQ(loaded.dataset.fact_name(f), example.dataset.fact_name(f));
    for (SourceId s = 0; s < example.dataset.num_sources(); ++s) {
      EXPECT_EQ(loaded.dataset.GetVote(s, f), example.dataset.GetVote(s, f))
          << "s" << s << " f" << f;
    }
  }
  ASSERT_TRUE(loaded.truth.has_value());
  EXPECT_EQ(loaded.truth->labels(), example.truth.labels());
}

TEST(DatasetIoTest, FileRoundTrip) {
  MotivatingExample example = MakeMotivatingExample();
  std::string path = ::testing::TempDir() + "/corrob_dataset_io_test.csv";
  ASSERT_TRUE(SaveDatasetCsv(path, example.dataset, &example.truth).ok());
  LabeledDataset loaded = LoadDatasetCsv(path).ValueOrDie();
  EXPECT_EQ(loaded.dataset.num_votes(), example.dataset.num_votes());
  ASSERT_TRUE(loaded.truth.has_value());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadDatasetCsv("/nope/missing.csv").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace corrob
