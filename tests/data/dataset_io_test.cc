#include "data/dataset_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "data/motivating_example.h"

namespace corrob {
namespace {

TEST(DatasetIoTest, ParseBasicCsv) {
  std::string text =
      "fact,s1,s2\n"
      "r1,T,-\n"
      "r2,F,T\n";
  LabeledDataset loaded = ParseDatasetCsv(text).ValueOrDie();
  EXPECT_EQ(loaded.dataset.num_sources(), 2);
  EXPECT_EQ(loaded.dataset.num_facts(), 2);
  EXPECT_EQ(loaded.dataset.GetVote(0, 0), Vote::kTrue);
  EXPECT_EQ(loaded.dataset.GetVote(1, 0), Vote::kNone);
  EXPECT_EQ(loaded.dataset.GetVote(0, 1), Vote::kFalse);
  EXPECT_FALSE(loaded.truth.has_value());
}

TEST(DatasetIoTest, ParseTruthColumn) {
  std::string text =
      "fact,s1,__truth__\n"
      "r1,T,true\n"
      "r2,T,false\n";
  LabeledDataset loaded = ParseDatasetCsv(text).ValueOrDie();
  ASSERT_TRUE(loaded.truth.has_value());
  EXPECT_TRUE(loaded.truth->IsTrue(0));
  EXPECT_FALSE(loaded.truth->IsTrue(1));
}

TEST(DatasetIoTest, UnknownTruthDropsColumn) {
  std::string text =
      "fact,s1,__truth__\n"
      "r1,T,?\n"
      "r2,T,true\n";
  LabeledDataset loaded = ParseDatasetCsv(text).ValueOrDie();
  EXPECT_FALSE(loaded.truth.has_value());
}

TEST(DatasetIoTest, CancelledTokenAbortsTheRowLoop) {
  // The row loop polls the token every 2048 rows, so a dataset has to
  // be at least that tall before cancellation can land.
  std::string text = "fact,s1\n";
  for (int i = 0; i < 5000; ++i) {
    text += "r" + std::to_string(i) + ",T\n";
  }
  CancellationToken token;
  DatasetCsvOptions options;
  options.cancel = &token;
  EXPECT_TRUE(ParseDatasetCsv(text, options).ok());

  token.Cancel();
  auto result = ParseDatasetCsv(text, options);
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_NE(result.status().message().find("rows"), std::string::npos);
}

TEST(DatasetIoTest, RejectsMalformedInputs) {
  EXPECT_EQ(ParseDatasetCsv("").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseDatasetCsv("bogus,s1\nr1,T\n").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseDatasetCsv("fact\nr1\n").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseDatasetCsv("fact,s1\nr1,T,extra\n").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseDatasetCsv("fact,s1\nr1,Q\n").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(
      ParseDatasetCsv("fact,s1,__truth__\nr1,T,maybe\n").status().code(),
      StatusCode::kParseError);
}

TEST(DatasetIoTest, MotivatingExampleRoundTrips) {
  MotivatingExample example = MakeMotivatingExample();
  std::string csv = DatasetToCsv(example.dataset, &example.truth);
  LabeledDataset loaded = ParseDatasetCsv(csv).ValueOrDie();

  ASSERT_EQ(loaded.dataset.num_sources(), example.dataset.num_sources());
  ASSERT_EQ(loaded.dataset.num_facts(), example.dataset.num_facts());
  for (FactId f = 0; f < example.dataset.num_facts(); ++f) {
    EXPECT_EQ(loaded.dataset.fact_name(f), example.dataset.fact_name(f));
    for (SourceId s = 0; s < example.dataset.num_sources(); ++s) {
      EXPECT_EQ(loaded.dataset.GetVote(s, f), example.dataset.GetVote(s, f))
          << "s" << s << " f" << f;
    }
  }
  ASSERT_TRUE(loaded.truth.has_value());
  EXPECT_EQ(loaded.truth->labels(), example.truth.labels());
}

TEST(DatasetIoTest, FileRoundTrip) {
  MotivatingExample example = MakeMotivatingExample();
  std::string path = ::testing::TempDir() + "/corrob_dataset_io_test.csv";
  ASSERT_TRUE(SaveDatasetCsv(path, example.dataset, &example.truth).ok());
  LabeledDataset loaded = LoadDatasetCsv(path).ValueOrDie();
  EXPECT_EQ(loaded.dataset.num_votes(), example.dataset.num_votes());
  ASSERT_TRUE(loaded.truth.has_value());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingFileIsNotFound) {
  auto result = LoadDatasetCsv("/nope/missing.csv");
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("/nope/missing.csv"),
            std::string::npos);
}

TEST(DatasetIoTest, ParseErrorsNameTheFile) {
  std::string path = ::testing::TempDir() + "/corrob_bad_dataset.csv";
  ASSERT_TRUE(WriteStringToFile(path, "fact,s1\nr1,Q\n").ok());
  auto result = LoadDatasetCsv(path);
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find(path), std::string::npos);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, StrictModeRejectsWhatLenientSkips) {
  // Bad vote symbol on r2 and a row-length mismatch on r4.
  std::string text =
      "fact,s1,s2,__truth__\n"
      "r1,T,-,true\n"
      "r2,Q,T,false\n"
      "r3,F,T,false\n"
      "r4,T,true\n"
      "r5,-,F,true\n";
  EXPECT_EQ(ParseDatasetCsv(text).status().code(), StatusCode::kParseError);

  DatasetCsvOptions lenient;
  lenient.lenient = true;
  ParseReport report;
  LabeledDataset loaded =
      ParseDatasetCsv(text, lenient, &report).ValueOrDie();

  EXPECT_EQ(report.rows_seen, 5);
  EXPECT_EQ(report.rows_loaded, 3);
  ASSERT_EQ(report.skipped.size(), 2u);
  EXPECT_FALSE(report.AllRowsLoaded());
  // Diagnostics carry document row indices (the header is row 0).
  EXPECT_EQ(report.skipped[0].row, 2u);
  EXPECT_EQ(report.skipped[1].row, 4u);
  EXPECT_NE(report.ToString().find("skipped 2"), std::string::npos);

  // Skipped rows leave no trace: facts, votes, and truth labels all
  // come from the surviving rows only.
  ASSERT_EQ(loaded.dataset.num_facts(), 3);
  EXPECT_EQ(loaded.dataset.fact_name(0), "r1");
  EXPECT_EQ(loaded.dataset.fact_name(1), "r3");
  EXPECT_EQ(loaded.dataset.fact_name(2), "r5");
  EXPECT_EQ(loaded.dataset.GetVote(0, 1), Vote::kFalse);
  EXPECT_EQ(loaded.dataset.GetVote(1, 2), Vote::kFalse);
  ASSERT_TRUE(loaded.truth.has_value());
  EXPECT_TRUE(loaded.truth->IsTrue(0));
  EXPECT_FALSE(loaded.truth->IsTrue(1));
  EXPECT_TRUE(loaded.truth->IsTrue(2));
}

TEST(DatasetIoTest, LenientCleanInputReportsAllLoaded) {
  DatasetCsvOptions lenient;
  lenient.lenient = true;
  ParseReport report;
  LabeledDataset loaded =
      ParseDatasetCsv("fact,s1\nr1,T\nr2,F\n", lenient, &report)
          .ValueOrDie();
  EXPECT_EQ(loaded.dataset.num_facts(), 2);
  EXPECT_TRUE(report.AllRowsLoaded());
  EXPECT_EQ(report.rows_seen, 2);
  EXPECT_EQ(report.rows_loaded, 2);
}

TEST(DatasetIoTest, LenientStillRejectsBrokenHeader) {
  DatasetCsvOptions lenient;
  lenient.lenient = true;
  ParseReport report;
  EXPECT_EQ(ParseDatasetCsv("bogus,s1\nr1,T\n", lenient, &report)
                .status()
                .code(),
            StatusCode::kParseError);
}

}  // namespace
}  // namespace corrob
