#include "data/dataset_merge.h"

#include <gtest/gtest.h>

namespace corrob {
namespace {

Dataset Snapshot1() {
  DatasetBuilder builder;
  builder.SetVoteByName("yelp", "m_bar", Vote::kTrue);
  builder.SetVoteByName("yp", "m_bar", Vote::kTrue);
  builder.SetVoteByName("yelp", "dannys", Vote::kTrue);
  return builder.Build();
}

Dataset Snapshot2() {
  DatasetBuilder builder;
  // yelp re-crawled dannys and now marks it CLOSED; a new source and
  // a new fact appear.
  builder.SetVoteByName("yelp", "dannys", Vote::kFalse);
  builder.SetVoteByName("menupages", "m_bar", Vote::kTrue);
  builder.SetVoteByName("yp", "new_spot", Vote::kTrue);
  return builder.Build();
}

TEST(DatasetMergeTest, UnionOfSourcesAndFacts) {
  Dataset a = Snapshot1();
  Dataset b = Snapshot2();
  Dataset merged = MergeDatasets({&a, &b}).ValueOrDie();
  EXPECT_EQ(merged.num_sources(), 3);
  EXPECT_EQ(merged.num_facts(), 3);
  EXPECT_EQ(merged.num_votes(), 5);

  SourceId yelp = merged.FindSource("yelp").ValueOrDie();
  FactId dannys = merged.FindFact("dannys").ValueOrDie();
  FactId m_bar = merged.FindFact("m_bar").ValueOrDie();
  // Last-wins: the re-crawl's F replaces the old T.
  EXPECT_EQ(merged.GetVote(yelp, dannys), Vote::kFalse);
  EXPECT_EQ(merged.GetVote(yelp, m_bar), Vote::kTrue);
}

TEST(DatasetMergeTest, OrderMattersUnderLastWins) {
  Dataset a = Snapshot1();
  Dataset b = Snapshot2();
  Dataset merged = MergeDatasets({&b, &a}).ValueOrDie();
  SourceId yelp = merged.FindSource("yelp").ValueOrDie();
  FactId dannys = merged.FindFact("dannys").ValueOrDie();
  EXPECT_EQ(merged.GetVote(yelp, dannys), Vote::kTrue);  // a came last.
}

TEST(DatasetMergeTest, FalsePrevailsPolicy) {
  Dataset a = Snapshot1();
  Dataset b = Snapshot2();
  Dataset merged =
      MergeDatasets({&b, &a}, MergeConflictPolicy::kFalsePrevails)
          .ValueOrDie();
  SourceId yelp = merged.FindSource("yelp").ValueOrDie();
  FactId dannys = merged.FindFact("dannys").ValueOrDie();
  // Even though a (with T) came last, the F survives.
  EXPECT_EQ(merged.GetVote(yelp, dannys), Vote::kFalse);
}

TEST(DatasetMergeTest, ErrorPolicyRejectsConflicts) {
  Dataset a = Snapshot1();
  Dataset b = Snapshot2();
  auto merged = MergeDatasets({&a, &b}, MergeConflictPolicy::kError);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kAlreadyExists);
}

TEST(DatasetMergeTest, AgreeingDuplicatesAreNotConflicts) {
  Dataset a = Snapshot1();
  Dataset merged =
      MergeDatasets({&a, &a}, MergeConflictPolicy::kError).ValueOrDie();
  EXPECT_EQ(merged.num_votes(), 3);
}

TEST(DatasetMergeTest, EmptyAndNullInputs) {
  Dataset merged = MergeDatasets({}).ValueOrDie();
  EXPECT_EQ(merged.num_facts(), 0);
  EXPECT_FALSE(MergeDatasets({nullptr}).ok());
}

TEST(DatasetBuilderTest, GetVoteReadsBack) {
  DatasetBuilder builder;
  SourceId s = builder.AddSource("s");
  FactId f = builder.AddFact("f");
  EXPECT_EQ(builder.GetVote(s, f), Vote::kNone);
  ASSERT_TRUE(builder.SetVote(s, f, Vote::kFalse).ok());
  EXPECT_EQ(builder.GetVote(s, f), Vote::kFalse);
}

}  // namespace
}  // namespace corrob
