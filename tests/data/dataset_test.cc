#include "data/dataset.h"

#include <gtest/gtest.h>

namespace corrob {
namespace {

Dataset MakeSmall() {
  DatasetBuilder builder;
  SourceId s0 = builder.AddSource("s0");
  SourceId s1 = builder.AddSource("s1");
  FactId f0 = builder.AddFact("f0");
  FactId f1 = builder.AddFact("f1");
  FactId f2 = builder.AddFact("f2");
  EXPECT_TRUE(builder.SetVote(s0, f0, Vote::kTrue).ok());
  EXPECT_TRUE(builder.SetVote(s1, f0, Vote::kFalse).ok());
  EXPECT_TRUE(builder.SetVote(s1, f1, Vote::kTrue).ok());
  (void)f2;  // f2 gets no votes.
  return builder.Build();
}

TEST(DatasetBuilderTest, AddIsIdempotentByName) {
  DatasetBuilder builder;
  EXPECT_EQ(builder.AddSource("a"), builder.AddSource("a"));
  EXPECT_EQ(builder.AddFact("f"), builder.AddFact("f"));
  EXPECT_EQ(builder.num_sources(), 1);
  EXPECT_EQ(builder.num_facts(), 1);
}

TEST(DatasetBuilderTest, OutOfRangeIdsRejected) {
  DatasetBuilder builder;
  builder.AddSource("a");
  builder.AddFact("f");
  EXPECT_EQ(builder.SetVote(5, 0, Vote::kTrue).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(builder.SetVote(0, 5, Vote::kTrue).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(builder.SetVote(-1, 0, Vote::kTrue).code(),
            StatusCode::kOutOfRange);
}

TEST(DatasetBuilderTest, LastWriterWins) {
  DatasetBuilder builder;
  SourceId s = builder.AddSource("s");
  FactId f = builder.AddFact("f");
  ASSERT_TRUE(builder.SetVote(s, f, Vote::kTrue).ok());
  ASSERT_TRUE(builder.SetVote(s, f, Vote::kFalse).ok());
  Dataset d = builder.Build();
  EXPECT_EQ(d.GetVote(s, f), Vote::kFalse);
  EXPECT_EQ(d.num_votes(), 1);
}

TEST(DatasetBuilderTest, NoneVoteErases) {
  DatasetBuilder builder;
  SourceId s = builder.AddSource("s");
  FactId f = builder.AddFact("f");
  ASSERT_TRUE(builder.SetVote(s, f, Vote::kTrue).ok());
  ASSERT_TRUE(builder.SetVote(s, f, Vote::kNone).ok());
  Dataset d = builder.Build();
  EXPECT_EQ(d.GetVote(s, f), Vote::kNone);
  EXPECT_EQ(d.num_votes(), 0);
}

TEST(DatasetTest, ViewsAreConsistent) {
  Dataset d = MakeSmall();
  EXPECT_EQ(d.num_sources(), 2);
  EXPECT_EQ(d.num_facts(), 3);
  EXPECT_EQ(d.num_votes(), 3);

  auto f0_votes = d.VotesOnFact(0);
  ASSERT_EQ(f0_votes.size(), 2u);
  EXPECT_EQ(f0_votes[0].source, 0);
  EXPECT_EQ(f0_votes[0].vote, Vote::kTrue);
  EXPECT_EQ(f0_votes[1].source, 1);
  EXPECT_EQ(f0_votes[1].vote, Vote::kFalse);

  auto s1_votes = d.VotesBySource(1);
  ASSERT_EQ(s1_votes.size(), 2u);
  EXPECT_EQ(s1_votes[0].fact, 0);
  EXPECT_EQ(s1_votes[0].vote, Vote::kFalse);
  EXPECT_EQ(s1_votes[1].fact, 1);
  EXPECT_EQ(s1_votes[1].vote, Vote::kTrue);

  EXPECT_TRUE(d.VotesOnFact(2).empty());
}

TEST(DatasetTest, GetVoteForMissingPairIsNone) {
  Dataset d = MakeSmall();
  EXPECT_EQ(d.GetVote(0, 1), Vote::kNone);
  EXPECT_EQ(d.GetVote(0, 2), Vote::kNone);
}

TEST(DatasetTest, CountVotes) {
  Dataset d = MakeSmall();
  EXPECT_EQ(d.CountVotes(0, Vote::kTrue), 1);
  EXPECT_EQ(d.CountVotes(0, Vote::kFalse), 1);
  EXPECT_EQ(d.CountVotes(2, Vote::kTrue), 0);
}

TEST(DatasetTest, IsAffirmativeOnly) {
  Dataset d = MakeSmall();
  EXPECT_FALSE(d.IsAffirmativeOnly(0));  // Has an F vote.
  EXPECT_TRUE(d.IsAffirmativeOnly(1));
  EXPECT_FALSE(d.IsAffirmativeOnly(2));  // No votes at all.
}

TEST(DatasetTest, SignatureKey) {
  Dataset d = MakeSmall();
  EXPECT_EQ(d.SignatureKey(0), "0T|1F");
  EXPECT_EQ(d.SignatureKey(1), "1T");
  EXPECT_EQ(d.SignatureKey(2), "");
}

TEST(DatasetTest, FindByName) {
  Dataset d = MakeSmall();
  EXPECT_EQ(d.FindSource("s1").ValueOrDie(), 1);
  EXPECT_EQ(d.FindFact("f2").ValueOrDie(), 2);
  EXPECT_EQ(d.FindSource("zz").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(d.FindFact("zz").status().code(), StatusCode::kNotFound);
}

TEST(DatasetTest, NamesRoundTrip) {
  Dataset d = MakeSmall();
  EXPECT_EQ(d.source_name(0), "s0");
  EXPECT_EQ(d.fact_name(2), "f2");
}

TEST(DatasetTest, EmptyDataset) {
  DatasetBuilder builder;
  Dataset d = builder.Build();
  EXPECT_EQ(d.num_sources(), 0);
  EXPECT_EQ(d.num_facts(), 0);
  EXPECT_EQ(d.num_votes(), 0);
}

TEST(DatasetTest, VoteCharConversions) {
  EXPECT_EQ(VoteToChar(Vote::kTrue), 'T');
  EXPECT_EQ(VoteToChar(Vote::kFalse), 'F');
  EXPECT_EQ(VoteToChar(Vote::kNone), '-');
  EXPECT_EQ(VoteFromChar('T').ValueOrDie(), Vote::kTrue);
  EXPECT_EQ(VoteFromChar('f').ValueOrDie(), Vote::kFalse);
  EXPECT_EQ(VoteFromChar('-').ValueOrDie(), Vote::kNone);
  EXPECT_FALSE(VoteFromChar('x').ok());
}

}  // namespace
}  // namespace corrob
