#include "data/question_dataset.h"

#include <gtest/gtest.h>

namespace corrob {
namespace {

QuestionDataset MakeTwoQuestions() {
  QuestionDatasetBuilder builder;
  QuestionId q0 = builder.AddQuestion("capital?");
  FactId paris = builder.AddAnswer(q0, "paris", true);
  FactId lyon = builder.AddAnswer(q0, "lyon", false);
  QuestionId q1 = builder.AddQuestion("year?");
  FactId y1999 = builder.AddAnswer(q1, "1999", false);
  FactId y2000 = builder.AddAnswer(q1, "2000", true);
  SourceId u0 = builder.AddSource("u0");
  SourceId u1 = builder.AddSource("u1");
  EXPECT_TRUE(builder.SetVote(u0, paris, Vote::kTrue).ok());
  EXPECT_TRUE(builder.SetVote(u1, lyon, Vote::kTrue).ok());
  EXPECT_TRUE(builder.SetVote(u0, y2000, Vote::kTrue).ok());
  (void)y1999;
  return builder.Build().ValueOrDie();
}

TEST(QuestionDatasetTest, StructureAndTruth) {
  QuestionDataset qd = MakeTwoQuestions();
  EXPECT_EQ(qd.num_questions(), 2);
  EXPECT_EQ(qd.dataset().num_facts(), 4);
  EXPECT_EQ(qd.question_of(0), 0);
  EXPECT_EQ(qd.question_of(3), 1);
  EXPECT_EQ(qd.answers(0), (std::vector<FactId>{0, 1}));
  EXPECT_TRUE(qd.truth().IsTrue(0));    // paris
  EXPECT_FALSE(qd.truth().IsTrue(1));   // lyon
  EXPECT_TRUE(qd.truth().IsTrue(3));    // 2000
}

TEST(QuestionDatasetTest, NegativeClosureAddsImplicitFVotes) {
  QuestionDataset qd = MakeTwoQuestions();
  Dataset closed = qd.WithNegativeClosure();
  // u0 voted paris -> implicit F on lyon.
  EXPECT_EQ(closed.GetVote(0, 0), Vote::kTrue);
  EXPECT_EQ(closed.GetVote(0, 1), Vote::kFalse);
  // u1 voted lyon -> implicit F on paris.
  EXPECT_EQ(closed.GetVote(1, 0), Vote::kFalse);
  EXPECT_EQ(closed.GetVote(1, 1), Vote::kTrue);
  // u0 voted 2000 -> implicit F on 1999; u1 silent on q1.
  EXPECT_EQ(closed.GetVote(0, 2), Vote::kFalse);
  EXPECT_EQ(closed.GetVote(1, 2), Vote::kNone);
  EXPECT_EQ(closed.GetVote(1, 3), Vote::kNone);
}

TEST(QuestionDatasetTest, ExplicitVotesSurviveClosure) {
  QuestionDatasetBuilder builder;
  QuestionId q = builder.AddQuestion("q");
  FactId a = builder.AddAnswer(q, "a", true);
  FactId b = builder.AddAnswer(q, "b", false);
  FactId c = builder.AddAnswer(q, "c", false);
  SourceId u = builder.AddSource("u");
  // The user backs both a and b (changing bets is allowed); closure
  // must not overwrite the explicit T on b with an implicit F.
  EXPECT_TRUE(builder.SetVote(u, a, Vote::kTrue).ok());
  EXPECT_TRUE(builder.SetVote(u, b, Vote::kTrue).ok());
  QuestionDataset qd = builder.Build().ValueOrDie();
  Dataset closed = qd.WithNegativeClosure();
  EXPECT_EQ(closed.GetVote(0, a), Vote::kTrue);
  EXPECT_EQ(closed.GetVote(0, b), Vote::kTrue);
  EXPECT_EQ(closed.GetVote(0, c), Vote::kFalse);
}

TEST(QuestionDatasetTest, BuildRejectsZeroCorrectAnswers) {
  QuestionDatasetBuilder builder;
  QuestionId q = builder.AddQuestion("broken");
  builder.AddAnswer(q, "a", false);
  builder.AddAnswer(q, "b", false);
  auto result = builder.Build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(QuestionDatasetTest, BuildRejectsTwoCorrectAnswers) {
  QuestionDatasetBuilder builder;
  QuestionId q = builder.AddQuestion("broken");
  builder.AddAnswer(q, "a", true);
  builder.AddAnswer(q, "b", true);
  auto result = builder.Build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace corrob
