#include "synth/synthetic.h"

#include <gtest/gtest.h>

#include "data/dataset_stats.h"

namespace corrob {
namespace {

SyntheticOptions SmallOptions() {
  SyntheticOptions options;
  options.num_sources = 8;
  options.num_inaccurate = 2;
  options.num_facts = 2000;
  options.eta = 0.03;
  options.seed = 11;
  return options;
}

TEST(SyntheticTest, ShapeMatchesOptions) {
  SyntheticDataset data = GenerateSynthetic(SmallOptions()).ValueOrDie();
  EXPECT_EQ(data.dataset.num_sources(), 8);
  EXPECT_EQ(data.dataset.num_facts(), 2000);
  EXPECT_EQ(data.truth.num_facts(), 2000);
  EXPECT_EQ(data.profiles.size(), 8u);
}

TEST(SyntheticTest, DeterministicForFixedSeed) {
  SyntheticDataset a = GenerateSynthetic(SmallOptions()).ValueOrDie();
  SyntheticDataset b = GenerateSynthetic(SmallOptions()).ValueOrDie();
  EXPECT_EQ(a.truth.labels(), b.truth.labels());
  EXPECT_EQ(a.dataset.num_votes(), b.dataset.num_votes());
  for (FactId f = 0; f < 100; ++f) {
    EXPECT_EQ(a.dataset.SignatureKey(f), b.dataset.SignatureKey(f));
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticOptions other = SmallOptions();
  other.seed = 12;
  SyntheticDataset a = GenerateSynthetic(SmallOptions()).ValueOrDie();
  SyntheticDataset b = GenerateSynthetic(other).ValueOrDie();
  EXPECT_NE(a.dataset.num_votes(), b.dataset.num_votes());
}

TEST(SyntheticTest, ProfilesRespectPaperRanges) {
  SyntheticDataset data = GenerateSynthetic(SmallOptions()).ValueOrDie();
  for (size_t s = 0; s < data.profiles.size(); ++s) {
    const SyntheticSourceProfile& p = data.profiles[s];
    EXPECT_EQ(p.accurate, s >= 2u);
    if (p.accurate) {
      EXPECT_GE(p.trust, 0.7);
      EXPECT_LE(p.trust, 1.0);
      EXPECT_GE(p.f_vote_prob, 0.0);
      EXPECT_LE(p.f_vote_prob, 0.5);
    } else {
      EXPECT_GE(p.trust, 0.5);
      EXPECT_LE(p.trust, 0.7);
      EXPECT_DOUBLE_EQ(p.f_vote_prob, 0.0);
    }
    // Coverage = 1 - trust + 0.2·U[0,1].
    EXPECT_GE(p.coverage, 1.0 - p.trust - 1e-12);
    EXPECT_LE(p.coverage, 1.0 - p.trust + 0.2 + 1e-12);
  }
}

TEST(SyntheticTest, InaccurateSourcesNeverCastFalseVotes) {
  SyntheticDataset data = GenerateSynthetic(SmallOptions()).ValueOrDie();
  std::vector<int64_t> f_votes = CountFalseVotesBySource(data.dataset);
  EXPECT_EQ(f_votes[0], 0);
  EXPECT_EQ(f_votes[1], 0);
}

TEST(SyntheticTest, FalseVotesOnlyOnFalseFacts) {
  SyntheticDataset data = GenerateSynthetic(SmallOptions()).ValueOrDie();
  for (FactId f = 0; f < data.dataset.num_facts(); ++f) {
    if (data.dataset.CountVotes(f, Vote::kFalse) > 0) {
      EXPECT_FALSE(data.truth.IsTrue(f)) << "fact " << f;
    }
  }
}

TEST(SyntheticTest, EveryFactIsVisible) {
  SyntheticDataset data = GenerateSynthetic(SmallOptions()).ValueOrDie();
  for (FactId f = 0; f < data.dataset.num_facts(); ++f) {
    EXPECT_FALSE(data.dataset.VotesOnFact(f).empty()) << "fact " << f;
  }
}

TEST(SyntheticTest, EtaControlsFalseVoteFactFraction) {
  SyntheticOptions low = SmallOptions();
  low.eta = 0.01;
  SyntheticOptions high = SmallOptions();
  high.eta = 0.05;
  double frac_low =
      static_cast<double>(CountFactsWithFalseVotes(
          GenerateSynthetic(low).ValueOrDie().dataset)) /
      low.num_facts;
  double frac_high =
      static_cast<double>(CountFactsWithFalseVotes(
          GenerateSynthetic(high).ValueOrDie().dataset)) /
      high.num_facts;
  EXPECT_LT(frac_low, frac_high);
  // The realized fraction tracks η up to visibility conditioning.
  EXPECT_NEAR(frac_low, 0.01, 0.01);
  EXPECT_NEAR(frac_high, 0.05, 0.03);
}

TEST(SyntheticTest, MostFactsAreAffirmativeOnly) {
  // The paper's regime: |F*| >> |F - F*|.
  SyntheticDataset data = GenerateSynthetic(SmallOptions()).ValueOrDie();
  EXPECT_GT(AffirmativeOnlyFraction(data.dataset), 0.9);
}

TEST(SyntheticTest, SourcePrecisionTracksGeneratedTrust) {
  // §3.1 defines the trust score as the source's precision; the
  // generator's error model is built to realize that (visibility
  // conditioning shifts precision upward a little).
  SyntheticOptions options = SmallOptions();
  options.num_facts = 10000;
  SyntheticDataset data = GenerateSynthetic(options).ValueOrDie();
  GoldenSet golden = GoldenSet::FromFullTruth(data.truth);
  std::vector<double> accuracy = SourceAccuracyOnGolden(data.dataset, golden);
  for (size_t s = 0; s < data.profiles.size(); ++s) {
    EXPECT_NEAR(accuracy[s], data.profiles[s].trust, 0.15)
        << "source " << s << " generated trust " << data.profiles[s].trust;
  }
}

TEST(SyntheticTest, NoAccurateSourcesMeansNoFalseVotes) {
  SyntheticOptions options = SmallOptions();
  options.num_inaccurate = options.num_sources;
  SyntheticDataset data = GenerateSynthetic(options).ValueOrDie();
  EXPECT_EQ(CountFactsWithFalseVotes(data.dataset), 0);
}

TEST(SyntheticTest, OptionValidation) {
  SyntheticOptions bad = SmallOptions();
  bad.num_sources = 0;
  EXPECT_FALSE(GenerateSynthetic(bad).ok());

  bad = SmallOptions();
  bad.num_inaccurate = 99;
  EXPECT_FALSE(GenerateSynthetic(bad).ok());

  bad = SmallOptions();
  bad.num_facts = 0;
  EXPECT_FALSE(GenerateSynthetic(bad).ok());

  bad = SmallOptions();
  bad.eta = 0.8;  // > 1 - true_fraction
  EXPECT_FALSE(GenerateSynthetic(bad).ok());

  bad = SmallOptions();
  bad.true_fraction = 1.5;
  EXPECT_FALSE(GenerateSynthetic(bad).ok());
}

}  // namespace
}  // namespace corrob
