#include "synth/rumor_sim.h"

#include <gtest/gtest.h>

#include "core/registry.h"
#include "data/dataset_stats.h"
#include "eval/metrics.h"

namespace corrob {
namespace {

RumorSimOptions SmallOptions() {
  RumorSimOptions options;
  options.num_rumors = 1200;
  options.seed = 12;
  return options;
}

TEST(RumorSimTest, ShapeMatchesOptions) {
  RumorCorpus corpus = GenerateRumors(SmallOptions()).ValueOrDie();
  EXPECT_EQ(corpus.dataset.num_facts(), 1200);
  EXPECT_EQ(corpus.dataset.num_sources(), 17);  // 4 + 8 + 5
  ASSERT_EQ(corpus.tiers.size(), 17u);
  EXPECT_EQ(corpus.tiers[0], BlogTier::kInsider);
  EXPECT_EQ(corpus.tiers[4], BlogTier::kAggregator);
  EXPECT_EQ(corpus.tiers[12], BlogTier::kTabloid);
}

TEST(RumorSimTest, EveryRumorHasAStatement) {
  RumorCorpus corpus = GenerateRumors(SmallOptions()).ValueOrDie();
  for (FactId f = 0; f < corpus.dataset.num_facts(); ++f) {
    EXPECT_FALSE(corpus.dataset.VotesOnFact(f).empty()) << f;
  }
}

TEST(RumorSimTest, OnlyInsidersDebunkAndOnlyFalseRumors) {
  RumorCorpus corpus = GenerateRumors(SmallOptions()).ValueOrDie();
  std::vector<int64_t> f_votes = CountFalseVotesBySource(corpus.dataset);
  for (SourceId s = 0; s < corpus.dataset.num_sources(); ++s) {
    if (corpus.tiers[static_cast<size_t>(s)] != BlogTier::kInsider) {
      EXPECT_EQ(f_votes[static_cast<size_t>(s)], 0) << s;
    }
  }
  for (FactId f = 0; f < corpus.dataset.num_facts(); ++f) {
    if (corpus.dataset.CountVotes(f, Vote::kFalse) > 0) {
      EXPECT_FALSE(corpus.truth.IsTrue(f)) << f;
    }
  }
}

TEST(RumorSimTest, FalseRumorsManufactureConsensus) {
  // The point of the domain: fabricated rumors collect multiple
  // affirmations through the reblog cascade.
  RumorCorpus corpus = GenerateRumors(SmallOptions()).ValueOrDie();
  int64_t false_with_consensus = 0;
  int64_t false_total = 0;
  for (FactId f = 0; f < corpus.dataset.num_facts(); ++f) {
    if (corpus.truth.IsTrue(f)) continue;
    ++false_total;
    if (corpus.dataset.CountVotes(f, Vote::kTrue) >= 2) {
      ++false_with_consensus;
    }
  }
  ASSERT_GT(false_total, 0);
  EXPECT_GT(static_cast<double>(false_with_consensus) /
                static_cast<double>(false_total),
            0.5);
}

TEST(RumorSimTest, Deterministic) {
  RumorCorpus a = GenerateRumors(SmallOptions()).ValueOrDie();
  RumorCorpus b = GenerateRumors(SmallOptions()).ValueOrDie();
  EXPECT_EQ(a.dataset.num_votes(), b.dataset.num_votes());
  EXPECT_EQ(a.truth.labels(), b.truth.labels());
}

TEST(RumorSimTest, IncEstHeuRanksInsidersAboveTabloids) {
  RumorCorpus corpus = GenerateRumors(SmallOptions()).ValueOrDie();
  auto algorithm = MakeCorroborator("IncEstHeu").ValueOrDie();
  CorroborationResult result =
      algorithm->Run(corpus.dataset).ValueOrDie();
  double insider_trust = 0.0;
  double tabloid_trust = 0.0;
  int insiders = 0, tabloids = 0;
  for (SourceId s = 0; s < corpus.dataset.num_sources(); ++s) {
    if (corpus.tiers[static_cast<size_t>(s)] == BlogTier::kInsider) {
      insider_trust += result.source_trust[static_cast<size_t>(s)];
      ++insiders;
    } else if (corpus.tiers[static_cast<size_t>(s)] == BlogTier::kTabloid) {
      tabloid_trust += result.source_trust[static_cast<size_t>(s)];
      ++tabloids;
    }
  }
  EXPECT_GT(insider_trust / insiders, tabloid_trust / tabloids + 0.1);
}

TEST(RumorSimTest, IncEstHeuBeatsVotingOnRumors) {
  RumorCorpus corpus = GenerateRumors(SmallOptions()).ValueOrDie();
  auto inc = MakeCorroborator("IncEstHeu").ValueOrDie();
  auto voting = MakeCorroborator("Voting").ValueOrDie();
  double inc_acc = EvaluateOnTruth(inc->Run(corpus.dataset).ValueOrDie(),
                                   corpus.truth)
                       .accuracy;
  double voting_acc =
      EvaluateOnTruth(voting->Run(corpus.dataset).ValueOrDie(),
                      corpus.truth)
          .accuracy;
  EXPECT_GT(inc_acc, voting_acc + 0.05);
}

TEST(RumorSimTest, OptionValidation) {
  RumorSimOptions bad = SmallOptions();
  bad.num_rumors = 0;
  EXPECT_FALSE(GenerateRumors(bad).ok());
  bad = SmallOptions();
  bad.num_tabloids = 0;
  EXPECT_FALSE(GenerateRumors(bad).ok());
  bad = SmallOptions();
  bad.virality = 1.5;
  EXPECT_FALSE(GenerateRumors(bad).ok());
}

}  // namespace
}  // namespace corrob
