#include "synth/hubdub_sim.h"

#include <gtest/gtest.h>

namespace corrob {
namespace {

HubdubSimOptions SmallOptions() {
  HubdubSimOptions options;
  options.num_questions = 50;
  options.num_answers = 120;
  options.num_users = 60;
  options.seed = 4;
  return options;
}

TEST(HubdubSimTest, DefaultShapeMatchesPaper) {
  QuestionDataset qd = GenerateHubdub(HubdubSimOptions{}).ValueOrDie();
  EXPECT_EQ(qd.num_questions(), 357);
  EXPECT_EQ(qd.dataset().num_facts(), 830);
  EXPECT_EQ(qd.dataset().num_sources(), 471);
  EXPECT_GT(qd.dataset().num_votes(), 357);
}

TEST(HubdubSimTest, EveryQuestionHasOneCorrectAnswer) {
  QuestionDataset qd = GenerateHubdub(SmallOptions()).ValueOrDie();
  for (QuestionId q = 0; q < qd.num_questions(); ++q) {
    const std::vector<FactId>& answers = qd.answers(q);
    EXPECT_GE(answers.size(), 2u);
    int correct = 0;
    for (FactId f : answers) {
      if (qd.truth().IsTrue(f)) ++correct;
    }
    EXPECT_EQ(correct, 1) << "question " << q;
  }
}

TEST(HubdubSimTest, VotesAreAffirmativeBets) {
  QuestionDataset qd = GenerateHubdub(SmallOptions()).ValueOrDie();
  for (SourceId u = 0; u < qd.dataset().num_sources(); ++u) {
    for (const FactVote& fv : qd.dataset().VotesBySource(u)) {
      EXPECT_EQ(fv.vote, Vote::kTrue);
    }
  }
}

TEST(HubdubSimTest, UsersBetOncePerQuestion) {
  QuestionDataset qd = GenerateHubdub(SmallOptions()).ValueOrDie();
  for (SourceId u = 0; u < qd.dataset().num_sources(); ++u) {
    std::vector<int> bets(static_cast<size_t>(qd.num_questions()), 0);
    for (const FactVote& fv : qd.dataset().VotesBySource(u)) {
      ++bets[static_cast<size_t>(qd.question_of(fv.fact))];
    }
    for (int count : bets) EXPECT_LE(count, 1);
  }
}

TEST(HubdubSimTest, ClosureProducesConflictingVotes) {
  QuestionDataset qd = GenerateHubdub(SmallOptions()).ValueOrDie();
  Dataset closed = qd.WithNegativeClosure();
  int64_t f_votes = 0;
  for (FactId f = 0; f < closed.num_facts(); ++f) {
    f_votes += closed.CountVotes(f, Vote::kFalse);
  }
  EXPECT_GT(f_votes, 0);
  EXPECT_GT(closed.num_votes(), qd.dataset().num_votes());
}

TEST(HubdubSimTest, ParticipationIsSkewed) {
  QuestionDataset qd = GenerateHubdub(HubdubSimOptions{}).ValueOrDie();
  // The most active user bets far more than the median user.
  std::vector<size_t> counts;
  for (SourceId u = 0; u < qd.dataset().num_sources(); ++u) {
    counts.push_back(qd.dataset().VotesBySource(u).size());
  }
  std::sort(counts.begin(), counts.end());
  EXPECT_GT(counts.back(), 4 * counts[counts.size() / 2] + 4);
}

TEST(HubdubSimTest, Deterministic) {
  QuestionDataset a = GenerateHubdub(SmallOptions()).ValueOrDie();
  QuestionDataset b = GenerateHubdub(SmallOptions()).ValueOrDie();
  EXPECT_EQ(a.dataset().num_votes(), b.dataset().num_votes());
  EXPECT_EQ(a.truth().labels(), b.truth().labels());
}

TEST(HubdubSimTest, OptionValidation) {
  HubdubSimOptions bad = SmallOptions();
  bad.num_answers = 60;  // < 2 per question.
  EXPECT_FALSE(GenerateHubdub(bad).ok());

  bad = SmallOptions();
  bad.num_users = 0;
  EXPECT_FALSE(GenerateHubdub(bad).ok());

  bad = SmallOptions();
  bad.accuracy_alpha = 0.5;
  EXPECT_FALSE(GenerateHubdub(bad).ok());
}

}  // namespace
}  // namespace corrob
