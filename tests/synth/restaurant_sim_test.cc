#include "synth/restaurant_sim.h"

#include <set>

#include <gtest/gtest.h>

#include "data/dataset_stats.h"
#include "text/address.h"

namespace corrob {
namespace {

RestaurantSimOptions SmallCorpus() {
  RestaurantSimOptions options;
  options.num_facts = 8000;
  options.golden_true = 120;
  options.golden_false = 90;
  options.seed = 3;
  return options;
}

TEST(RestaurantCorpusTest, PaperSourceSpecs) {
  std::vector<RestaurantSourceSpec> specs = PaperRestaurantSources();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].name, "YellowPages");
  EXPECT_DOUBLE_EQ(specs[0].coverage, 0.59);
  EXPECT_DOUBLE_EQ(specs[0].accuracy, 0.59);
  EXPECT_EQ(specs[2].name, "MenuPages");
  EXPECT_EQ(specs[2].f_votes, 256);
  EXPECT_EQ(specs[5].name, "Yelp");
  EXPECT_EQ(specs[5].f_votes, 425);
}

TEST(RestaurantCorpusTest, ShapeAndGoldenSplit) {
  RestaurantCorpus corpus = GenerateRestaurantCorpus(SmallCorpus()).ValueOrDie();
  EXPECT_EQ(corpus.dataset.num_facts(), 8000);
  EXPECT_EQ(corpus.dataset.num_sources(), 6);
  EXPECT_EQ(corpus.golden.size(), 210u);
  EXPECT_EQ(corpus.golden.CountTrue(), 120);
  EXPECT_EQ(corpus.golden.CountFalse(), 90);
  // Golden labels agree with the full truth.
  for (size_t i = 0; i < corpus.golden.size(); ++i) {
    EXPECT_EQ(corpus.golden.label(i), corpus.truth.IsTrue(corpus.golden.fact(i)));
  }
  // Golden facts are distinct.
  std::set<FactId> unique;
  for (size_t i = 0; i < corpus.golden.size(); ++i) {
    unique.insert(corpus.golden.fact(i));
  }
  EXPECT_EQ(unique.size(), corpus.golden.size());
}

TEST(RestaurantCorpusTest, EveryListingIsVisible) {
  RestaurantCorpus corpus = GenerateRestaurantCorpus(SmallCorpus()).ValueOrDie();
  for (FactId f = 0; f < corpus.dataset.num_facts(); ++f) {
    EXPECT_FALSE(corpus.dataset.VotesOnFact(f).empty()) << "fact " << f;
  }
}

TEST(RestaurantCorpusTest, CoverageTracksTable3) {
  RestaurantSimOptions options = SmallCorpus();
  options.num_facts = 20000;
  RestaurantCorpus corpus = GenerateRestaurantCorpus(options).ValueOrDie();
  SourceStats stats = ComputeSourceStats(corpus.dataset);
  const auto specs = PaperRestaurantSources();
  for (size_t s = 0; s < specs.size(); ++s) {
    EXPECT_NEAR(stats.coverage[s], specs[s].coverage, 0.06)
        << specs[s].name;
  }
}

TEST(RestaurantCorpusTest, GoldenAccuracyTracksTable3) {
  RestaurantSimOptions options = SmallCorpus();
  options.num_facts = 20000;
  options.golden_true = 340;
  options.golden_false = 261;
  RestaurantCorpus corpus = GenerateRestaurantCorpus(options).ValueOrDie();
  std::vector<double> accuracy =
      SourceAccuracyOnGolden(corpus.dataset, corpus.golden);
  const auto specs = PaperRestaurantSources();
  for (size_t s = 0; s < specs.size(); ++s) {
    EXPECT_NEAR(accuracy[s], specs[s].accuracy, 0.09) << specs[s].name;
  }
}

TEST(RestaurantCorpusTest, FalseVoteCountsMatchSpecs) {
  RestaurantCorpus corpus = GenerateRestaurantCorpus(SmallCorpus()).ValueOrDie();
  std::vector<int64_t> f_votes = CountFalseVotesBySource(corpus.dataset);
  const auto specs = PaperRestaurantSources();
  for (size_t s = 0; s < specs.size(); ++s) {
    EXPECT_EQ(f_votes[s], specs[s].f_votes) << specs[s].name;
  }
}

TEST(RestaurantCorpusTest, FalseVotesSitOnDefunctListings) {
  RestaurantCorpus corpus = GenerateRestaurantCorpus(SmallCorpus()).ValueOrDie();
  for (FactId f = 0; f < corpus.dataset.num_facts(); ++f) {
    if (corpus.dataset.CountVotes(f, Vote::kFalse) > 0) {
      EXPECT_FALSE(corpus.truth.IsTrue(f));
    }
  }
}

TEST(RestaurantCorpusTest, Deterministic) {
  RestaurantCorpus a = GenerateRestaurantCorpus(SmallCorpus()).ValueOrDie();
  RestaurantCorpus b = GenerateRestaurantCorpus(SmallCorpus()).ValueOrDie();
  EXPECT_EQ(a.dataset.num_votes(), b.dataset.num_votes());
  EXPECT_EQ(a.truth.labels(), b.truth.labels());
}

TEST(RestaurantCorpusTest, OptionValidation) {
  RestaurantSimOptions bad = SmallCorpus();
  bad.num_facts = 0;
  EXPECT_FALSE(GenerateRestaurantCorpus(bad).ok());

  bad = SmallCorpus();
  bad.sources.clear();
  EXPECT_FALSE(GenerateRestaurantCorpus(bad).ok());

  bad = SmallCorpus();
  bad.golden_true = 999999;  // Larger than the corpus can supply.
  EXPECT_FALSE(GenerateRestaurantCorpus(bad).ok());

  bad = SmallCorpus();
  bad.false_fraction = 0.0;  // Infeasible accuracy conditioning.
  EXPECT_FALSE(GenerateRestaurantCorpus(bad).ok());
}

RawCrawlOptions SmallCrawl() {
  RawCrawlOptions options;
  options.num_restaurants = 300;
  options.seed = 5;
  return options;
}

TEST(RawCrawlTest, ProducesListingsWithHints) {
  RawCrawl crawl = GenerateRawCrawl(SmallCrawl()).ValueOrDie();
  EXPECT_EQ(crawl.entity_keys.size(), 300u);
  EXPECT_EQ(crawl.entity_truth.size(), 300u);
  EXPECT_GT(crawl.listings.size(), 300u);
  for (const RawListing& listing : crawl.listings) {
    EXPECT_FALSE(listing.source.empty());
    EXPECT_FALSE(listing.name.empty());
    EXPECT_FALSE(listing.address.empty());
    EXPECT_FALSE(listing.entity_hint.empty());
  }
}

TEST(RawCrawlTest, DuplicatesShareNormalizedAddress) {
  // Listings of the same entity must land in the same dedup block:
  // the generator only applies normalization-safe address variants.
  RawCrawl crawl = GenerateRawCrawl(SmallCrawl()).ValueOrDie();
  std::map<std::string, std::set<std::string>> addresses_by_entity;
  for (const RawListing& listing : crawl.listings) {
    addresses_by_entity[listing.entity_hint].insert(
        NormalizeAddress(listing.address));
  }
  for (const auto& [entity, addresses] : addresses_by_entity) {
    EXPECT_EQ(addresses.size(), 1u) << entity;
  }
}

TEST(RawCrawlTest, ClosedMarkersOnlyOnDefunctRestaurants) {
  RawCrawl crawl = GenerateRawCrawl(SmallCrawl()).ValueOrDie();
  std::map<std::string, size_t> index;
  for (size_t i = 0; i < crawl.entity_keys.size(); ++i) {
    index[crawl.entity_keys[i]] = i;
  }
  int closed = 0;
  for (const RawListing& listing : crawl.listings) {
    if (listing.closed) {
      ++closed;
      EXPECT_FALSE(crawl.entity_truth[index[listing.entity_hint]]);
    }
  }
  EXPECT_GT(closed, 0);
}

TEST(RawCrawlTest, Deterministic) {
  RawCrawl a = GenerateRawCrawl(SmallCrawl()).ValueOrDie();
  RawCrawl b = GenerateRawCrawl(SmallCrawl()).ValueOrDie();
  ASSERT_EQ(a.listings.size(), b.listings.size());
  for (size_t i = 0; i < a.listings.size(); ++i) {
    EXPECT_EQ(a.listings[i].name, b.listings[i].name);
    EXPECT_EQ(a.listings[i].address, b.listings[i].address);
  }
}

}  // namespace
}  // namespace corrob
