#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace corrob {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 1000);
  }
}

TEST(ThreadPoolTest, WaitBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&done] {
      // Tiny busy work to give Wait something to wait for.
      volatile int x = 0;
      for (int j = 0; j < 10000; ++j) x = x + j;
      done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(3);
  pool.Wait();  // Must not deadlock.
  SUCCEED();
}

TEST(ThreadPoolTest, ShutdownDrainsQueue) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 200);
  pool.Shutdown();  // Idempotent.
}

TEST(ThreadPoolTest, ClampsThreadCount) {
  ThreadPool pool(-3);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr int64_t kCount = 500;
  std::vector<std::atomic<int>> hits(kCount);
  for (auto& h : hits) h.store(0);
  ParallelFor(kCount, 8, [&](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelForTest, SequentialFallback) {
  std::vector<int64_t> order;
  ParallelFor(5, 1, [&](int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroAndNegativeCounts) {
  int calls = 0;
  ParallelFor(0, 4, [&](int64_t) { ++calls; });
  ParallelFor(-5, 4, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, ParallelSumMatchesSequential) {
  constexpr int64_t kCount = 10000;
  std::atomic<int64_t> sum{0};
  ParallelFor(kCount, 8, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), kCount * (kCount - 1) / 2);
}

TEST(DefaultThreadCountTest, Positive) {
  EXPECT_GE(DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace corrob
