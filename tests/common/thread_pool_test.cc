#include "common/thread_pool.h"

#include <atomic>
#include <bit>
#include <cstdint>
#include <numeric>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace corrob {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 1000);
  }
}

TEST(ThreadPoolTest, WaitBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&done] {
      // Tiny busy work to give Wait something to wait for.
      volatile int x = 0;
      for (int j = 0; j < 10000; ++j) x = x + j;
      done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(3);
  pool.Wait();  // Must not deadlock.
  SUCCEED();
}

TEST(ThreadPoolTest, ShutdownDrainsQueue) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 200);
  pool.Shutdown();  // Idempotent.
}

TEST(ThreadPoolTest, ClampsThreadCount) {
  ThreadPool pool(-3);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr int64_t kCount = 500;
  std::vector<std::atomic<int>> hits(kCount);
  for (auto& h : hits) h.store(0);
  ParallelFor(kCount, 8, [&](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelForTest, SequentialFallback) {
  std::vector<int64_t> order;
  ParallelFor(5, 1, [&](int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroAndNegativeCounts) {
  int calls = 0;
  ParallelFor(0, 4, [&](int64_t) { ++calls; });
  ParallelFor(-5, 4, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, ParallelSumMatchesSequential) {
  constexpr int64_t kCount = 10000;
  std::atomic<int64_t> sum{0};
  ParallelFor(kCount, 8, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), kCount * (kCount - 1) / 2);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsDroppedNoOp) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Shutdown();
  // Previously undefined behavior (notified a dead worker set and the
  // task leaked in the queue); now a logged drop.
  pool.Submit([&counter] { counter.fetch_add(100); });
  pool.Wait();  // Must not hang on the dropped task.
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ShutdownIdempotentAfterDroppedSubmit) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Submit([] {});
  pool.Shutdown();  // Second shutdown after a dropped submit: no hang.
  SUCCEED();
}

TEST(ThreadPoolTest, WaitWithEmptyQueueAfterShutdown) {
  ThreadPool pool(3);
  pool.Shutdown();
  pool.Wait();  // Nothing in flight; must return immediately.
  SUCCEED();
}

TEST(ParallelForTest, NestedParallelForDoesNotDeadlock) {
  // Each outer iteration spins up its own inner ParallelFor; the
  // pools are independent, so nesting must compose.
  std::atomic<int> hits{0};
  ParallelFor(4, 2, [&](int64_t) {
    ParallelFor(8, 2, [&](int64_t) { hits.fetch_add(1); });
  });
  EXPECT_EQ(hits.load(), 32);
}

TEST(ParallelApplyTest, RangesCoverEveryIndexExactlyOnce) {
  constexpr int64_t kCount = 1000;
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(kCount);
  for (auto& h : hits) h.store(0);
  ParallelApply(&pool, kCount, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (int64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelApplyTest, NullPoolRunsInlineAsSingleRange) {
  std::vector<std::pair<int64_t, int64_t>> ranges;
  ParallelApply(nullptr, 7, [&](int64_t begin, int64_t end) {
    ranges.emplace_back(begin, end);
  });
  EXPECT_EQ(ranges,
            (std::vector<std::pair<int64_t, int64_t>>{{0, 7}}));
}

TEST(ParallelApplyTest, ZeroAndNegativeCounts) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelApply(&pool, 0, [&](int64_t, int64_t) { ++calls; });
  ParallelApply(nullptr, -3, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelApplyTest, CompleteSweepsReportTrue) {
  ThreadPool pool(2);
  CancellationToken token;
  StopSignal stop(&token, Deadline());
  int64_t covered = 0;
  EXPECT_TRUE(ParallelApply(nullptr, 9,
                            [&](int64_t begin, int64_t end) {
                              covered += end - begin;
                            }));
  EXPECT_EQ(covered, 9);
  std::atomic<int64_t> parallel_covered{0};
  EXPECT_TRUE(ParallelApply(
      &pool, 100,
      [&](int64_t begin, int64_t end) {
        parallel_covered.fetch_add(end - begin);
      },
      &stop));
  EXPECT_EQ(parallel_covered.load(), 100);
}

TEST(ParallelApplyTest, FiredStopCutsTheSweepShort) {
  CancellationToken token;
  token.Cancel();
  StopSignal stop(&token, Deadline());
  // Inline path: a large count would slice into multiple chunks; a
  // pre-fired stop must skip them all and report the incomplete run.
  int64_t calls = 0;
  EXPECT_FALSE(ParallelApply(
      nullptr, 1000000, [&](int64_t, int64_t) { ++calls; }, &stop));
  EXPECT_EQ(calls, 0);

  ThreadPool pool(4);
  std::atomic<int64_t> parallel_calls{0};
  EXPECT_FALSE(ParallelApply(
      &pool, 1000000,
      [&](int64_t, int64_t) { parallel_calls.fetch_add(1); }, &stop));
}

TEST(ParallelApplyTest, DisarmedStopIsTheLegacyPath) {
  // A null stop (and an unarmed one) must not change the chunk
  // geometry: the inline path stays one single range.
  std::vector<std::pair<int64_t, int64_t>> ranges;
  StopSignal unarmed;
  EXPECT_TRUE(ParallelApply(
      nullptr, 7,
      [&](int64_t begin, int64_t end) { ranges.emplace_back(begin, end); },
      &unarmed));
  EXPECT_EQ(ranges,
            (std::vector<std::pair<int64_t, int64_t>>{{0, 7}}));
}

TEST(ParallelApplyTest, ReusableAcrossIterations) {
  // The hot-loop usage pattern: one pool, many sweeps.
  ThreadPool pool(3);
  std::vector<std::atomic<int64_t>> slot(64);
  for (auto& s : slot) s.store(0);
  for (int iter = 0; iter < 50; ++iter) {
    ParallelApply(&pool, 64, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) slot[i].fetch_add(i);
    });
  }
  for (int64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(slot[i].load(), 50 * i);
  }
}

TEST(DeterministicReduceTest, BitIdenticalAcrossPoolSizes) {
  // A sum of irrational-ish doubles is order-sensitive in the last
  // ulps; the fixed chunk layout + fixed fold order must erase any
  // dependence on the worker count.
  constexpr int64_t kCount = 4097;  // Not a multiple of the grain.
  auto map = [](int64_t begin, int64_t end) {
    double sum = 0.0;
    for (int64_t i = begin; i < end; ++i) {
      sum += 1.0 / (1.0 + static_cast<double>(i) * 0.137);
    }
    return sum;
  };
  auto combine = [](double a, double b) { return a + b; };
  const double inline_result =
      DeterministicReduce(nullptr, kCount, 64, 0.0, map, combine);
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    const double pooled =
        DeterministicReduce(&pool, kCount, 64, 0.0, map, combine);
    EXPECT_EQ(std::bit_cast<uint64_t>(inline_result),
              std::bit_cast<uint64_t>(pooled))
        << threads << " threads";
  }
}

TEST(DeterministicReduceTest, EmptyRangeReturnsInit) {
  auto map = [](int64_t, int64_t) { return 1.0; };
  auto combine = [](double a, double b) { return a + b; };
  EXPECT_EQ(DeterministicReduce(nullptr, 0, 16, 42.0, map, combine), 42.0);
}

TEST(DeterministicReduceTest, CombineSeesChunksInAscendingOrder) {
  ThreadPool pool(4);
  std::vector<int64_t> order;
  auto map = [](int64_t begin, int64_t) { return begin; };
  auto combine = [&order](int64_t acc, int64_t chunk_begin) {
    order.push_back(chunk_begin);
    return acc;
  };
  DeterministicReduce<int64_t>(&pool, 100, 10, 0, map, combine);
  std::vector<int64_t> expected;
  for (int64_t b = 0; b < 100; b += 10) expected.push_back(b);
  EXPECT_EQ(order, expected);
}

TEST(DefaultThreadCountTest, Positive) {
  EXPECT_GE(DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace corrob
