#include "common/csv.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/random.h"

namespace corrob {
namespace {

TEST(CsvParseTest, SimpleRows) {
  auto doc = ParseCsv("a,b\nc,d\n").ValueOrDie();
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(doc.rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvParseTest, MissingTrailingNewline) {
  auto doc = ParseCsv("a,b\nc,d").ValueOrDie();
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvParseTest, CrLfRows) {
  auto doc = ParseCsv("a,b\r\nc,d\r\n").ValueOrDie();
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvParseTest, EmptyFields) {
  auto doc = ParseCsv(",\n").ValueOrDie();
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"", ""}));
}

TEST(CsvParseTest, EmptyInputHasNoRows) {
  auto doc = ParseCsv("").ValueOrDie();
  EXPECT_TRUE(doc.rows.empty());
}

TEST(CsvParseTest, QuotedFieldWithDelimiterAndNewline) {
  auto doc = ParseCsv("\"a,b\",\"c\nd\"\n").ValueOrDie();
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "a,b");
  EXPECT_EQ(doc.rows[0][1], "c\nd");
}

TEST(CsvParseTest, DoubledQuoteEscapes) {
  auto doc = ParseCsv("\"say \"\"hi\"\"\"\n").ValueOrDie();
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "say \"hi\"");
}

TEST(CsvParseTest, UnterminatedQuoteIsError) {
  auto result = ParseCsv("\"oops\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(CsvParseTest, QuoteInsideUnquotedFieldIsError) {
  auto result = ParseCsv("ab\"c\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(CsvParseTest, AlternateDelimiter) {
  auto doc = ParseCsv("a\tb\nc\td\n", '\t').ValueOrDie();
  EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"a", "b"}));
}

TEST(CsvWriteTest, QuotesOnlyWhenNeeded) {
  std::string out = WriteCsv({{"plain", "with,comma", "with\"quote", "nl\n"}});
  EXPECT_EQ(out, "plain,\"with,comma\",\"with\"\"quote\",\"nl\n\"\n");
}

TEST(CsvRoundTripTest, RandomTablesSurviveRoundTrip) {
  // Property: ParseCsv(WriteCsv(rows)) == rows for arbitrary cell
  // contents, including delimiters, quotes and newlines.
  Rng rng(321);
  const std::string alphabet = "ab,\"\n x";
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::vector<std::string>> rows;
    size_t num_rows = 1 + rng.NextBelow(5);
    size_t num_cols = 1 + rng.NextBelow(4);
    for (size_t r = 0; r < num_rows; ++r) {
      std::vector<std::string> row;
      for (size_t c = 0; c < num_cols; ++c) {
        std::string cell;
        size_t len = rng.NextBelow(6);
        for (size_t i = 0; i < len; ++i) {
          cell += alphabet[rng.NextBelow(alphabet.size())];
        }
        row.push_back(cell);
      }
      rows.push_back(row);
    }
    // A row of all-empty cells is serialized as a blank line, which
    // the parser cannot distinguish from no row; skip those.
    bool has_blank_row = false;
    for (const auto& row : rows) {
      bool all_empty = true;
      for (const auto& cell : row) all_empty &= cell.empty();
      has_blank_row |= (all_empty && row.size() == 1);
    }
    if (has_blank_row) continue;
    auto doc = ParseCsv(WriteCsv(rows)).ValueOrDie();
    EXPECT_EQ(doc.rows, rows) << "trial " << trial;
  }
}

TEST(CsvFileTest, WriteThenReadBack) {
  std::string path = ::testing::TempDir() + "/corrob_csv_test.csv";
  std::vector<std::vector<std::string>> rows{{"h1", "h2"}, {"1", "2"}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  auto doc = ReadCsvFile(path).ValueOrDie();
  EXPECT_EQ(doc.rows, rows);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsNotFound) {
  auto result = ReadCsvFile("/nonexistent/dir/file.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("/nonexistent/dir/file.csv"),
            std::string::npos);
}

TEST(CsvParseTest, StripsLeadingUtf8Bom) {
  // A BOM-prefixed export must not corrupt the first header cell.
  auto doc = ParseCsv("\xEF\xBB\xBF" "fact,s1\nr1,T\n").ValueOrDie();
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][0], "fact");
}

TEST(CsvParseTest, BomOnlyInputIsEmpty) {
  auto doc = ParseCsv("\xEF\xBB\xBF").ValueOrDie();
  EXPECT_TRUE(doc.rows.empty());
}

TEST(CsvParseTest, BomMidFileIsData) {
  // Only a *leading* BOM is stripped.
  auto doc = ParseCsv("a\n\xEF\xBB\xBF" "b\n").ValueOrDie();
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][0], "\xEF\xBB\xBF" "b");
}

TEST(AtomicWriteTest, ReplacesExistingFile) {
  std::string path = ::testing::TempDir() + "/corrob_atomic_test.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "first").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "second").ok());
  EXPECT_EQ(ReadFileToString(path).ValueOrDie(), "second");
  EXPECT_EQ(ReadFileToString(path + ".tmp").status().code(),
            StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(AtomicWriteTest, InjectedFaultLeavesOriginalIntactAtEveryStage) {
  ScopedFailpointDisarmer disarmer;
  std::string path = ::testing::TempDir() + "/corrob_atomic_fault.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "precious original").ok());
  for (const char* stage :
       {"io.atomic_write.open", "io.atomic_write.write",
        "io.atomic_write.fsync", "io.atomic_write.rename"}) {
    Failpoints::Arm(stage);
    Status status = WriteFileAtomic(path, "partial garbage");
    Failpoints::Disarm(stage);
    ASSERT_FALSE(status.ok()) << stage;
    EXPECT_EQ(status.code(), StatusCode::kIoError) << stage;
    // The target is untouched and no temp file is left behind.
    EXPECT_EQ(ReadFileToString(path).ValueOrDie(), "precious original")
        << stage;
    EXPECT_EQ(ReadFileToString(path + ".tmp").status().code(),
              StatusCode::kNotFound)
        << stage;
  }
  std::remove(path.c_str());
}

TEST(AtomicWriteTest, UnwritableDirectoryIsIoError) {
  Status status = WriteFileAtomic("/nonexistent/dir/file.txt", "x");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace corrob
