#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace corrob {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.Uniform(-2.5, 4.25);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 4.25);
  }
}

TEST(RngTest, NextBelowCoversRangeUniformly) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextBelow(10)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 10 * 0.1);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(10);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All 7 values hit in 1000 draws.
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerateProbabilities) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  constexpr int kDraws = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double x = rng.Gaussian();
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / kDraws;
  double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(14);
  constexpr int kDraws = 100000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / kDraws, 5.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(15);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) values[i] = i;
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, values);  // Astronomically unlikely to be equal.
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ShuffleHandlesSmallInputs) {
  Rng rng(16);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(17);
  Rng forked = a.Fork();
  // The fork must not mirror the parent's subsequent stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == forked.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngDeathTest, NextBelowZeroAborts) {
  Rng rng(18);
  EXPECT_DEATH({ rng.NextBelow(0); }, "NextBelow");
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t s1 = 0;
  uint64_t s2 = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
  }
}

}  // namespace
}  // namespace corrob
