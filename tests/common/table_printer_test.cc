#include "common/table_printer.h"

#include <gtest/gtest.h>

namespace corrob {
namespace {

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter table({"Method", "Acc"});
  table.AddRow({"Voting", "0.66"});
  table.AddRow({"IncEstHeu", "0.83"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| Method    | Acc  |"), std::string::npos) << out;
  EXPECT_NE(out.find("| IncEstHeu | 0.83 |"), std::string::npos) << out;
  EXPECT_NE(out.find("+-----------+------+"), std::string::npos) << out;
}

TEST(TablePrinterTest, DoubleRowFormatting) {
  TablePrinter table({"Method", "P", "R"});
  table.AddRow("Voting", {0.654, 1.0}, 2);
  std::string out = table.ToString();
  EXPECT_NE(out.find("0.65"), std::string::npos);
  EXPECT_NE(out.find("1.00"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter table({"A", "B", "C"});
  table.AddRow({"only-a"});
  EXPECT_EQ(table.num_rows(), 1u);
  // Must not crash and must render three columns.
  std::string out = table.ToString();
  EXPECT_NE(out.find("only-a"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorRendersRule) {
  TablePrinter table({"A"});
  table.AddRow({"x"});
  table.AddSeparator();
  table.AddRow({"y"});
  std::string out = table.ToString();
  // Header rule + top + separator + bottom = 4 rules.
  size_t rules = 0;
  for (size_t pos = out.find("+--"); pos != std::string::npos;
       pos = out.find("+--", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(TablePrinterDeathTest, TooManyCellsAborts) {
  TablePrinter table({"A"});
  EXPECT_DEATH({ table.AddRow({"1", "2"}); }, "row has");
}

TEST(TablePrinterDeathTest, EmptyHeaderAborts) {
  EXPECT_DEATH({ TablePrinter table({}); }, "at least one column");
}

}  // namespace
}  // namespace corrob
