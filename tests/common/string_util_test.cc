#include "common/string_util.h"

#include <gtest/gtest.h>

namespace corrob {
namespace {

TEST(SplitTest, BasicFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitWhitespaceTest, DropsEmptyRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nhi"), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(CaseTest, ToLowerUpperAsciiOnly) {
  EXPECT_EQ(ToLower("MiXeD 42!"), "mixed 42!");
  EXPECT_EQ(ToUpper("MiXeD 42!"), "MIXED 42!");
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("restaurant", "rest"));
  EXPECT_FALSE(StartsWith("rest", "restaurant"));
  EXPECT_TRUE(EndsWith("main st", " st"));
  EXPECT_FALSE(EndsWith("st", "main st"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(ReplaceAllTest, ReplacesEveryOccurrence) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaaa", "aa", "b"), "bb");
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
  EXPECT_EQ(ReplaceAll("abc", "z", "x"), "abc");
}

TEST(FormatDoubleTest, RespectsDigits) {
  EXPECT_EQ(FormatDouble(0.5, 2), "0.50");
  EXPECT_EQ(FormatDouble(1.0 / 3.0, 4), "0.3333");
  EXPECT_EQ(FormatDouble(-2.0, 0), "-2");
}

}  // namespace
}  // namespace corrob
