#include "common/failpoint.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace corrob {
namespace {

/// A function with an injectable failure site, as production I/O
/// paths use it.
Status GuardedOperation() {
  CORROB_FAILPOINT("failpoint_test.op");
  return Status::OK();
}

Result<int> GuardedResultOperation() {
  CORROB_FAILPOINT("failpoint_test.result_op");
  return 42;
}

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::DisarmAll(); }
};

TEST_F(FailpointTest, DisarmedIsOk) {
  EXPECT_FALSE(Failpoints::AnyArmed());
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_EQ(GuardedResultOperation().ValueOrDie(), 42);
}

TEST_F(FailpointTest, ArmedFailsWithConfiguredCode) {
  FailpointConfig config;
  config.code = StatusCode::kNotFound;
  config.message = "vanished";
  Failpoints::Arm("failpoint_test.op", config);
  Status status = GuardedOperation();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "vanished");
}

TEST_F(FailpointTest, WorksInsideResultReturningFunctions) {
  Failpoints::Arm("failpoint_test.result_op");
  auto result = GuardedResultOperation();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST_F(FailpointTest, DefaultMessageNamesTheSite) {
  Failpoints::Arm("failpoint_test.op");
  EXPECT_NE(GuardedOperation().message().find("failpoint_test.op"),
            std::string::npos);
}

TEST_F(FailpointTest, FailNTimesThenRecovers) {
  FailpointConfig config;
  config.max_failures = 2;
  Failpoints::Arm("failpoint_test.op", config);
  EXPECT_FALSE(GuardedOperation().ok());
  EXPECT_FALSE(GuardedOperation().ok());
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_EQ(Failpoints::HitCount("failpoint_test.op"), 4);
  EXPECT_EQ(Failpoints::FailureCount("failpoint_test.op"), 2);
}

TEST_F(FailpointTest, SkipDelaysTheFailure) {
  FailpointConfig config;
  config.skip = 3;
  config.max_failures = 1;
  Failpoints::Arm("failpoint_test.op", config);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(GuardedOperation().ok()) << "hit " << i;
  }
  EXPECT_FALSE(GuardedOperation().ok());
  EXPECT_TRUE(GuardedOperation().ok());
}

TEST_F(FailpointTest, ProbabilisticFailuresAreDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    FailpointConfig config;
    config.probability = 0.5;
    config.seed = seed;
    Failpoints::Arm("failpoint_test.op", config);
    std::vector<bool> failures;
    for (int i = 0; i < 64; ++i) failures.push_back(!GuardedOperation().ok());
    Failpoints::Disarm("failpoint_test.op");
    return failures;
  };
  std::vector<bool> a = run(7);
  std::vector<bool> b = run(7);
  std::vector<bool> c = run(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Roughly half fail.
  int64_t count = 0;
  for (bool failed : a) count += failed ? 1 : 0;
  EXPECT_GT(count, 16);
  EXPECT_LT(count, 48);
}

TEST_F(FailpointTest, DisarmRestoresNormalOperation) {
  Failpoints::Arm("failpoint_test.op");
  EXPECT_FALSE(GuardedOperation().ok());
  Failpoints::Disarm("failpoint_test.op");
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_FALSE(Failpoints::AnyArmed());
}

TEST_F(FailpointTest, ReArmingResetsCounters) {
  Failpoints::Arm("failpoint_test.op");
  // lint: discard-ok: only the hit counter matters for this test
  (void)GuardedOperation();
  EXPECT_EQ(Failpoints::HitCount("failpoint_test.op"), 1);
  Failpoints::Arm("failpoint_test.op");
  EXPECT_EQ(Failpoints::HitCount("failpoint_test.op"), 0);
}

TEST_F(FailpointTest, ArmedNamesAreSorted) {
  Failpoints::Arm("b.second");
  Failpoints::Arm("a.first");
  EXPECT_EQ(Failpoints::ArmedNames(),
            (std::vector<std::string>{"a.first", "b.second"}));
  EXPECT_TRUE(Failpoints::IsArmed("a.first"));
  EXPECT_FALSE(Failpoints::IsArmed("a.missing"));
}

TEST_F(FailpointTest, SpecParsesModesAndOptions) {
  ASSERT_TRUE(Failpoints::ArmFromSpec("failpoint_test.op=fail:2").ok());
  EXPECT_FALSE(GuardedOperation().ok());
  EXPECT_FALSE(GuardedOperation().ok());
  EXPECT_TRUE(GuardedOperation().ok());

  ASSERT_TRUE(
      Failpoints::ArmFromSpec(
          "failpoint_test.op=fail:1:skip=2:code=FailedPrecondition")
          .ok());
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_EQ(GuardedOperation().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(GuardedOperation().ok());

  ASSERT_TRUE(Failpoints::ArmFromSpec("failpoint_test.op=off").ok());
  EXPECT_FALSE(Failpoints::IsArmed("failpoint_test.op"));
}

TEST_F(FailpointTest, SpecParsesProbabilisticMode) {
  ASSERT_TRUE(
      Failpoints::ArmFromSpec("failpoint_test.op=prob:0.5:seed=9").ok());
  int64_t failures = 0;
  for (int i = 0; i < 64; ++i) failures += GuardedOperation().ok() ? 0 : 1;
  EXPECT_GT(failures, 8);
  EXPECT_LT(failures, 56);
}

TEST_F(FailpointTest, SpecListArmsSeveral) {
  ASSERT_TRUE(Failpoints::ArmFromSpecList(
                  "failpoint_test.op=fail, failpoint_test.result_op=fail:1")
                  .ok());
  EXPECT_FALSE(GuardedOperation().ok());
  EXPECT_FALSE(GuardedResultOperation().ok());
}

TEST_F(FailpointTest, BadSpecsAreRejected) {
  for (const char* spec :
       {"", "noequals", "=fail", "x=", "x=explode", "x=fail:abc",
        "x=prob", "x=prob:1.5", "x=prob:nan", "x=fail:1:code=Bogus",
        "x=fail:1:skip=-2", "x=fail:1:frobnicate=1", "x=off:1"}) {
    EXPECT_EQ(Failpoints::ArmFromSpec(spec).code(),
              StatusCode::kInvalidArgument)
        << "spec: '" << spec << "'";
  }
  EXPECT_FALSE(Failpoints::AnyArmed());
}

}  // namespace
}  // namespace corrob
