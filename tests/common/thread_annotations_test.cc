// Smoke test that common/thread_annotations.h works as a standalone
// include on every supported compiler: the macros must expand to valid
// attributes under Clang and to nothing elsewhere, with no other
// header pulled in first. The include below is deliberately the first
// thing in this TU (before gtest) so a hidden dependency on another
// header would fail to compile.
#include "common/thread_annotations.h"

#include <mutex>

#include "gtest/gtest.h"

namespace corrob {
namespace {

// One use of every macro the header defines. Compiling (and under
// Clang: compiling without -Wthread-safety complaints) is the test.
class CORROB_CAPABILITY("mutex") AnnotatedMutex {
 public:
  void Lock() CORROB_ACQUIRE() { inner_.lock(); }
  void Unlock() CORROB_RELEASE() { inner_.unlock(); }
  std::mutex& inner() CORROB_RETURN_CAPABILITY(this) { return inner_; }

 private:
  std::mutex inner_;
};

class CORROB_SCOPED_CAPABILITY AnnotatedLock {
 public:
  explicit AnnotatedLock(AnnotatedMutex& mutex) CORROB_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.Lock();
  }
  ~AnnotatedLock() CORROB_RELEASE() { mutex_.Unlock(); }

 private:
  AnnotatedMutex& mutex_;
};

class Annotated {
 public:
  void Set(int value) CORROB_EXCLUDES(mutex_) {
    AnnotatedLock lock(mutex_);
    guarded_ = value;
    *pt_guarded_ = value;
  }

  int GetLocked() const CORROB_REQUIRES(mutex_) { return guarded_; }

  int Peek() const CORROB_NO_THREAD_SAFETY_ANALYSIS { return guarded_; }

 private:
  mutable AnnotatedMutex mutex_;
  int guarded_ CORROB_GUARDED_BY(mutex_) = 0;
  int storage_ = 0;
  int* pt_guarded_ CORROB_PT_GUARDED_BY(mutex_) = &storage_;
};

TEST(ThreadAnnotationsTest, AnnotatedCodeRunsCorrectly) {
  Annotated annotated;
  annotated.Set(42);
  EXPECT_EQ(annotated.Peek(), 42);
}

TEST(ThreadAnnotationsTest, MacrosAreInertOrAttributes) {
  // Under GCC every CORROB_* macro above expanded to nothing; under
  // Clang they expanded to real attributes. Either way this TU built,
  // which is the property the serving headers rely on.
  AnnotatedMutex mutex;
  mutex.Lock();
  mutex.Unlock();
  SUCCEED();
}

}  // namespace
}  // namespace corrob
