#include "common/retry.h"

#include <gtest/gtest.h>

#include "common/failpoint.h"

namespace corrob {
namespace {

RetryPolicy FastPolicy(int32_t attempts = 3) {
  RetryPolicy policy;
  policy.max_attempts = attempts;
  policy.enable_sleep = false;  // exercise the schedule, skip the clock
  return policy;
}

TEST(RetryPolicyTest, DefaultsAreValid) {
  EXPECT_TRUE(ValidateRetryPolicy(RetryPolicy{}).ok());
  EXPECT_TRUE(ValidateRetryPolicy(DefaultIoRetryPolicy()).ok());
}

TEST(RetryPolicyTest, RejectsBadFields) {
  RetryPolicy policy;
  policy.max_attempts = 0;
  EXPECT_EQ(ValidateRetryPolicy(policy).code(),
            StatusCode::kInvalidArgument);
  policy = RetryPolicy{};
  policy.backoff_multiplier = 0.5;
  EXPECT_FALSE(ValidateRetryPolicy(policy).ok());
  policy = RetryPolicy{};
  policy.max_backoff_ms = 0.1;
  policy.initial_backoff_ms = 1.0;
  EXPECT_FALSE(ValidateRetryPolicy(policy).ok());
  policy = RetryPolicy{};
  policy.jitter = 1.5;
  EXPECT_FALSE(ValidateRetryPolicy(policy).ok());
}

TEST(RetryTest, InvalidPolicyFailsWithoutCallingFn) {
  RetryPolicy policy;
  policy.max_attempts = -1;
  int calls = 0;
  Status status = Retry(policy, [&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 0);
}

TEST(RetryTest, TransientCodes) {
  EXPECT_TRUE(IsTransientCode(StatusCode::kIoError));
  EXPECT_TRUE(IsTransientCode(StatusCode::kConnectionLost));
  EXPECT_FALSE(IsTransientCode(StatusCode::kNotFound));
  EXPECT_FALSE(IsTransientCode(StatusCode::kParseError));
  EXPECT_FALSE(IsTransientCode(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsTransientCode(StatusCode::kCancelled));
  EXPECT_FALSE(IsTransientCode(StatusCode::kWalUnavailable));
  EXPECT_FALSE(IsTransientCode(StatusCode::kOk));
}

TEST(RetryTest, SucceedsFirstTry) {
  RetryStats stats;
  Status status = Retry(FastPolicy(), [] { return Status::OK(); }, &stats);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.total_backoff_ms, 0.0);
}

TEST(RetryTest, RetriesTransientUntilSuccess) {
  int calls = 0;
  RetryStats stats;
  Status status = Retry(
      FastPolicy(5),
      [&] {
        return ++calls < 3 ? Status::IoError("flaky") : Status::OK();
      },
      &stats);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_GT(stats.total_backoff_ms, 0.0);
}

TEST(RetryTest, ExhaustsAttemptsOnPersistentTransientFailure) {
  int calls = 0;
  Status status = Retry(FastPolicy(4), [&] {
    ++calls;
    return Status::IoError("still down");
  });
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 4);
}

TEST(RetryTest, DoesNotRetryDeterministicFailures) {
  int calls = 0;
  Status status = Retry(FastPolicy(5), [&] {
    ++calls;
    return Status::ParseError("bad bytes stay bad");
  });
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, WorksWithResultValues) {
  int calls = 0;
  auto result = Retry(FastPolicy(3), [&]() -> Result<int> {
    if (++calls < 2) return Status::IoError("flaky");
    return 7;
  });
  EXPECT_EQ(result.ValueOrDie(), 7);
  EXPECT_EQ(calls, 2);

  auto failed = Retry(FastPolicy(2), [&]() -> Result<int> {
    return Status::NotFound("gone");
  });
  EXPECT_EQ(failed.status().code(), StatusCode::kNotFound);
}

TEST(RetryTest, MasksInjectedTransientFault) {
  ScopedFailpointDisarmer disarmer;
  FailpointConfig config;
  config.max_failures = 2;
  Failpoints::Arm("retry_test.op", config);
  Status status = Retry(FastPolicy(3), [] {
    CORROB_FAILPOINT("retry_test.op");
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(Failpoints::FailureCount("retry_test.op"), 2);
}

TEST(RetryTest, CancelledTokenStopsRetryingBetweenAttempts) {
  CancellationToken token;
  token.Cancel();
  RetryStats stats;
  int calls = 0;
  Status status = Retry(
      FastPolicy(5),
      [&] {
        ++calls;
        return Status::IoError("flaky");
      },
      &stats, &token);
  // The first attempt runs (cancellation is polled at the backoff,
  // not before the work), then the pre-cancelled token cuts the
  // schedule short instead of burning four more attempts.
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_NE(status.message().find("flaky"), std::string::npos);
  EXPECT_TRUE(stats.cancelled);
  EXPECT_EQ(stats.attempts, 1);
}

TEST(RetryTest, CancellationSkipsTheBackoffSleep) {
  CancellationToken token;
  RetryPolicy policy;
  policy.max_attempts = 2;
  // A backoff long enough that sleeping it out would hang the test:
  // a token cancelled during the attempt must skip the wait entirely.
  policy.initial_backoff_ms = 60000.0;
  policy.max_backoff_ms = 60000.0;
  policy.jitter = 0.0;
  RetryStats stats;
  Status status = Retry(
      policy,
      [&] {
        token.Cancel();
        return Status::IoError("always failing");
      },
      &stats, &token);
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(stats.cancelled);
  EXPECT_EQ(stats.attempts, 1);
}

TEST(RetryTest, LiveTokenDoesNotChangeTheSchedule) {
  CancellationToken token;
  RetryStats stats;
  int calls = 0;
  Status status = Retry(
      FastPolicy(3),
      [&] {
        ++calls;
        return calls < 3 ? Status::IoError("transient") : Status::OK();
      },
      &stats, &token);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_FALSE(stats.cancelled);
}

TEST(RetryTest, CancelledFromTheWorkItselfIsNotRetried) {
  int calls = 0;
  Status status = Retry(FastPolicy(5), [&] {
    ++calls;
    return Status::Cancelled("work observed its own token");
  });
  // kCancelled is deterministic, not transient: no retry loop.
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(calls, 1);
}

TEST(BackoffScheduleTest, GrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 1.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 4.0;
  policy.jitter = 0.0;
  retry_internal::BackoffSchedule schedule(policy);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 1.0);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 2.0);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 4.0);
  EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 4.0);  // capped
}

TEST(BackoffScheduleTest, EveryJitteredDelayStaysWithinTheEnvelope) {
  // Property over a sweep of seeds and policy shapes: no delay a
  // schedule ever produces may leave [initial*(1-jitter),
  // cap*(1+jitter)], and once the unjittered schedule reaches the cap
  // it must stay there. A jitter draw outside the envelope would turn
  // "bounded backoff" into an unbounded sleep under an adversarial
  // seed, which is exactly what a reconnect loop cannot afford.
  const double initials[] = {0.5, 1.0, 10.0};
  const double multipliers[] = {1.0, 1.6180339887, 2.0, 4.0};
  const double jitters[] = {0.0, 0.1, 0.25, 0.99};
  uint64_t seed = 0xB0A710AD;
  for (double initial : initials) {
    for (double multiplier : multipliers) {
      for (double jitter : jitters) {
        for (int trial = 0; trial < 8; ++trial) {
          // SplitMix64 step keeps the seed stream deterministic.
          seed += 0x9E3779B97F4A7C15ULL;
          RetryPolicy policy;
          policy.initial_backoff_ms = initial;
          policy.backoff_multiplier = multiplier;
          policy.max_backoff_ms = 50.0;
          policy.jitter = jitter;
          policy.seed = seed;
          ASSERT_TRUE(ValidateRetryPolicy(policy).ok());
          retry_internal::BackoffSchedule schedule(policy);
          const double floor = initial * (1.0 - jitter);
          const double ceiling = policy.max_backoff_ms * (1.0 + jitter);
          for (int step = 0; step < 64; ++step) {
            const double delay = schedule.NextDelayMs();
            EXPECT_GE(delay, floor)
                << "initial=" << initial << " mult=" << multiplier
                << " jitter=" << jitter << " seed=" << seed
                << " step=" << step;
            EXPECT_LE(delay, ceiling)
                << "initial=" << initial << " mult=" << multiplier
                << " jitter=" << jitter << " seed=" << seed
                << " step=" << step;
          }
        }
      }
    }
  }
}

TEST(BackoffScheduleTest, JitterIsBoundedAndSeeded) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 10.0;
  policy.backoff_multiplier = 1.0;
  policy.max_backoff_ms = 10.0;
  policy.jitter = 0.25;
  policy.seed = 5;
  retry_internal::BackoffSchedule a(policy);
  retry_internal::BackoffSchedule b(policy);
  policy.seed = 6;
  retry_internal::BackoffSchedule c(policy);
  bool any_different = false;
  for (int i = 0; i < 32; ++i) {
    double delay_a = a.NextDelayMs();
    EXPECT_GE(delay_a, 10.0 * 0.75);
    EXPECT_LE(delay_a, 10.0 * 1.25);
    EXPECT_DOUBLE_EQ(delay_a, b.NextDelayMs());  // same seed, same jitter
    if (delay_a != c.NextDelayMs()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace corrob
