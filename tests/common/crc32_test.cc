#include "common/crc32.h"

#include <string>

#include <gtest/gtest.h>

namespace corrob {
namespace {

TEST(Crc32Test, KnownVectors) {
  // Reference values of the IEEE 802.3 polynomial (zlib's crc32).
  EXPECT_EQ(ComputeCrc32(""), 0x00000000u);
  EXPECT_EQ(ComputeCrc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(ComputeCrc32("abc"), 0x352441C2u);
  EXPECT_EQ(ComputeCrc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(ComputeCrc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  Crc32 crc;
  crc.Update("12345");
  crc.Update("");
  crc.Update("6789");
  EXPECT_EQ(crc.Digest(), ComputeCrc32("123456789"));
}

TEST(Crc32Test, ResetRestartsFromEmpty) {
  Crc32 crc;
  crc.Update("garbage");
  crc.Reset();
  crc.Update("abc");
  EXPECT_EQ(crc.Digest(), ComputeCrc32("abc"));
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::string payload(256, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i);
  }
  uint32_t clean = ComputeCrc32(payload);
  for (size_t byte : {size_t{0}, payload.size() / 2, payload.size() - 1}) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = payload;
      corrupted[byte] = static_cast<char>(corrupted[byte] ^ (1 << bit));
      EXPECT_NE(ComputeCrc32(corrupted), clean)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(Crc32Test, HandlesHighAndNulBytes) {
  std::string high("\xFF\xFE\x80\x00\x7F", 5);  // embedded NUL included
  std::string other("\xFF\xFE\x80\x00\x7E", 5);
  EXPECT_NE(ComputeCrc32(high), ComputeCrc32(other));
}

}  // namespace
}  // namespace corrob
