#include "common/timer.h"

#include <gtest/gtest.h>

#include "obs/clock.h"

namespace corrob {
namespace {

TEST(StopwatchNsTest, AccumulatesOnInjectedClock) {
  obs::ManualClock clock;
  StopwatchNs watch(&clock);
  EXPECT_TRUE(watch.running());
  EXPECT_EQ(watch.ElapsedNanos(), 0);
  clock.AdvanceNanos(1500);
  EXPECT_EQ(watch.ElapsedNanos(), 1500);
  EXPECT_DOUBLE_EQ(watch.ElapsedSeconds(), 1.5e-6);
  EXPECT_DOUBLE_EQ(watch.ElapsedMillis(), 1.5e-3);
}

TEST(StopwatchNsTest, PauseFreezesAndResumeContinues) {
  obs::ManualClock clock;
  StopwatchNs watch(&clock);
  clock.AdvanceNanos(100);
  watch.Pause();
  EXPECT_FALSE(watch.running());
  clock.AdvanceNanos(100000);  // not counted while paused
  EXPECT_EQ(watch.ElapsedNanos(), 100);
  watch.Resume();
  clock.AdvanceNanos(25);
  EXPECT_EQ(watch.ElapsedNanos(), 125);
  // Double pause / double resume are no-ops.
  watch.Pause();
  watch.Pause();
  EXPECT_EQ(watch.ElapsedNanos(), 125);
  watch.Resume();
  watch.Resume();
  clock.AdvanceNanos(5);
  EXPECT_EQ(watch.ElapsedNanos(), 130);
}

TEST(StopwatchNsTest, ResetZeroesButKeepsPauseState) {
  obs::ManualClock clock;
  StopwatchNs watch(&clock);
  clock.AdvanceNanos(100);
  watch.Reset();
  EXPECT_TRUE(watch.running());
  clock.AdvanceNanos(7);
  EXPECT_EQ(watch.ElapsedNanos(), 7);

  watch.Pause();
  watch.Reset();
  EXPECT_FALSE(watch.running());
  clock.AdvanceNanos(100);
  EXPECT_EQ(watch.ElapsedNanos(), 0);
}

TEST(StopwatchNsTest, NullClockNeverAdvances) {
  // A null clock is the "don't time" mode deterministic code uses:
  // all operations are no-ops and every reading is zero.
  StopwatchNs watch(nullptr);
  EXPECT_FALSE(watch.running());
  watch.Resume();
  EXPECT_FALSE(watch.running());
  watch.Pause();
  watch.Reset();
  EXPECT_EQ(watch.ElapsedNanos(), 0);
  EXPECT_EQ(watch.ElapsedSeconds(), 0.0);
}

TEST(StopwatchNsTest, RealClockIsMonotonic) {
  StopwatchNs watch;
  EXPECT_TRUE(watch.running());
  int64_t first = watch.ElapsedNanos();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  int64_t second = watch.ElapsedNanos();
  EXPECT_GE(first, 0);
  EXPECT_GE(second, first);
}

}  // namespace
}  // namespace corrob
