#include "common/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace corrob {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, ValueOrFallback) {
  Result<std::string> ok = std::string("hit");
  Result<std::string> err = Status::Internal("x");
  EXPECT_EQ(ok.ValueOr("fallback"), "hit");
  EXPECT_EQ(err.ValueOr("fallback"), "fallback");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto inner = []() -> Result<int> { return Status::ParseError("bad"); };
  auto outer = [&]() -> Status {
    CORROB_ASSIGN_OR_RETURN(int value, inner());
    (void)value;
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kParseError);
}

TEST(ResultTest, AssignOrReturnBindsValue) {
  auto inner = []() -> Result<int> { return 5; };
  int seen = 0;
  auto outer = [&]() -> Status {
    CORROB_ASSIGN_OR_RETURN(int value, inner());
    seen = value;
    return Status::OK();
  };
  EXPECT_TRUE(outer().ok());
  EXPECT_EQ(seen, 5);
}

TEST(ResultDeathTest, ValueOrDieOnErrorAborts) {
  Result<int> r = Status::Internal("boom");
  EXPECT_DEATH({ (void)r.ValueOrDie(); }, "ValueOrDie");
}

TEST(ResultDeathTest, OkStatusIntoResultAborts) {
  EXPECT_DEATH({ Result<int> r(Status::OK()); (void)r; },
               "constructed from OK");
}

}  // namespace
}  // namespace corrob
