#include "common/logging.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "common/timer.h"

namespace corrob {
namespace {

TEST(LoggingTest, MinLevelRoundTrips) {
  internal_logging::LogLevel original = internal_logging::MinLogLevel();
  internal_logging::SetMinLogLevel(internal_logging::LogLevel::kError);
  EXPECT_EQ(internal_logging::MinLogLevel(),
            internal_logging::LogLevel::kError);
  internal_logging::SetMinLogLevel(original);
}

TEST(LoggingTest, NonFatalLevelsDoNotAbort) {
  CORROB_LOG_DEBUG << "debug message";
  CORROB_LOG_INFO << "info message " << 42;
  CORROB_LOG_WARNING << "warning message";
  CORROB_LOG_ERROR << "error message";
  SUCCEED();
}

TEST(LoggingTest, ParseLogLevelAcceptsNamesAndNumbers) {
  using internal_logging::LogLevel;
  using internal_logging::ParseLogLevel;
  LogLevel level = LogLevel::kFatal;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("3", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("fatal", &level));
  EXPECT_EQ(level, LogLevel::kFatal);

  level = LogLevel::kInfo;
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("7", &level));
  EXPECT_EQ(level, LogLevel::kInfo);  // failures leave `out` untouched
}

TEST(LoggingTest, LogEveryNImplFiresOnScheduledCalls) {
  std::atomic<uint64_t> counter{0};
  std::vector<bool> hits;
  for (int i = 0; i < 7; ++i) {
    hits.push_back(internal_logging::LogEveryNImpl(&counter, 3));
  }
  EXPECT_EQ(hits, (std::vector<bool>{true, false, false, true, false,
                                     false, true}));
  // n <= 1 always fires.
  std::atomic<uint64_t> every{0};
  EXPECT_TRUE(internal_logging::LogEveryNImpl(&every, 1));
  EXPECT_TRUE(internal_logging::LogEveryNImpl(&every, 1));
  std::atomic<uint64_t> zero{0};
  EXPECT_TRUE(internal_logging::LogEveryNImpl(&zero, 0));
}

TEST(LoggingTest, LogEveryNMacroCompilesAndStreams) {
  // Each expansion owns its counter; two sites do not interfere.
  for (int i = 0; i < 5; ++i) {
    CORROB_LOG_EVERY_N(DEBUG, 2) << "site one, call " << i;
    CORROB_LOG_EVERY_N(DEBUG, 1000) << "site two, call " << i;
  }
  // The macro must compose as one statement (no dangling-else traps).
  if (true)
    CORROB_LOG_EVERY_N(DEBUG, 10) << "inside unbraced if";
  else
    FAIL();
  SUCCEED();
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  CORROB_CHECK(1 + 1 == 2) << "never printed";
  CORROB_CHECK_OK(Status::OK());
  CORROB_DCHECK(true);
  SUCCEED();
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ CORROB_CHECK(false) << "boom"; }, "Check failed");
}

TEST(LoggingDeathTest, CheckOkFailureAborts) {
  EXPECT_DEATH({ CORROB_CHECK_OK(Status::Internal("bad")); },
               "Check failed \\(status\\)");
}

TEST(LoggingDeathTest, CheckOkNamesExpressionAndStatus) {
  // The fatal line must carry both the expression text and the failing
  // status (code + message) so the abort is diagnosable from logs alone.
  EXPECT_DEATH(
      { CORROB_CHECK_OK(Status::IoError("disk on fire")); },
      "Status::IoError\\(\"disk on fire\"\\) = IoError: disk on fire");
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH({ CORROB_LOG_FATAL << "fatal message"; }, "fatal message");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  StopwatchNs watch;
  double first = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  // Burn a little CPU; elapsed time must be non-decreasing.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  double second = watch.ElapsedSeconds();
  EXPECT_GE(second, first);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedSeconds() * 1e3 * 0.5 + 1.0);
}

TEST(StopwatchTest, ResetRestarts) {
  StopwatchNs watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  double before = watch.ElapsedSeconds();
  watch.Reset();
  // Immediately after reset, the reading is (almost surely) smaller.
  EXPECT_LE(watch.ElapsedSeconds(), before + 1e-3);
}

}  // namespace
}  // namespace corrob
