#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "common/timer.h"

namespace corrob {
namespace {

TEST(LoggingTest, MinLevelRoundTrips) {
  internal_logging::LogLevel original = internal_logging::MinLogLevel();
  internal_logging::SetMinLogLevel(internal_logging::LogLevel::kError);
  EXPECT_EQ(internal_logging::MinLogLevel(),
            internal_logging::LogLevel::kError);
  internal_logging::SetMinLogLevel(original);
}

TEST(LoggingTest, NonFatalLevelsDoNotAbort) {
  CORROB_LOG_DEBUG << "debug message";
  CORROB_LOG_INFO << "info message " << 42;
  CORROB_LOG_WARNING << "warning message";
  CORROB_LOG_ERROR << "error message";
  SUCCEED();
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  CORROB_CHECK(1 + 1 == 2) << "never printed";
  CORROB_CHECK_OK(Status::OK());
  CORROB_DCHECK(true);
  SUCCEED();
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ CORROB_CHECK(false) << "boom"; }, "Check failed");
}

TEST(LoggingDeathTest, CheckOkFailureAborts) {
  EXPECT_DEATH({ CORROB_CHECK_OK(Status::Internal("bad")); },
               "Check failed \\(status\\)");
}

TEST(LoggingDeathTest, CheckOkNamesExpressionAndStatus) {
  // The fatal line must carry both the expression text and the failing
  // status (code + message) so the abort is diagnosable from logs alone.
  EXPECT_DEATH(
      { CORROB_CHECK_OK(Status::IoError("disk on fire")); },
      "Status::IoError\\(\"disk on fire\"\\) = IoError: disk on fire");
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH({ CORROB_LOG_FATAL << "fatal message"; }, "fatal message");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  double first = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  // Burn a little CPU; elapsed time must be non-decreasing.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  double second = watch.ElapsedSeconds();
  EXPECT_GE(second, first);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedSeconds() * 1e3 * 0.5 + 1.0);
}

TEST(StopwatchTest, ResetRestarts) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  double before = watch.ElapsedSeconds();
  watch.Reset();
  // Immediately after reset, the reading is (almost surely) smaller.
  EXPECT_LE(watch.ElapsedSeconds(), before + 1e-3);
}

}  // namespace
}  // namespace corrob
