#include "common/budget.h"

#include <gtest/gtest.h>

#include <csignal>
#include <limits>
#include <thread>

#include "obs/clock.h"

namespace corrob {
namespace {

TEST(CancellationTokenTest, StartsLiveAndLatchesForever) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationTokenTest, FirstCancelTimestampWins) {
  CancellationToken token;
  EXPECT_EQ(token.cancelled_at_nanos(), 0);
  token.Cancel(1234);
  token.Cancel(9999);
  EXPECT_EQ(token.cancelled_at_nanos(), 1234);
}

TEST(CancellationTokenTest, CancelWithoutTimestampRecordsZero) {
  CancellationToken token;
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.cancelled_at_nanos(), 0);
}

TEST(CancellationTokenTest, ChildSeesAncestorCancellation) {
  CancellationToken root;
  CancellationToken child(&root);
  CancellationToken grandchild(&child);
  EXPECT_FALSE(grandchild.cancelled());
  root.Cancel(77);
  EXPECT_TRUE(child.cancelled());
  EXPECT_TRUE(grandchild.cancelled());
  // The timestamp walks to the nearest cancelled ancestor.
  EXPECT_EQ(grandchild.cancelled_at_nanos(), 77);
}

TEST(CancellationTokenTest, ChildCancelDoesNotPropagateUpward) {
  CancellationToken root;
  CancellationToken child(&root);
  child.Cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_FALSE(root.cancelled());
}

TEST(CancellationTokenTest, WaitForMsReturnsImmediatelyWhenCancelled) {
  CancellationToken token;
  token.Cancel();
  // A pre-cancelled token must not sleep out the full budget; give it
  // a wait long enough that sleeping through would hang the test.
  EXPECT_TRUE(token.WaitForMs(60000.0));
}

TEST(CancellationTokenTest, WaitForMsCompletesUninterrupted) {
  CancellationToken token;
  EXPECT_FALSE(token.WaitForMs(1.0));
}

TEST(CancellationTokenTest, WaitForMsInterruptedFromAnotherThread) {
  CancellationToken token;
  std::thread canceller([&token] { token.Cancel(); });
  // The wait observes the concurrent cancel within one polling slice
  // and reports the interruption.
  EXPECT_TRUE(token.WaitForMs(60000.0));
  canceller.join();
}

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline deadline;
  EXPECT_TRUE(deadline.infinite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.remaining_nanos(),
            std::numeric_limits<int64_t>::max());
}

TEST(DeadlineTest, ExpiresOnTheInjectedClock) {
  obs::ManualClock clock;
  clock.SetNanos(1000);
  Deadline deadline = Deadline::After(&clock, 500);
  EXPECT_FALSE(deadline.infinite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.remaining_nanos(), 500);
  clock.AdvanceNanos(499);
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.remaining_nanos(), 1);
  clock.AdvanceNanos(1);
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.remaining_nanos(), 0);
  clock.AdvanceNanos(1000000);  // stays expired, remaining clamps at 0
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.remaining_nanos(), 0);
}

TEST(DeadlineTest, NegativeBudgetExpiresImmediately) {
  obs::ManualClock clock;
  clock.SetNanos(42);
  EXPECT_TRUE(Deadline::After(&clock, -5).expired());
  EXPECT_TRUE(Deadline::After(&clock, 0).expired());
}

TEST(DeadlineTest, HugeBudgetSaturatesInsteadOfOverflowing) {
  obs::ManualClock clock;
  clock.SetNanos(std::numeric_limits<int64_t>::max() - 10);
  Deadline deadline =
      Deadline::After(&clock, std::numeric_limits<int64_t>::max());
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remaining_nanos(), 0);
}

TEST(DeadlineTest, AfterMsConvertsMilliseconds) {
  obs::ManualClock clock;
  Deadline deadline = Deadline::AfterMs(&clock, 2.5);
  EXPECT_EQ(deadline.remaining_nanos(), 2500000);
  clock.AdvanceNanos(2500000);
  EXPECT_TRUE(deadline.expired());
}

TEST(ResourceBudgetTest, DefaultIsUnlimitedAndValid) {
  ResourceBudget budget;
  EXPECT_TRUE(budget.unlimited());
  EXPECT_TRUE(ValidateResourceBudget(budget).ok());
}

TEST(ResourceBudgetTest, AnyCapClearsUnlimited) {
  ResourceBudget budget;
  budget.max_rounds = 3;
  EXPECT_FALSE(budget.unlimited());
  budget = ResourceBudget{};
  budget.max_vote_matrix_bytes = 1;
  EXPECT_FALSE(budget.unlimited());
  budget = ResourceBudget{};
  budget.max_facts_per_round = 1;
  EXPECT_FALSE(budget.unlimited());
}

TEST(ResourceBudgetTest, NegativeFieldsRejectedByName) {
  ResourceBudget budget;
  budget.max_rounds = -1;
  Status status = ValidateResourceBudget(budget);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("max_rounds"), std::string::npos);

  budget = ResourceBudget{};
  budget.max_vote_matrix_bytes = -2;
  status = ValidateResourceBudget(budget);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("max_vote_matrix_bytes"),
            std::string::npos);

  budget = ResourceBudget{};
  budget.max_facts_per_round = -3;
  status = ValidateResourceBudget(budget);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("max_facts_per_round"),
            std::string::npos);
}

TEST(StopSignalTest, DefaultIsDisarmed) {
  StopSignal signal;
  EXPECT_FALSE(signal.armed());
  EXPECT_FALSE(signal.cancelled());
  EXPECT_FALSE(signal.deadline_expired());
  EXPECT_FALSE(signal.ShouldStop());
  EXPECT_EQ(signal.cancellation(), nullptr);
  EXPECT_TRUE(signal.deadline().infinite());
}

TEST(StopSignalTest, TokenArmsAndFires) {
  CancellationToken token;
  StopSignal signal(&token, Deadline());
  EXPECT_TRUE(signal.armed());
  EXPECT_FALSE(signal.ShouldStop());
  token.Cancel();
  EXPECT_TRUE(signal.cancelled());
  EXPECT_TRUE(signal.ShouldStop());
}

TEST(StopSignalTest, DeadlineArmsAndFires) {
  obs::ManualClock clock;
  StopSignal signal(nullptr, Deadline::After(&clock, 100));
  EXPECT_TRUE(signal.armed());
  EXPECT_FALSE(signal.ShouldStop());
  clock.AdvanceNanos(100);
  EXPECT_TRUE(signal.deadline_expired());
  EXPECT_TRUE(signal.ShouldStop());
  EXPECT_FALSE(signal.cancelled());
}

TEST(ShutdownTest, ProcessTokenIsStableAndSignalCountStartsAtZero) {
  // Never raise a real signal here: the process-wide token latches
  // forever and would poison every later test in this binary.
  CancellationToken& token = ProcessShutdownToken();
  EXPECT_EQ(&token, &ProcessShutdownToken());
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(ShutdownSignalCount(), 0);
  // Installation is idempotent and must not fire anything by itself.
  InstallShutdownSignalHandlers();
  InstallShutdownSignalHandlers();
  EXPECT_FALSE(ProcessShutdownToken().cancelled());
  EXPECT_EQ(ShutdownSignalCount(), 0);
}

TEST(ScopedShutdownHandlersTest, FirstSignalCancelsOnlyTheScopedToken) {
  CancellationToken token;
  ScopedShutdownHandlers scope(
      ScopedShutdownHandlers::Options{.token = &token});
  EXPECT_EQ(scope.signal_count(), 0);
  EXPECT_EQ(&scope.token(), &token);

  // raise() delivers synchronously on this thread, so the handler has
  // run before it returns.
  std::raise(SIGTERM);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(scope.signal_count(), 1);
  EXPECT_EQ(ShutdownSignalCount(), 1);
  // Per-request/process isolation: the shared token is untouched.
  EXPECT_FALSE(ProcessShutdownToken().cancelled());
}

TEST(ScopedShutdownHandlersTest, NestedScopesRouteToInnermostAndRestore) {
  CancellationToken outer_token;
  CancellationToken inner_token;
  ScopedShutdownHandlers outer(
      ScopedShutdownHandlers::Options{.token = &outer_token});
  {
    ScopedShutdownHandlers inner(
        ScopedShutdownHandlers::Options{.token = &inner_token});
    std::raise(SIGINT);
    EXPECT_TRUE(inner_token.cancelled());
    EXPECT_FALSE(outer_token.cancelled());
    EXPECT_EQ(inner.signal_count(), 1);
    EXPECT_EQ(outer.signal_count(), 0);
  }
  // The inner scope restored the stack: signals reach `outer` now.
  std::raise(SIGINT);
  EXPECT_TRUE(outer_token.cancelled());
  EXPECT_EQ(outer.signal_count(), 1);
}

TEST(ScopedShutdownHandlersDeathTest, SecondSignalHardExitsNonZero) {
  EXPECT_EXIT(
      {
        CancellationToken token;
        ScopedShutdownHandlers scope(ScopedShutdownHandlers::Options{
            .token = &token, .second_signal_exit_code = 42});
        std::raise(SIGTERM);
        std::raise(SIGTERM);
      },
      testing::ExitedWithCode(42), "");
}

}  // namespace
}  // namespace corrob
