#include "common/math_util.h"

#include <cmath>

#include <gtest/gtest.h>

namespace corrob {
namespace {

TEST(BinaryEntropyTest, EndpointsAreZero) {
  EXPECT_DOUBLE_EQ(BinaryEntropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(1.0), 0.0);
}

TEST(BinaryEntropyTest, MaximumAtOneHalf) {
  EXPECT_DOUBLE_EQ(BinaryEntropy(0.5), 1.0);
}

TEST(BinaryEntropyTest, KnownValue) {
  // H(0.9) in bits.
  EXPECT_NEAR(BinaryEntropy(0.9), 0.468995, 1e-5);
}

TEST(BinaryEntropyTest, ClampsOutOfRangeInputs) {
  EXPECT_DOUBLE_EQ(BinaryEntropy(-0.3), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(1.7), 0.0);
}

/// Property sweep: symmetry, bounds, and unimodality around 0.5.
class EntropyPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(EntropyPropertyTest, SymmetricAndBounded) {
  double p = GetParam();
  double h = BinaryEntropy(p);
  EXPECT_GE(h, 0.0);
  EXPECT_LE(h, 1.0);
  EXPECT_NEAR(h, BinaryEntropy(1.0 - p), 1e-12);
  // Moving towards 0.5 never decreases entropy.
  double closer = p + (0.5 - p) * 0.5;
  EXPECT_LE(h, BinaryEntropy(closer) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EntropyPropertyTest,
                         ::testing::Values(0.0, 0.01, 0.05, 0.1, 0.2, 0.3,
                                           0.35, 0.4, 0.45, 0.49, 0.5, 0.6,
                                           0.75, 0.9, 0.99, 1.0));

TEST(ClampTest, Clamps) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.25, 0.0, 1.0), 0.25);
}

TEST(MeanTest, ComputesMean) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}, 0.9), 0.9);
}

TEST(VarianceTest, KnownVariance) {
  EXPECT_DOUBLE_EQ(Variance({1.0, 1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({0.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(Variance({7.0}), 0.0);
}

TEST(MseTest, KnownValues) {
  EXPECT_DOUBLE_EQ(MeanSquaredError({1.0, 0.0}, {0.0, 0.0}), 0.5);
  EXPECT_DOUBLE_EQ(MeanSquaredError({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(MeanSquaredError({0.5}, {0.5}), 0.0);
}

TEST(MseDeathTest, SizeMismatchAborts) {
  EXPECT_DEATH({ MeanSquaredError({1.0}, {1.0, 2.0}); }, "MSE size mismatch");
}

TEST(SigmoidTest, SymmetryAndKnownValues) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(2.0) + Sigmoid(-2.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(35.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-35.0), 0.0, 1e-12);
}

TEST(Log1pExpTest, MatchesNaiveInSafeRange) {
  for (double x : {-5.0, -1.0, 0.0, 1.0, 5.0}) {
    EXPECT_NEAR(Log1pExp(x), std::log1p(std::exp(x)), 1e-12);
  }
  // No overflow for large inputs.
  EXPECT_NEAR(Log1pExp(1000.0), 1000.0, 1e-9);
}

TEST(NearlyEqualTest, Tolerance) {
  EXPECT_TRUE(NearlyEqual(1.0, 1.0 + 1e-10));
  EXPECT_FALSE(NearlyEqual(1.0, 1.01));
  EXPECT_TRUE(NearlyEqual(1.0, 1.01, 0.1));
}

}  // namespace
}  // namespace corrob
