#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace corrob {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryOk) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad knob");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad knob");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ParseError("").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::NotConverged("").code(), StatusCode::kNotConverged);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotConverged), "NotConverged");
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::NotFound("missing");
  EXPECT_EQ(os.str(), "NotFound: missing");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::IoError("disk"); };
  auto wrapper = [&]() -> Status {
    CORROB_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  Status status = wrapper();
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(StatusTest, ReturnNotOkMacroPassesThroughOk) {
  auto wrapper = []() -> Status {
    CORROB_RETURN_NOT_OK(Status::OK());
    return Status::Internal("reached end");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace corrob
