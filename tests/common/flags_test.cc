#include "common/flags.h"

#include <gtest/gtest.h>

namespace corrob {
namespace {

FlagParser MakeParser(std::vector<const char*> args) {
  return FlagParser::Parse(static_cast<int>(args.size()), args.data())
      .ValueOrDie();
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser p = MakeParser({"--facts=100", "--eta=0.02"});
  EXPECT_EQ(p.GetInt("facts", 0), 100);
  EXPECT_DOUBLE_EQ(p.GetDouble("eta", 0.0), 0.02);
}

TEST(FlagParserTest, SpaceSyntax) {
  FlagParser p = MakeParser({"--name", "hello"});
  EXPECT_EQ(p.GetString("name", ""), "hello");
}

TEST(FlagParserTest, BareBooleanFlag) {
  FlagParser p = MakeParser({"--verbose"});
  EXPECT_TRUE(p.Has("verbose"));
  EXPECT_TRUE(p.GetBool("verbose", false));
}

TEST(FlagParserTest, BoolSpellings) {
  EXPECT_TRUE(MakeParser({"--x=yes"}).GetBool("x", false));
  EXPECT_TRUE(MakeParser({"--x=1"}).GetBool("x", false));
  EXPECT_TRUE(MakeParser({"--x=On"}).GetBool("x", false));
  EXPECT_FALSE(MakeParser({"--x=false"}).GetBool("x", true));
  EXPECT_FALSE(MakeParser({"--x=0"}).GetBool("x", true));
  EXPECT_FALSE(MakeParser({"--x=off"}).GetBool("x", true));
}

TEST(FlagParserTest, FallbacksWhenAbsent) {
  FlagParser p = MakeParser({});
  EXPECT_EQ(p.GetInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(p.GetDouble("missing", 1.5), 1.5);
  EXPECT_EQ(p.GetString("missing", "d"), "d");
  EXPECT_FALSE(p.GetBool("missing", false));
  EXPECT_FALSE(p.Has("missing"));
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser p = MakeParser({"input.csv", "--k=3", "output.csv"});
  EXPECT_EQ(p.positional(),
            (std::vector<std::string>{"input.csv", "output.csv"}));
  EXPECT_EQ(p.GetInt("k", 0), 3);
}

TEST(FlagParserTest, NegativeNumbers) {
  FlagParser p = MakeParser({"--delta=-4"});
  EXPECT_EQ(p.GetInt("delta", 0), -4);
}

TEST(FlagParserTest, LastOccurrenceWins) {
  FlagParser p = MakeParser({"--k=1", "--k=2"});
  EXPECT_EQ(p.GetInt("k", 0), 2);
}

TEST(FlagParserTest, EmptyFlagNameIsError) {
  std::vector<const char*> args{"--=3"};
  auto result = FlagParser::Parse(1, args.data());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlagParserDeathTest, MalformedIntAborts) {
  FlagParser p = MakeParser({"--k=abc"});
  EXPECT_DEATH({ p.GetInt("k", 0); }, "malformed integer");
}

TEST(FlagParserTest, TryGetIntParsesAndFallsBack) {
  FlagParser p = MakeParser({"--k=7"});
  EXPECT_EQ(p.TryGetInt("k", 0).ValueOrDie(), 7);
  EXPECT_EQ(p.TryGetInt("absent", 42).ValueOrDie(), 42);
}

TEST(FlagParserTest, TryGetIntRejectsMalformedWithoutAborting) {
  for (const char* bad : {"--k=abc", "--k=2.5", "--k="}) {
    FlagParser p = MakeParser({bad});
    auto result = p.TryGetInt("k", 0);
    ASSERT_FALSE(result.ok()) << bad;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(result.status().message().find("--k"), std::string::npos)
        << bad;
  }
}

TEST(FlagParserDeathTest, MalformedBoolAborts) {
  FlagParser p = MakeParser({"--k=maybe"});
  EXPECT_DEATH({ p.GetBool("k", false); }, "malformed bool");
}

}  // namespace
}  // namespace corrob
