#include "cli/cli.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "core/online_checkpoint.h"
#include "data/dataset_io.h"
#include "data/motivating_example.h"
#include "obs/json.h"
#include "obs/telemetry.h"

namespace corrob {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_path_ = ::testing::TempDir() + "/corrob_cli_dataset.csv";
    MotivatingExample example = MakeMotivatingExample();
    ASSERT_TRUE(
        SaveDatasetCsv(dataset_path_, example.dataset, &example.truth).ok());
  }

  void TearDown() override {
    std::remove(dataset_path_.c_str());
    for (const std::string& path : cleanup_) std::remove(path.c_str());
  }

  std::string TempPath(const std::string& name) {
    std::string path = ::testing::TempDir() + "/" + name;
    cleanup_.push_back(path);
    return path;
  }

  int Run(std::vector<std::string> args) {
    out_.str("");
    err_.str("");
    return RunCli(args, out_, err_);
  }

  std::string dataset_path_;
  std::vector<std::string> cleanup_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliTest, HelpPrintsUsage) {
  EXPECT_EQ(Run({"help"}), 0);
  EXPECT_NE(out_.str().find("USAGE"), std::string::npos);
  EXPECT_EQ(Run({}), 0);
  EXPECT_NE(out_.str().find("corrob run"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  EXPECT_EQ(Run({"frobnicate"}), 1);
  EXPECT_NE(err_.str().find("unknown command"), std::string::npos);
}

TEST_F(CliTest, RunPrintsDecisionsCsv) {
  ASSERT_EQ(Run({"run", "--input", dataset_path_, "--algorithm",
                 "TwoEstimate"}),
            0);
  CsvDocument doc = ParseCsv(out_.str()).ValueOrDie();
  ASSERT_EQ(doc.rows.size(), 13u);  // header + 12 facts
  EXPECT_EQ(doc.rows[0],
            (std::vector<std::string>{"fact", "probability", "decision"}));
  // TwoEstimate: everything true except r12.
  EXPECT_EQ(doc.rows[1][2], "true");
  EXPECT_EQ(doc.rows[12][0], "r12");
  EXPECT_EQ(doc.rows[12][2], "false");
}

TEST_F(CliTest, RunWritesOutputAndTrustFiles) {
  std::string output = TempPath("cli_out.csv");
  std::string trust = TempPath("cli_trust.csv");
  ASSERT_EQ(Run({"run", "--input", dataset_path_, "--algorithm", "IncEstHeu",
                 "--output", output, "--trust", trust}),
            0);
  CsvDocument decisions = ReadCsvFile(output).ValueOrDie();
  EXPECT_EQ(decisions.rows.size(), 13u);
  CsvDocument trust_doc = ReadCsvFile(trust).ValueOrDie();
  ASSERT_EQ(trust_doc.rows.size(), 6u);  // header + 5 sources
  EXPECT_EQ(trust_doc.rows[0],
            (std::vector<std::string>{"source", "trust"}));
}

TEST_F(CliTest, RunRejectsUnknownAlgorithm) {
  EXPECT_EQ(Run({"run", "--input", dataset_path_, "--algorithm", "Oracle"}),
            1);
  EXPECT_NE(err_.str().find("Oracle"), std::string::npos);
}

TEST_F(CliTest, RunRequiresInput) {
  EXPECT_EQ(Run({"run"}), 1);
  EXPECT_NE(err_.str().find("--input"), std::string::npos);
}

TEST_F(CliTest, ThreadsFlagRejectsBadValues) {
  // Zero, negative and non-numeric thread counts are usage errors on
  // stderr with exit 1 — never aborts, never silent fallbacks.
  for (const std::string bad : {"0", "-3", "abc", "2.5", ""}) {
    EXPECT_EQ(Run({"run", "--input", dataset_path_, "--threads=" + bad}), 1)
        << "--threads=" << bad;
    EXPECT_NE(err_.str().find("--threads"), std::string::npos)
        << "--threads=" << bad;
  }
}

TEST_F(CliTest, ThreadsFlagAcceptsPositiveCount) {
  ASSERT_EQ(Run({"run", "--input", dataset_path_, "--algorithm",
                 "TwoEstimate", "--threads", "2"}),
            0);
  CsvDocument doc = ParseCsv(out_.str()).ValueOrDie();
  ASSERT_EQ(doc.rows.size(), 13u);
}

TEST_F(CliTest, EvalScoresAllAlgorithms) {
  ASSERT_EQ(Run({"eval", "--input", dataset_path_}), 0);
  std::string output = out_.str();
  EXPECT_NE(output.find("TwoEstimate"), std::string::npos);
  EXPECT_NE(output.find("IncEstHeu"), std::string::npos);
  EXPECT_EQ(output.find("TruthFinder"), std::string::npos);

  ASSERT_EQ(Run({"eval", "--input", dataset_path_, "--extended"}), 0);
  EXPECT_NE(out_.str().find("TruthFinder"), std::string::npos);
}

TEST_F(CliTest, EvalSingleAlgorithm) {
  ASSERT_EQ(
      Run({"eval", "--input", dataset_path_, "--algorithm", "Voting"}), 0);
  EXPECT_NE(out_.str().find("Voting"), std::string::npos);
  EXPECT_EQ(out_.str().find("IncEstHeu"), std::string::npos);
}

TEST_F(CliTest, EvalWithGoldenSubset) {
  std::string golden = TempPath("cli_golden.csv");
  std::ofstream file(golden);
  file << "fact,label\nr1,true\nr12,false\n";
  file.close();
  ASSERT_EQ(Run({"eval", "--input", dataset_path_, "--algorithm",
                 "TwoEstimate", "--golden", golden}),
            0);
  // TwoEstimate is right on both golden entries: accuracy 1.00.
  EXPECT_NE(out_.str().find("1.00"), std::string::npos);
}

TEST_F(CliTest, EvalRequiresTruth) {
  // Strip the truth column by re-saving without it.
  MotivatingExample example = MakeMotivatingExample();
  std::string no_truth = TempPath("cli_no_truth.csv");
  ASSERT_TRUE(SaveDatasetCsv(no_truth, example.dataset).ok());
  EXPECT_EQ(Run({"eval", "--input", no_truth}), 1);
  EXPECT_NE(err_.str().find("__truth__"), std::string::npos);
}

TEST_F(CliTest, StatsReportsShape) {
  ASSERT_EQ(Run({"stats", "--input", dataset_path_}), 0);
  std::string output = out_.str();
  EXPECT_NE(output.find("facts: 12"), std::string::npos);
  EXPECT_NE(output.find("sources: 5"), std::string::npos);
  EXPECT_NE(output.find("facts with F votes: 2"), std::string::npos);
}

TEST_F(CliTest, GenerateSyntheticRoundTrips) {
  std::string output = TempPath("cli_synth.csv");
  ASSERT_EQ(Run({"generate", "--kind", "synthetic", "--facts", "200",
                 "--sources", "6", "--output", output}),
            0);
  LabeledDataset loaded = LoadDatasetCsv(output).ValueOrDie();
  EXPECT_EQ(loaded.dataset.num_facts(), 200);
  EXPECT_EQ(loaded.dataset.num_sources(), 6);
  ASSERT_TRUE(loaded.truth.has_value());
}

TEST_F(CliTest, GenerateRejectsUnknownKind) {
  EXPECT_EQ(Run({"generate", "--kind", "weather", "--output",
                 TempPath("x.csv")}),
            1);
  EXPECT_NE(err_.str().find("unknown --kind"), std::string::npos);
}

TEST_F(CliTest, DedupEndToEnd) {
  std::string listings = TempPath("cli_listings.csv");
  std::ofstream file(listings);
  file << "source,name,address,closed\n"
          "Yelp,M Bar,12 W 44th St,false\n"
          "Citysearch,M Bar,12 West 44 Street,false\n"
          "Yelp,Other Place,99 Oak Ave,true\n";
  file.close();

  std::string output = TempPath("cli_dedup.csv");
  ASSERT_EQ(Run({"dedup", "--input", listings, "--output", output}), 0);
  EXPECT_NE(out_.str().find("into 2 entities"), std::string::npos);
  LabeledDataset loaded = LoadDatasetCsv(output).ValueOrDie();
  EXPECT_EQ(loaded.dataset.num_facts(), 2);
  EXPECT_EQ(loaded.dataset.num_sources(), 2);
}

TEST_F(CliTest, TrajectoryWritesTimeSeries) {
  std::string output = TempPath("cli_trajectory.csv");
  ASSERT_EQ(
      Run({"trajectory", "--input", dataset_path_, "--output", output}), 0);
  CsvDocument doc = ReadCsvFile(output).ValueOrDie();
  ASSERT_GE(doc.rows.size(), 3u);
  EXPECT_EQ(doc.rows[0][0], "t");
  EXPECT_EQ(doc.rows[0][2], "s1");

  EXPECT_EQ(Run({"trajectory", "--input", dataset_path_, "--output",
                 output, "--strategy", "Greedy"}),
            1);
  EXPECT_EQ(Run({"trajectory", "--input", dataset_path_}), 1);
}

TEST_F(CliTest, CompareReportsDisagreements) {
  // IncEstHeu rejects r6; TwoEstimate accepts it — one disagreement.
  ASSERT_EQ(Run({"compare", "--input", dataset_path_, "--left", "IncEstHeu",
                 "--right", "TwoEstimate"}),
            0);
  std::string output = out_.str();
  EXPECT_NE(output.find("decided differently"), std::string::npos);
  // The truth column is present, so the win rate is reported.
  EXPECT_NE(output.find("is right on"), std::string::npos);
  EXPECT_NE(output.find("r6"), std::string::npos);
}

TEST_F(CliTest, CompareIdenticalAlgorithmsAgree) {
  ASSERT_EQ(Run({"compare", "--input", dataset_path_, "--left", "Voting",
                 "--right", "Voting"}),
            0);
  EXPECT_NE(out_.str().find("0 of 12 facts decided differently"),
            std::string::npos);
}

TEST_F(CliTest, CompareRejectsUnknownAlgorithm) {
  EXPECT_EQ(Run({"compare", "--input", dataset_path_, "--left", "Oracle"}),
            1);
}

TEST_F(CliTest, StreamPrintsDecisionsAndSummary) {
  std::string output = TempPath("cli_stream_out.csv");
  ASSERT_EQ(Run({"stream", "--input", dataset_path_, "--output", output}),
            0);
  CsvDocument doc = ReadCsvFile(output).ValueOrDie();
  ASSERT_EQ(doc.rows.size(), 13u);  // header + 12 facts
  EXPECT_EQ(doc.rows[0],
            (std::vector<std::string>{"fact", "probability", "decision"}));
  EXPECT_NE(out_.str().find("observed 12 facts (12 this run)"),
            std::string::npos);
}

TEST_F(CliTest, StreamKillAndResumeMatchesUninterrupted) {
  std::string trust_clean = TempPath("cli_stream_trust_clean.csv");
  std::string trust_resumed = TempPath("cli_stream_trust_resumed.csv");
  std::string checkpoint = TempPath("cli_stream.snap");
  std::string devnull = TempPath("cli_stream_decisions.csv");

  // Reference: one uninterrupted pass.
  ASSERT_EQ(Run({"stream", "--input", dataset_path_, "--output", devnull,
                 "--trust", trust_clean}),
            0);

  // Killed at fact 6 by an injected fault; the checkpoint survives.
  ASSERT_EQ(Run({"stream", "--input", dataset_path_, "--checkpoint",
                 checkpoint, "--checkpoint-every", "2", "--failpoint",
                 "cli.stream.observe=fail:1:skip=6"}),
            1);
  EXPECT_NE(err_.str().find("checkpoint saved to " + checkpoint +
                            " at fact 6"),
            std::string::npos);

  // Resume finishes the remaining facts with identical final trust.
  ASSERT_EQ(Run({"stream", "--input", dataset_path_, "--checkpoint",
                 checkpoint, "--resume", "--output", devnull, "--trust",
                 trust_resumed}),
            0);
  EXPECT_NE(out_.str().find("resumed from " + checkpoint + " at fact 6"),
            std::string::npos);
  EXPECT_NE(out_.str().find("observed 12 facts (6 this run)"),
            std::string::npos);
  EXPECT_EQ(ReadFileToString(trust_resumed).ValueOrDie(),
            ReadFileToString(trust_clean).ValueOrDie());
}

TEST_F(CliTest, StreamInterruptWithoutCheckpointSavesDerivedPath) {
  std::string trust_clean = TempPath("cli_auto_trust_clean.csv");
  std::string trust_resumed = TempPath("cli_auto_trust_resumed.csv");
  std::string devnull = TempPath("cli_auto_decisions.csv");

  // Reference: one uninterrupted pass.
  ASSERT_EQ(Run({"stream", "--input", dataset_path_, "--output", devnull,
                 "--trust", trust_clean}),
            0);

  // Graceful interrupt at fact 5 with NO --checkpoint: the state must
  // land on the derived per-(input, output) path, not be lost.
  const std::string derived =
      DeriveInterruptCheckpointPath(dataset_path_, devnull);
  cleanup_.push_back(derived);
  ASSERT_EQ(Run({"stream", "--input", dataset_path_, "--output", devnull,
                 "--failpoint", "budget.force_expire=fail:1:skip=5"}),
            0);
  EXPECT_NE(err_.str().find("checkpoint saved, continue with --checkpoint " +
                            derived),
            std::string::npos);
  EXPECT_TRUE(ReadFileToString(derived).ok());

  // The derived checkpoint resumes to the same final trust as the
  // uninterrupted run.
  ASSERT_EQ(Run({"stream", "--input", dataset_path_, "--checkpoint",
                 derived, "--resume", "--output", devnull, "--trust",
                 trust_resumed}),
            0);
  EXPECT_NE(out_.str().find("at fact 5"), std::string::npos);
  EXPECT_EQ(ReadFileToString(trust_resumed).ValueOrDie(),
            ReadFileToString(trust_clean).ValueOrDie());
}

TEST_F(CliTest, StreamInterruptCheckpointsDoNotCollideAcrossRuns) {
  // Two streams over the same input writing different outputs in one
  // directory (the pre-fix collision): their interrupt checkpoints
  // must be distinct files, each resumable on its own.
  std::string output_a = TempPath("cli_collide_a.csv");
  std::string output_b = TempPath("cli_collide_b.csv");
  const std::string derived_a =
      DeriveInterruptCheckpointPath(dataset_path_, output_a);
  const std::string derived_b =
      DeriveInterruptCheckpointPath(dataset_path_, output_b);
  EXPECT_NE(derived_a, derived_b);
  // Same pair → same path (resume can find it); different input, same
  // output → still distinct.
  EXPECT_EQ(derived_a, DeriveInterruptCheckpointPath(dataset_path_, output_a));
  EXPECT_NE(derived_a, DeriveInterruptCheckpointPath("other.csv", output_a));
  cleanup_.push_back(derived_a);
  cleanup_.push_back(derived_b);

  ASSERT_EQ(Run({"stream", "--input", dataset_path_, "--output", output_a,
                 "--failpoint", "budget.force_expire=fail:1:skip=3"}),
            0);
  ASSERT_EQ(Run({"stream", "--input", dataset_path_, "--output", output_b,
                 "--failpoint", "budget.force_expire=fail:1:skip=7"}),
            0);
  // Both checkpoints exist independently, with their own progress.
  ASSERT_EQ(Run({"stream", "--input", dataset_path_, "--checkpoint",
                 derived_a, "--resume", "--output", output_a}),
            0);
  EXPECT_NE(out_.str().find("at fact 3"), std::string::npos);
  ASSERT_EQ(Run({"stream", "--input", dataset_path_, "--checkpoint",
                 derived_b, "--resume", "--output", output_b}),
            0);
  EXPECT_NE(out_.str().find("at fact 7"), std::string::npos);
}

TEST_F(CliTest, StreamRejectsBadResumeFlags) {
  EXPECT_EQ(Run({"stream", "--input", dataset_path_, "--resume"}), 1);
  EXPECT_NE(err_.str().find("--resume requires --checkpoint"),
            std::string::npos);
  EXPECT_EQ(Run({"stream", "--input", dataset_path_, "--checkpoint",
                 TempPath("x.snap"), "--checkpoint-every", "0"}),
            1);
  EXPECT_NE(err_.str().find("--checkpoint-every"), std::string::npos);
}

TEST_F(CliTest, StreamResumeRejectsMismatchedDataset) {
  std::string checkpoint = TempPath("cli_mismatch.snap");
  std::string devnull = TempPath("cli_mismatch_out.csv");
  ASSERT_EQ(Run({"stream", "--input", dataset_path_, "--checkpoint",
                 checkpoint, "--output", devnull}),
            0);
  std::string other = TempPath("cli_other_dataset.csv");
  ASSERT_EQ(Run({"generate", "--kind", "synthetic", "--facts", "30",
                 "--sources", "4", "--output", other}),
            0);
  EXPECT_EQ(Run({"stream", "--input", other, "--checkpoint", checkpoint,
                 "--resume"}),
            1);
  EXPECT_NE(err_.str().find("sources"), std::string::npos);
}

TEST_F(CliTest, BudgetFlagsRejectBadValues) {
  EXPECT_EQ(Run({"run", "--input", dataset_path_, "--algorithm",
                 "TwoEstimate", "--timeout-ms", "-5"}),
            1);
  EXPECT_NE(err_.str().find("--timeout-ms"), std::string::npos);
  EXPECT_EQ(Run({"run", "--input", dataset_path_, "--algorithm",
                 "TwoEstimate", "--max-rounds", "-1"}),
            1);
  EXPECT_NE(err_.str().find("max_rounds"), std::string::npos);
  EXPECT_EQ(Run({"run", "--input", dataset_path_, "--algorithm",
                 "TwoEstimate", "--max-memory-mb", "-2"}),
            1);
  EXPECT_EQ(Run({"run", "--input", dataset_path_, "--algorithm",
                 "TwoEstimate", "--max-rounds", "abc"}),
            1);
}

TEST_F(CliTest, RunWithRoundBudgetDegradesGracefully) {
  // A one-round budget cuts TwoEstimate far short of convergence; the
  // run must still exit 0 with a complete decisions CSV on stdout and
  // explain itself on stderr (stdout carries data, never notices).
  ASSERT_EQ(Run({"run", "--input", dataset_path_, "--algorithm",
                 "TwoEstimate", "--max-rounds", "1"}),
            0);
  CsvDocument doc = ParseCsv(out_.str()).ValueOrDie();
  EXPECT_EQ(doc.rows.size(), 13u);  // header + all 12 facts
  EXPECT_NE(err_.str().find("terminated early (budget_exhausted)"),
            std::string::npos);
  EXPECT_NE(err_.str().find("best-so-far"), std::string::npos);
}

TEST_F(CliTest, RunCancelledMidFixpointStillEmitsDecisions) {
  ASSERT_EQ(Run({"run", "--input", dataset_path_, "--algorithm",
                 "TwoEstimate", "--failpoint",
                 "cancel.at_iteration=fail:1:skip=1"}),
            0);
  CsvDocument doc = ParseCsv(out_.str()).ValueOrDie();
  EXPECT_EQ(doc.rows.size(), 13u);
  EXPECT_NE(err_.str().find("terminated early (cancelled)"),
            std::string::npos);
}

TEST_F(CliTest, GenerousBudgetsLeaveTheRunUntouched) {
  ASSERT_EQ(Run({"run", "--input", dataset_path_, "--algorithm",
                 "TwoEstimate", "--timeout-ms", "600000",
                 "--max-memory-mb", "4096"}),
            0);
  EXPECT_EQ(err_.str().find("terminated early"), std::string::npos);
  CsvDocument doc = ParseCsv(out_.str()).ValueOrDie();
  EXPECT_EQ(doc.rows.size(), 13u);
}

TEST_F(CliTest, StreamInterruptSavesCheckpointAndExitsZero) {
  std::string trust_clean = TempPath("cli_budget_trust_clean.csv");
  std::string trust_resumed = TempPath("cli_budget_trust_resumed.csv");
  std::string checkpoint = TempPath("cli_budget_stream.snap");
  std::string devnull = TempPath("cli_budget_decisions.csv");

  ASSERT_EQ(Run({"stream", "--input", dataset_path_, "--output", devnull,
                 "--trust", trust_clean}),
            0);

  // A cancellation landing after fact 6 (the failpoint stands in for
  // SIGINT, which would poison this process's shutdown token for
  // later tests) is a *graceful* stop: exit 0, checkpoint saved.
  ASSERT_EQ(Run({"stream", "--input", dataset_path_, "--checkpoint",
                 checkpoint, "--checkpoint-every", "2", "--output",
                 devnull, "--failpoint",
                 "cancel.at_iteration=fail:1:skip=6"}),
            0);
  EXPECT_NE(err_.str().find("stream interrupted (cancelled) at fact 6"),
            std::string::npos);
  EXPECT_NE(err_.str().find("checkpoint saved, continue with --checkpoint " +
                            checkpoint + " --resume"),
            std::string::npos);

  ASSERT_EQ(Run({"stream", "--input", dataset_path_, "--checkpoint",
                 checkpoint, "--resume", "--output", devnull, "--trust",
                 trust_resumed}),
            0);
  EXPECT_NE(out_.str().find("resumed from " + checkpoint + " at fact 6"),
            std::string::npos);
  EXPECT_EQ(ReadFileToString(trust_resumed).ValueOrDie(),
            ReadFileToString(trust_clean).ValueOrDie());
}

TEST_F(CliTest, LenientLoadReportsSkippedRows) {
  std::string noisy = TempPath("cli_noisy.csv");
  std::ofstream file(noisy);
  file << "fact,s1,s2\nr1,T,F\nr2,Q,T\nr3,T,-\n";
  file.close();

  // Strict (default) refuses the file outright, naming the culprit.
  EXPECT_EQ(Run({"stats", "--input", noisy}), 1);
  EXPECT_NE(err_.str().find("'Q'"), std::string::npos);
  EXPECT_NE(err_.str().find(noisy), std::string::npos);

  // Lenient loads the clean rows and reports the skip on stderr.
  ASSERT_EQ(Run({"stats", "--input", noisy, "--lenient"}), 0);
  EXPECT_NE(out_.str().find("facts: 2"), std::string::npos);
  EXPECT_NE(err_.str().find("skipped 1 of 3 rows"), std::string::npos);
}

TEST_F(CliTest, BadFailpointSpecFails) {
  EXPECT_EQ(Run({"stats", "--input", dataset_path_, "--failpoint",
                 "cli.stream.observe=explode"}),
            1);
  EXPECT_NE(err_.str().find("failpoint"), std::string::npos);
}

TEST_F(CliTest, FailpointInjectsIntoFileReads) {
  EXPECT_EQ(Run({"stats", "--input", dataset_path_, "--failpoint",
                 "io.read_file.open=fail:1"}),
            1);
  EXPECT_NE(err_.str().find("injected failure"), std::string::npos);
  // The arming is scoped to the invocation: the next run is clean.
  EXPECT_EQ(Run({"stats", "--input", dataset_path_}), 0);
}

TEST_F(CliTest, DedupRejectsBadHeader) {
  std::string listings = TempPath("cli_bad_listings.csv");
  std::ofstream file(listings);
  file << "a,b\n1,2\n";
  file.close();
  EXPECT_EQ(Run({"dedup", "--input", listings, "--output",
                 TempPath("y.csv")}),
            1);
  EXPECT_NE(err_.str().find("header"), std::string::npos);
}

TEST_F(CliTest, RunMethodAliasWritesTraceMetricsAndTelemetry) {
  // The PR's acceptance command: snake_case --method plus all three
  // observability sinks in one invocation.
  std::string trace = TempPath("cli_trace.json");
  std::string metrics = TempPath("cli_metrics.json");
  std::string telemetry = TempPath("cli_telemetry.json");
  ASSERT_EQ(Run({"run", "--input", dataset_path_, "--method", "inc_est_heu",
                 "--trace", trace, "--metrics", metrics, "--telemetry",
                 telemetry, "--output", TempPath("cli_run_out.csv")}),
            0);
  EXPECT_NE(out_.str().find("trace events to " + trace), std::string::npos);
  EXPECT_NE(out_.str().find("wrote metrics to " + metrics),
            std::string::npos);

  obs::JsonValue trace_json;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::Parse(
      ReadFileToString(trace).ValueOrDie(), &trace_json, &error))
      << error;
  const obs::JsonValue* events = trace_json.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->size(), 0u);

  obs::JsonValue metrics_json;
  ASSERT_TRUE(obs::JsonValue::Parse(
      ReadFileToString(metrics).ValueOrDie(), &metrics_json, &error))
      << error;
  ASSERT_NE(metrics_json.Find("counters"), nullptr);
  const obs::JsonValue* scans =
      metrics_json.Find("counters")->Find("corrob.inc_est.delta_h_scans");
  ASSERT_NE(scans, nullptr);
  EXPECT_GT(scans->int_value(), 0);

  obs::RunTelemetry run_telemetry;
  ASSERT_TRUE(obs::TelemetryFromJsonString(
      ReadFileToString(telemetry).ValueOrDie(), &run_telemetry, &error))
      << error;
  EXPECT_EQ(run_telemetry.algorithm, "IncEstHeu");
  EXPECT_FALSE(run_telemetry.rounds.empty());
}

TEST_F(CliTest, RunTelemetryRejectsNonIterativeAlgorithm) {
  EXPECT_EQ(Run({"run", "--input", dataset_path_, "--algorithm", "Voting",
                 "--telemetry", TempPath("cli_no_telemetry.json")}),
            1);
  EXPECT_NE(err_.str().find("does not record telemetry"),
            std::string::npos);
}

TEST_F(CliTest, ExplainPrintsOneRowPerRound) {
  std::string telemetry = TempPath("cli_explain_telemetry.json");
  ASSERT_EQ(Run({"run", "--input", dataset_path_, "--method", "inc_est_heu",
                 "--telemetry", telemetry, "--output",
                 TempPath("cli_explain_out.csv")}),
            0);
  obs::RunTelemetry run_telemetry;
  ASSERT_TRUE(obs::TelemetryFromJsonString(
      ReadFileToString(telemetry).ValueOrDie(), &run_telemetry, nullptr));
  ASSERT_FALSE(run_telemetry.rounds.empty());

  ASSERT_EQ(Run({"explain", telemetry}), 0);
  const std::string rendered = out_.str();
  EXPECT_NE(rendered.find("IncEstHeu"), std::string::npos);
  EXPECT_NE(rendered.find("FG+ signature"), std::string::npos);
  // One table row per recorded round: every round number appears at a
  // row start.
  for (const obs::IncRoundEvent& event : run_telemetry.rounds) {
    EXPECT_NE(rendered.find("| " + std::to_string(event.round) + " "),
              std::string::npos)
        << "round " << event.round << " missing from:\n" << rendered;
  }
}

TEST_F(CliTest, ExplainRendersFixpointIterations) {
  std::string telemetry = TempPath("cli_explain_fix.json");
  ASSERT_EQ(Run({"run", "--input", dataset_path_, "--algorithm",
                 "TwoEstimate", "--telemetry", telemetry, "--output",
                 TempPath("cli_explain_fix_out.csv")}),
            0);
  ASSERT_EQ(Run({"explain", telemetry}), 0);
  EXPECT_NE(out_.str().find("TwoEstimate"), std::string::npos);
  EXPECT_NE(out_.str().find("Max delta"), std::string::npos);
}

TEST_F(CliTest, ExplainFailsCleanlyOnBadInput) {
  EXPECT_EQ(Run({"explain"}), 1);
  EXPECT_NE(err_.str().find("usage"), std::string::npos);
  EXPECT_EQ(Run({"explain", "/nonexistent/telemetry.json"}), 1);
  std::string junk = TempPath("cli_junk.json");
  ASSERT_TRUE(WriteStringToFile(junk, "{\"schema\": \"wrong\"}").ok());
  EXPECT_EQ(Run({"explain", junk}), 1);
}

TEST_F(CliTest, StreamResumeContinuesTelemetryCounters) {
  // The bugfix under test: counters must travel with the checkpoint,
  // so interrupted-then-resumed totals equal an uninterrupted run's.
  std::string clean = TempPath("cli_stream_tel_clean.json");
  std::string resumed = TempPath("cli_stream_tel_resumed.json");
  std::string checkpoint = TempPath("cli_stream_tel.snap");

  ASSERT_EQ(Run({"stream", "--input", dataset_path_, "--output",
                 TempPath("cli_stream_tel_out1.csv"), "--telemetry",
                 clean}),
            0);
  ASSERT_EQ(Run({"stream", "--input", dataset_path_, "--checkpoint",
                 checkpoint, "--checkpoint-every", "2", "--failpoint",
                 "cli.stream.observe=fail:1:skip=6"}),
            1);
  ASSERT_EQ(Run({"stream", "--input", dataset_path_, "--checkpoint",
                 checkpoint, "--resume", "--output",
                 TempPath("cli_stream_tel_out2.csv"), "--telemetry",
                 resumed}),
            0);
  EXPECT_EQ(ReadFileToString(resumed).ValueOrDie(),
            ReadFileToString(clean).ValueOrDie());
}

}  // namespace
}  // namespace corrob
