// Termination parity: interrupting a corroboration run after k
// completed iterations/rounds — whether through the
// cancel.at_iteration failpoint or a ResourceBudget round cap — must
// return exactly the state of an uninterrupted run truncated at k,
// bit for bit, at any thread count. Only the Termination reason may
// differ (docs/ROBUSTNESS.md, "Deadlines, cancellation, and
// budgets").

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/failpoint.h"
#include "core/bayes_estimate.h"
#include "core/cosine.h"
#include "core/inc_estimate.h"
#include "core/pasternack.h"
#include "core/registry.h"
#include "core/run_context.h"
#include "core/three_estimate.h"
#include "core/truth_finder.h"
#include "core/two_estimate.h"
#include "obs/clock.h"
#include "testing/property.h"

namespace corrob {
namespace {

using proptest::ExpectBitIdenticalBestSoFar;
using proptest::ExpectBitIdenticalResults;
using proptest::ForEachSeed;
using proptest::MakeRandomDataset;

/// A fixpoint method whose natural truncation is max_iterations.
struct FixpointMethod {
  std::string name;
  /// Whether CorroboratorOptions-style num_threads applies.
  bool threaded;
  std::function<std::unique_ptr<Corroborator>(int max_iterations,
                                              int num_threads)>
      make;
};

std::vector<FixpointMethod> FixpointMethods() {
  std::vector<FixpointMethod> methods;
  methods.push_back(
      {"TwoEstimate", true,
       [](int cap, int threads) -> std::unique_ptr<Corroborator> {
         TwoEstimateOptions options;
         options.max_iterations = cap;
         options.num_threads = threads;
         return std::make_unique<TwoEstimateCorroborator>(options);
       }});
  methods.push_back(
      {"ThreeEstimate", true,
       [](int cap, int threads) -> std::unique_ptr<Corroborator> {
         ThreeEstimateOptions options;
         options.max_iterations = cap;
         options.num_threads = threads;
         return std::make_unique<ThreeEstimateCorroborator>(options);
       }});
  methods.push_back(
      {"Cosine", true,
       [](int cap, int threads) -> std::unique_ptr<Corroborator> {
         CosineOptions options;
         options.max_iterations = cap;
         options.num_threads = threads;
         return std::make_unique<CosineCorroborator>(options);
       }});
  methods.push_back(
      {"TruthFinder", true,
       [](int cap, int threads) -> std::unique_ptr<Corroborator> {
         TruthFinderOptions options;
         options.max_iterations = cap;
         options.num_threads = threads;
         return std::make_unique<TruthFinderCorroborator>(options);
       }});
  methods.push_back(
      {"AvgLog", false,
       [](int cap, int) -> std::unique_ptr<Corroborator> {
         PasternackOptions options;
         options.max_iterations = cap;
         return std::make_unique<PasternackCorroborator>(options);
       }});
  return methods;
}

/// Runs `method` with the cancel.at_iteration failpoint armed to fire
/// after exactly `k` completed iterations, then disarms.
CorroborationResult RunWithCancelAt(const Corroborator& method,
                                    const Dataset& dataset, int64_t k) {
  EXPECT_TRUE(Failpoints::ArmFromSpec("cancel.at_iteration=fail:1:skip=" +
                                      std::to_string(k))
                  .ok());
  CorroborationResult result = method.Run(dataset).ValueOrDie();
  Failpoints::DisarmAll();
  return result;
}

RunContext RoundBudget(int64_t max_rounds) {
  ResourceBudget budget;
  budget.max_rounds = max_rounds;
  RunContext context;
  context.WithBudget(budget);
  return context;
}

class TerminationParityTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::DisarmAll(); }
};

TEST_F(TerminationParityTest, FixpointInterruptedAtKMatchesTruncatedRun) {
  for (const FixpointMethod& method : FixpointMethods()) {
    for (int threads : {1, 4}) {
      if (threads > 1 && !method.threaded) continue;
      SCOPED_TRACE(method.name + " threads=" + std::to_string(threads));
      ForEachSeed(0xB0D6E7, 6, [&](uint64_t seed) {
        Dataset dataset = MakeRandomDataset(seed);
        for (int64_t k : {1, 3}) {
          SCOPED_TRACE("k=" + std::to_string(k));
          auto truncated_method =
              method.make(static_cast<int>(k), threads);
          auto full_method = method.make(100, threads);
          CorroborationResult truncated =
              truncated_method->Run(dataset).ValueOrDie();
          CorroborationResult cancelled =
              RunWithCancelAt(*full_method, dataset, k);
          CorroborationResult budgeted =
              full_method->Run(dataset, RoundBudget(k)).ValueOrDie();
          ExpectBitIdenticalBestSoFar(truncated, cancelled);
          ExpectBitIdenticalBestSoFar(truncated, budgeted);
          if (truncated.termination == Termination::kIterationCap) {
            EXPECT_EQ(cancelled.termination, Termination::kCancelled);
            EXPECT_EQ(budgeted.termination,
                      Termination::kBudgetExhausted);
          } else {
            // The run converged before iteration k, so no
            // interruption fired in any arm.
            EXPECT_EQ(truncated.termination, Termination::kConverged);
            EXPECT_EQ(cancelled.termination, Termination::kConverged);
            EXPECT_EQ(budgeted.termination, Termination::kConverged);
          }
        }
      });
    }
  }
}

TEST_F(TerminationParityTest,
       CancelledRunsAreBitIdenticalAcrossThreadCounts) {
  for (const FixpointMethod& method : FixpointMethods()) {
    if (!method.threaded) continue;
    SCOPED_TRACE(method.name);
    ForEachSeed(0xC4A11D, 6, [&](uint64_t seed) {
      Dataset dataset = MakeRandomDataset(seed);
      auto sequential = method.make(100, 1);
      auto parallel = method.make(100, 4);
      CorroborationResult a = RunWithCancelAt(*sequential, dataset, 2);
      CorroborationResult b = RunWithCancelAt(*parallel, dataset, 2);
      ExpectBitIdenticalResults(a, b);
    });
  }
}

TEST_F(TerminationParityTest, IncEstimateInterruptedAtRoundKProjects) {
  for (IncSelectStrategy strategy :
       {IncSelectStrategy::kHeuristic, IncSelectStrategy::kProbability}) {
    for (int threads : {1, 4}) {
      SCOPED_TRACE(std::string(strategy == IncSelectStrategy::kHeuristic
                                   ? "IncEstHeu"
                                   : "IncEstPS") +
                   " threads=" + std::to_string(threads));
      IncEstimateOptions options;
      options.strategy = strategy;
      options.num_threads = threads;
      options.record_trajectory = true;
      IncEstimateCorroborator method(options);
      ForEachSeed(0x1CE57, 6, [&](uint64_t seed) {
        Dataset dataset = MakeRandomDataset(seed);
        for (int64_t k : {1, 2}) {
          SCOPED_TRACE("k=" + std::to_string(k));
          CorroborationResult cancelled =
              RunWithCancelAt(method, dataset, k);
          CorroborationResult budgeted =
              method.Run(dataset, RoundBudget(k)).ValueOrDie();
          // "Cancel after round k" and "round budget of k" are the
          // same truncation point; both project the remaining facts
          // with the trust of the last completed round.
          ExpectBitIdenticalBestSoFar(cancelled, budgeted);
          if (cancelled.termination == Termination::kConverged) {
            EXPECT_EQ(budgeted.termination, Termination::kConverged);
          } else {
            EXPECT_EQ(cancelled.termination, Termination::kCancelled);
            EXPECT_EQ(budgeted.termination,
                      Termination::kBudgetExhausted);
          }
          // Graceful degradation: the interrupted result is still a
          // complete answer — every fact carries a commit round.
          ASSERT_EQ(cancelled.fact_commit_round.size(),
                    static_cast<size_t>(dataset.num_facts()));
          for (int32_t committed_round : cancelled.fact_commit_round) {
            EXPECT_GE(committed_round, 0);
          }
        }
      });
    }
  }
}

TEST_F(TerminationParityTest, BayesCancelledAtSweepMatchesRoundBudget) {
  BayesEstimateOptions options;
  options.iterations = 40;
  options.burn_in = 10;
  BayesEstimateCorroborator method(options);
  ForEachSeed(0xBA7E5, 4, [&](uint64_t seed) {
    Dataset dataset = MakeRandomDataset(seed);
    // k=1 and k=5 interrupt inside the burn-in (the fallback labels
    // path); k=25 interrupts with samples kept.
    for (int64_t k : {1, 5, 25}) {
      SCOPED_TRACE("k=" + std::to_string(k));
      CorroborationResult cancelled = RunWithCancelAt(method, dataset, k);
      CorroborationResult budgeted =
          method.Run(dataset, RoundBudget(k)).ValueOrDie();
      ExpectBitIdenticalBestSoFar(cancelled, budgeted);
      EXPECT_EQ(cancelled.termination, Termination::kCancelled);
      EXPECT_EQ(budgeted.termination, Termination::kBudgetExhausted);
      EXPECT_EQ(cancelled.iterations, k);
    }
  });
}

TEST_F(TerminationParityTest, ArmedButIdleContextIsExactlyLegacy) {
  // A context with a live (never firing) token and a far-future
  // deadline must not perturb a single bit of any method's output:
  // the best-so-far machinery only engages when something fires.
  CancellationToken token;
  RunContext armed;
  armed.WithCancellation(&token);
  armed.WithDeadline(
      Deadline::AfterMs(obs::MonotonicClock::Get(), 1e9));
  for (const std::string& name :
       {std::string("Voting"), std::string("Counting"),
        std::string("TwoEstimate"), std::string("ThreeEstimate"),
        std::string("BayesEstimate"), std::string("IncEstHeu"),
        std::string("IncEstPS"), std::string("Cosine"),
        std::string("TruthFinder"), std::string("AvgLog"),
        std::string("Invest"), std::string("PooledInvest")}) {
    SCOPED_TRACE(name);
    auto method = MakeCorroborator(name).ValueOrDie();
    ForEachSeed(0x1D7E, 3, [&](uint64_t seed) {
      Dataset dataset = MakeRandomDataset(seed);
      CorroborationResult baseline = method->Run(dataset).ValueOrDie();
      CorroborationResult idle = method->Run(dataset, armed).ValueOrDie();
      ExpectBitIdenticalResults(baseline, idle);
    });
  }
}

}  // namespace
}  // namespace corrob
