#include "core/online_checkpoint.h"

#include <cstdio>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/csv.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "data/vote.h"

namespace corrob {
namespace {

/// A corroborator with a non-trivial trust state: 6 sources, 300
/// pseudo-random observations.
OnlineCorroborator MakeBusyCorroborator(uint64_t seed = 11) {
  OnlineCorroboratorOptions options;
  options.initial_trust = 0.85;
  options.trust_prior_weight = 4.0;
  options.tie_margin = 0.03;
  OnlineCorroborator online(options);
  for (int s = 0; s < 6; ++s) {
    online.AddSource("src" + std::to_string(s));
  }
  Rng rng(seed);
  for (int i = 0; i < 300; ++i) {
    std::vector<SourceVote> votes;
    for (SourceId s = 0; s < 6; ++s) {
      if (rng.Bernoulli(0.4)) {
        votes.push_back(
            {s, rng.Bernoulli(0.85) ? Vote::kTrue : Vote::kFalse});
      }
    }
    EXPECT_TRUE(online.Observe(votes).ok());
  }
  return online;
}

void ExpectBitIdenticalState(const OnlineCorroborator& a,
                             const OnlineCorroborator& b) {
  OnlineCorroboratorState sa = a.ExportState();
  OnlineCorroboratorState sb = b.ExportState();
  EXPECT_EQ(sa.source_names, sb.source_names);
  EXPECT_EQ(sa.correct, sb.correct);  // exact double equality
  EXPECT_EQ(sa.total, sb.total);
  EXPECT_EQ(sa.facts_observed, sb.facts_observed);
  EXPECT_EQ(sa.decisions_true, sb.decisions_true);
  EXPECT_EQ(sa.decisions_false, sb.decisions_false);
  EXPECT_EQ(sa.deferrals, sb.deferrals);
  EXPECT_DOUBLE_EQ(sa.options.initial_trust, sb.options.initial_trust);
  EXPECT_DOUBLE_EQ(sa.options.trust_prior_weight,
                   sb.options.trust_prior_weight);
  EXPECT_DOUBLE_EQ(sa.options.tie_margin, sb.options.tie_margin);
}

TEST(OnlineStateTest, ExportRestoreRoundTrip) {
  OnlineCorroborator online = MakeBusyCorroborator();
  auto restored =
      OnlineCorroborator::FromState(online.ExportState()).ValueOrDie();
  ExpectBitIdenticalState(online, restored);
  EXPECT_EQ(restored.trust_snapshot(), online.trust_snapshot());
}

TEST(OnlineStateTest, FromStateRejectsInconsistency) {
  OnlineCorroboratorState state = MakeBusyCorroborator().ExportState();
  {
    OnlineCorroboratorState bad = state;
    bad.correct.pop_back();
    EXPECT_EQ(OnlineCorroborator::FromState(bad).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    OnlineCorroboratorState bad = state;
    bad.correct[0] = bad.total[0] + 1.0;  // correct > total
    EXPECT_EQ(OnlineCorroborator::FromState(bad).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    OnlineCorroboratorState bad = state;
    bad.total[1] = -1.0;
    EXPECT_EQ(OnlineCorroborator::FromState(bad).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    OnlineCorroboratorState bad = state;
    bad.facts_observed = -5;
    EXPECT_EQ(OnlineCorroborator::FromState(bad).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    OnlineCorroboratorState bad = state;
    bad.source_names[1] = bad.source_names[0];  // duplicate name
    EXPECT_EQ(OnlineCorroborator::FromState(bad).status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(OnlineCheckpointTest, SerializeParseRoundTripIsBitIdentical) {
  OnlineCorroborator online = MakeBusyCorroborator();
  std::string snapshot = SerializeOnlineSnapshot(online);
  auto restored = ParseOnlineSnapshot(snapshot).ValueOrDie();
  ExpectBitIdenticalState(online, restored);

  // The restored instance continues identically.
  std::vector<SourceVote> votes{{0, Vote::kTrue}, {3, Vote::kFalse}};
  auto va = online.Observe(votes).ValueOrDie();
  auto vb = restored.Observe(votes).ValueOrDie();
  EXPECT_EQ(va.probability, vb.probability);  // exact, not approximate
  EXPECT_EQ(va.decision, vb.decision);
}

TEST(OnlineCheckpointTest, EmptyCorroboratorRoundTrips) {
  OnlineCorroborator online;
  auto restored =
      ParseOnlineSnapshot(SerializeOnlineSnapshot(online)).ValueOrDie();
  EXPECT_EQ(restored.num_sources(), 0);
  EXPECT_EQ(restored.facts_observed(), 0);
}

TEST(OnlineCheckpointTest, RejectsGarbageAsParseError) {
  EXPECT_EQ(ParseOnlineSnapshot("").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseOnlineSnapshot("not a snapshot at all").status().code(),
            StatusCode::kParseError);
}

TEST(OnlineCheckpointTest, RejectsTruncationAsParseError) {
  std::string snapshot =
      SerializeOnlineSnapshot(MakeBusyCorroborator());
  for (size_t keep : {snapshot.size() - 1, snapshot.size() / 2, size_t{21},
                      size_t{12}}) {
    auto result = ParseOnlineSnapshot(snapshot.substr(0, keep));
    EXPECT_EQ(result.status().code(), StatusCode::kParseError)
        << "kept " << keep << " bytes";
  }
}

TEST(OnlineCheckpointTest, RejectsBitFlipsAsParseError) {
  std::string snapshot =
      SerializeOnlineSnapshot(MakeBusyCorroborator());
  // Flip one payload bit: the CRC must catch it.
  std::string corrupted = snapshot;
  corrupted[25] = static_cast<char>(corrupted[25] ^ 0x10);
  EXPECT_EQ(ParseOnlineSnapshot(corrupted).status().code(),
            StatusCode::kParseError);
  // Flip a CRC bit: also corruption.
  corrupted = snapshot;
  corrupted[snapshot.size() - 1] =
      static_cast<char>(corrupted[snapshot.size() - 1] ^ 0x01);
  EXPECT_EQ(ParseOnlineSnapshot(corrupted).status().code(),
            StatusCode::kParseError);
}

TEST(OnlineCheckpointTest, TelemetryCountersSurviveRoundTrip) {
  OnlineCorroborator online = MakeBusyCorroborator();
  ASSERT_GT(online.decisions_true() + online.decisions_false(), 0);
  EXPECT_EQ(online.decisions_true() + online.decisions_false(),
            online.facts_observed());
  auto restored =
      ParseOnlineSnapshot(SerializeOnlineSnapshot(online)).ValueOrDie();
  EXPECT_EQ(restored.decisions_true(), online.decisions_true());
  EXPECT_EQ(restored.decisions_false(), online.decisions_false());
  EXPECT_EQ(restored.deferrals(), online.deferrals());
}

// Serialization helpers mirroring the v1 on-disk layout, so the
// back-compat test can fabricate a genuine v-old snapshot.
void AppendU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void AppendU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void AppendF64(std::string* out, double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU64(out, bits);
}

TEST(OnlineCheckpointTest, ParsesV1SnapshotsWithZeroedCounters) {
  // A v1 snapshot (pre-telemetry format: no counter section) must
  // still load; the counters start over at zero but the trust state
  // restores bit-identically.
  OnlineCorroborator online = MakeBusyCorroborator();
  OnlineCorroboratorState state = online.ExportState();

  std::string payload;
  AppendF64(&payload, state.options.initial_trust);
  AppendF64(&payload, state.options.trust_prior_weight);
  AppendF64(&payload, state.options.tie_margin);
  AppendU64(&payload, static_cast<uint64_t>(state.facts_observed));
  AppendU32(&payload, static_cast<uint32_t>(state.source_names.size()));
  for (size_t s = 0; s < state.source_names.size(); ++s) {
    AppendU32(&payload,
              static_cast<uint32_t>(state.source_names[s].size()));
    payload += state.source_names[s];
    AppendF64(&payload, state.correct[s]);
    AppendF64(&payload, state.total[s]);
  }
  std::string snapshot = "CORROBSN";
  AppendU32(&snapshot, 1);  // kOnlineSnapshotMinVersion
  AppendU64(&snapshot, payload.size());
  snapshot += payload;
  AppendU32(&snapshot, ComputeCrc32(payload));

  auto restored = ParseOnlineSnapshot(snapshot).ValueOrDie();
  OnlineCorroboratorState rs = restored.ExportState();
  EXPECT_EQ(rs.correct, state.correct);
  EXPECT_EQ(rs.total, state.total);
  EXPECT_EQ(rs.facts_observed, state.facts_observed);
  EXPECT_EQ(restored.decisions_true(), 0);
  EXPECT_EQ(restored.decisions_false(), 0);
  EXPECT_EQ(restored.deferrals(), 0);
  EXPECT_EQ(restored.trust_snapshot(), online.trust_snapshot());
}

TEST(OnlineCheckpointTest, RejectsInconsistentCounters) {
  OnlineCorroboratorState state = MakeBusyCorroborator().ExportState();
  {
    OnlineCorroboratorState bad = state;
    bad.deferrals = -1;
    EXPECT_EQ(OnlineCorroborator::FromState(bad).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    OnlineCorroboratorState bad = state;
    bad.decisions_true = bad.facts_observed + 1;
    bad.decisions_false = 1;  // decided more facts than observed
    EXPECT_EQ(OnlineCorroborator::FromState(bad).status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(OnlineCheckpointTest, RejectsNewerVersionNamingBothVersions) {
  // A v(N+1) snapshot fed to a vN build: the version word lives at
  // bytes [8,12) and the CRC covers only the payload, so patching the
  // header needs no re-checksum. The error must be a
  // kFailedPrecondition (not kParseError: the bytes are fine, the
  // build is old) naming both the snapshot's version and the newest
  // one this build supports.
  std::string snapshot =
      SerializeOnlineSnapshot(MakeBusyCorroborator());
  std::string future = snapshot;
  future[8] = static_cast<char>(kOnlineSnapshotVersion + 1);
  auto result = ParseOnlineSnapshot(future);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  const std::string message(result.status().message());
  EXPECT_NE(message.find("version " +
                         std::to_string(kOnlineSnapshotVersion + 1)),
            std::string::npos);
  EXPECT_NE(message.find("max version " +
                         std::to_string(kOnlineSnapshotVersion)),
            std::string::npos);
  EXPECT_NE(message.find("newer"), std::string::npos);
}

TEST(OnlineCheckpointTest, RejectsPrehistoricVersionAsTooOld) {
  std::string snapshot =
      SerializeOnlineSnapshot(MakeBusyCorroborator());
  std::string ancient = snapshot;
  ancient[8] = static_cast<char>(kOnlineSnapshotMinVersion - 1);
  auto result = ParseOnlineSnapshot(ancient);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(std::string(result.status().message()).find("older"),
            std::string::npos);
}

TEST(OnlineCheckpointTest, SaveLoadThroughDisk) {
  std::string path = ::testing::TempDir() + "/corrob_snapshot_test.snap";
  OnlineCorroborator online = MakeBusyCorroborator();
  ASSERT_TRUE(SaveOnlineSnapshot(path, online).ok());
  auto restored = LoadOnlineSnapshot(path).ValueOrDie();
  ExpectBitIdenticalState(online, restored);
  std::remove(path.c_str());
}

TEST(OnlineCheckpointTest, LoadMissingFileIsNotFound) {
  auto result = LoadOnlineSnapshot("/nonexistent/snapshot.snap");
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(OnlineCheckpointTest, LoadNamesThePathOnCorruption) {
  std::string path = ::testing::TempDir() + "/corrob_corrupt_test.snap";
  ASSERT_TRUE(WriteFileAtomic(path, "junk bytes").ok());
  auto result = LoadOnlineSnapshot(path);
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find(path), std::string::npos);
  std::remove(path.c_str());
}

TEST(OnlineCheckpointTest, InjectedSaveFaultLeavesOldSnapshotIntact) {
  ScopedFailpointDisarmer disarmer;
  std::string path = ::testing::TempDir() + "/corrob_snapshot_fault.snap";
  OnlineCorroborator before = MakeBusyCorroborator(1);
  ASSERT_TRUE(SaveOnlineSnapshot(path, before).ok());

  // Every write attempt fails at the fsync stage: the retried save
  // reports IoError and the previous snapshot is still loadable.
  Failpoints::Arm("io.atomic_write.fsync");
  RetryPolicy policy = DefaultIoRetryPolicy();
  policy.enable_sleep = false;
  OnlineCorroborator after = MakeBusyCorroborator(2);
  Status status = SaveOnlineSnapshot(path, after, policy);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  Failpoints::DisarmAll();

  auto restored = LoadOnlineSnapshot(path).ValueOrDie();
  ExpectBitIdenticalState(before, restored);
  std::remove(path.c_str());
}

TEST(OnlineCheckpointTest, InterruptCheckpointPathKeepsFullSuffix) {
  // Regression: the suffix buffer used to be one byte short, so the
  // formatted ".interrupt-<crc32>.snap" lost its final character and
  // interrupt checkpoints landed on ".sna" paths.
  const std::string path =
      DeriveInterruptCheckpointPath("in.csv", "out.csv");
  ASSERT_GE(path.size(), 5u);
  EXPECT_EQ(path.substr(path.size() - 5), ".snap");
  EXPECT_EQ(path.size(), std::string("out.csv").size() + 11 + 8 + 5);
  // Different input paths against the same output stem must still get
  // distinct checkpoint files.
  EXPECT_NE(path, DeriveInterruptCheckpointPath("other.csv", "out.csv"));
}

TEST(OnlineCheckpointTest, RetryMasksTransientSaveFault) {
  ScopedFailpointDisarmer disarmer;
  std::string path = ::testing::TempDir() + "/corrob_snapshot_retry.snap";
  FailpointConfig config;
  config.max_failures = 2;  // fewer than the 3 attempts
  Failpoints::Arm("io.atomic_write.open", config);
  RetryPolicy policy = DefaultIoRetryPolicy();
  policy.enable_sleep = false;
  OnlineCorroborator online = MakeBusyCorroborator();
  EXPECT_TRUE(SaveOnlineSnapshot(path, online, policy).ok());
  EXPECT_EQ(Failpoints::FailureCount("io.atomic_write.open"), 2);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace corrob
