#include "core/fact_group.h"

#include <gtest/gtest.h>

#include "data/motivating_example.h"

namespace corrob {
namespace {

TEST(FactGroupTest, MotivatingExampleGroups) {
  // Table 1 signatures: {r7, r8} and {r4, r10} are the only
  // multi-fact groups; everything else is a singleton -> 10 groups.
  MotivatingExample example = MakeMotivatingExample();
  std::vector<FactGroup> groups = BuildFactGroups(example.dataset);
  EXPECT_EQ(groups.size(), 10u);

  size_t total = 0;
  int multi = 0;
  for (const FactGroup& g : groups) {
    total += g.size();
    if (g.size() > 1) ++multi;
  }
  EXPECT_EQ(total, 12u);
  EXPECT_EQ(multi, 2);
}

TEST(FactGroupTest, GroupsShareSignature) {
  MotivatingExample example = MakeMotivatingExample();
  std::vector<FactGroup> groups = BuildFactGroups(example.dataset);
  for (const FactGroup& g : groups) {
    for (FactId f : g.facts) {
      auto votes = example.dataset.VotesOnFact(f);
      ASSERT_EQ(votes.size(), g.signature.size());
      for (size_t i = 0; i < votes.size(); ++i) {
        EXPECT_EQ(votes[i], g.signature[i]);
      }
    }
  }
}

TEST(FactGroupTest, GroupsOrderedByFirstFact) {
  MotivatingExample example = MakeMotivatingExample();
  std::vector<FactGroup> groups = BuildFactGroups(example.dataset);
  FactId last_first = -1;
  for (const FactGroup& g : groups) {
    ASSERT_FALSE(g.facts.empty());
    EXPECT_GT(g.facts.front(), last_first);
    last_first = g.facts.front();
  }
}

TEST(FactGroupTest, RemainingAccounting) {
  FactGroup g;
  g.facts = {1, 2, 3};
  EXPECT_EQ(g.remaining(), 3u);
  EXPECT_FALSE(g.exhausted());
  g.committed = 2;
  EXPECT_EQ(g.remaining(), 1u);
  g.committed = 3;
  EXPECT_TRUE(g.exhausted());
}

TEST(FactGroupTest, NoVoteFactsFormEmptySignatureGroup) {
  DatasetBuilder builder;
  builder.AddSource("s");
  builder.AddFact("a");
  builder.AddFact("b");
  Dataset d = builder.Build();
  std::vector<FactGroup> groups = BuildFactGroups(d);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_TRUE(groups[0].signature.empty());
  EXPECT_EQ(groups[0].facts, (std::vector<FactId>{0, 1}));
}

TEST(SourceGroupIndexTest, AdjacencyIsComplete) {
  MotivatingExample example = MakeMotivatingExample();
  std::vector<FactGroup> groups = BuildFactGroups(example.dataset);
  auto index = BuildSourceGroupIndex(groups, example.dataset.num_sources());
  ASSERT_EQ(index.size(), 5u);
  // Every (group, source) incidence appears exactly once.
  for (size_t g = 0; g < groups.size(); ++g) {
    for (const SourceVote& sv : groups[g].signature) {
      const auto& list = index[static_cast<size_t>(sv.source)];
      EXPECT_EQ(std::count(list.begin(), list.end(),
                           static_cast<int32_t>(g)),
                1);
    }
  }
  // s4 (id 3) votes on 10 facts spanning 8 distinct signatures.
  EXPECT_EQ(index[3].size(), 8u);
}

}  // namespace
}  // namespace corrob
