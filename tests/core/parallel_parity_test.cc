// Sequential-vs-parallel parity: every iterative corroborator must
// produce bit-identical results at --threads 1 (the legacy sequential
// path) and at any higher thread count. The parallel sweeps partition
// work by output element and keep every reduction in a fixed order
// (docs/PERFORMANCE.md), so this is an exact equality, not a
// tolerance comparison.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/online.h"
#include "core/online_checkpoint.h"
#include "core/registry.h"
#include "synth/synthetic.h"
#include "testing/property.h"

namespace corrob {
namespace {

using proptest::ExpectBitIdentical;
using proptest::ExpectBitIdenticalResults;
using proptest::ForEachSeed;
using proptest::MakeRandomDataset;

/// The corroborators whose Run() honors CorroboratorOptions::
/// num_threads (the one-shot baselines have no sweeps to thread).
const char* kThreadedMethods[] = {"TwoEstimate", "ThreeEstimate", "Cosine",
                                  "TruthFinder", "IncEstHeu", "IncEstPS"};

class ParallelParityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelParityTest, BitIdenticalAcrossThreadCounts) {
  const std::string& name = GetParam();
  CorroboratorOptions sequential;
  sequential.num_threads = 1;
  CorroboratorOptions parallel;
  parallel.num_threads = 4;
  auto seq = MakeCorroborator(name, sequential).ValueOrDie();
  auto par = MakeCorroborator(name, parallel).ValueOrDie();

  ForEachSeed(0x9A4171E5, 20, [&](uint64_t seed) {
    Dataset dataset = MakeRandomDataset(seed);
    CorroborationResult a = seq->Run(dataset).ValueOrDie();
    CorroborationResult b = par->Run(dataset).ValueOrDie();
    ExpectBitIdenticalResults(a, b);
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllThreadedMethods, ParallelParityTest,
    ::testing::Values("TwoEstimate", "ThreeEstimate", "Cosine",
                      "TruthFinder", "IncEstHeu", "IncEstPS"));

TEST(ParallelParityTest, LargeSyntheticCorpusAtEightThreads) {
  // One larger planted-truth corpus, checked at the widest configured
  // count: parity must hold when the chunking actually splits work.
  SyntheticOptions options;
  options.num_facts = 20000;
  options.num_sources = 10;
  options.num_inaccurate = 2;
  options.eta = 0.02;
  options.seed = 4242;
  SyntheticDataset data = GenerateSynthetic(options).ValueOrDie();

  for (const char* name : kThreadedMethods) {
    SCOPED_TRACE(name);
    CorroboratorOptions sequential;
    sequential.num_threads = 1;
    CorroboratorOptions parallel;
    parallel.num_threads = 8;
    CorroborationResult a = MakeCorroborator(name, sequential)
                                .ValueOrDie()
                                ->Run(data.dataset)
                                .ValueOrDie();
    CorroborationResult b = MakeCorroborator(name, parallel)
                                .ValueOrDie()
                                ->Run(data.dataset)
                                .ValueOrDie();
    ExpectBitIdenticalResults(a, b);
  }
}

/// Streams every fact of `dataset` through `online` in row order.
void StreamAll(const Dataset& dataset, OnlineCorroborator& online,
               FactId start = 0) {
  for (FactId f = start; f < dataset.num_facts(); ++f) {
    auto votes = dataset.VotesOnFact(f);
    ASSERT_TRUE(
        online.Observe(std::vector<SourceVote>(votes.begin(), votes.end()))
            .ok());
  }
}

OnlineCorroborator MakeOnline(const Dataset& dataset) {
  OnlineCorroborator online;
  for (SourceId s = 0; s < dataset.num_sources(); ++s) {
    online.AddSource(dataset.source_name(s));
  }
  return online;
}

TEST(StreamParityTest, CheckpointResumeMatchesUninterruptedRun) {
  // The `corrob stream` contract: suspending mid-stream through an
  // exported snapshot and resuming in a fresh instance must land on
  // the exact trust state of an uninterrupted run.
  ForEachSeed(0x57BEA4, 20, [&](uint64_t seed) {
    Dataset dataset = MakeRandomDataset(seed);
    OnlineCorroborator uninterrupted = MakeOnline(dataset);
    StreamAll(dataset, uninterrupted);

    OnlineCorroborator first_half = MakeOnline(dataset);
    FactId cut = dataset.num_facts() / 2;
    for (FactId f = 0; f < cut; ++f) {
      auto votes = dataset.VotesOnFact(f);
      ASSERT_TRUE(first_half
                      .Observe(std::vector<SourceVote>(votes.begin(),
                                                       votes.end()))
                      .ok());
    }
    OnlineCorroborator resumed =
        OnlineCorroborator::FromState(first_half.ExportState()).ValueOrDie();
    ASSERT_EQ(resumed.facts_observed(), cut);
    StreamAll(dataset, resumed, cut);

    EXPECT_EQ(uninterrupted.facts_observed(), resumed.facts_observed());
    ExpectBitIdentical(uninterrupted.trust_snapshot(),
                       resumed.trust_snapshot(), "trust");
  });
}

TEST(StreamParityTest, FileRoundTripMatchesUninterruptedRun) {
  // Same contract through the durable snapshot file (serialize →
  // parse → resume), a few seeds deep.
  std::string path = ::testing::TempDir() + "/parity_snapshot.snap";
  ForEachSeed(0xF11E5EED, 5, [&](uint64_t seed) {
    Dataset dataset = MakeRandomDataset(seed);
    OnlineCorroborator uninterrupted = MakeOnline(dataset);
    StreamAll(dataset, uninterrupted);

    OnlineCorroborator first_part = MakeOnline(dataset);
    FactId cut = dataset.num_facts() / 3;
    for (FactId f = 0; f < cut; ++f) {
      auto votes = dataset.VotesOnFact(f);
      ASSERT_TRUE(first_part
                      .Observe(std::vector<SourceVote>(votes.begin(),
                                                       votes.end()))
                      .ok());
    }
    ASSERT_TRUE(SaveOnlineSnapshot(path, first_part).ok());
    OnlineCorroborator resumed = LoadOnlineSnapshot(path).ValueOrDie();
    ASSERT_EQ(resumed.facts_observed(), cut);
    StreamAll(dataset, resumed, cut);

    ExpectBitIdentical(uninterrupted.trust_snapshot(),
                       resumed.trust_snapshot(), "trust");
  });
  std::remove(path.c_str());
}

}  // namespace
}  // namespace corrob
