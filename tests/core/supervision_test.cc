// Tests for the supervision extension (known_labels) and the commit
// provenance (fact_commit_round).

#include <gtest/gtest.h>

#include "core/inc_estimate.h"
#include "core/two_estimate.h"
#include "data/motivating_example.h"
#include "eval/metrics.h"
#include "synth/synthetic.h"

namespace corrob {
namespace {

TEST(CommitRoundTest, BatchAlgorithmsLeaveItEmpty) {
  MotivatingExample example = MakeMotivatingExample();
  CorroborationResult result =
      TwoEstimateCorroborator().Run(example.dataset).ValueOrDie();
  EXPECT_TRUE(result.fact_commit_round.empty());
}

TEST(CommitRoundTest, EveryFactGetsARound) {
  MotivatingExample example = MakeMotivatingExample();
  CorroborationResult result =
      IncEstimateCorroborator().Run(example.dataset).ValueOrDie();
  ASSERT_EQ(result.fact_commit_round.size(), 12u);
  for (int32_t round : result.fact_commit_round) {
    EXPECT_GE(round, 0);
    EXPECT_LT(round, result.iterations);
  }
}

TEST(CommitRoundTest, ScriptedWalkthroughRoundsMatch) {
  MotivatingExample example = MakeMotivatingExample();
  IncEstimateOptions options;
  options.trust_prior_weight = 0.0;
  IncrementalEngine engine(example.dataset, options);
  auto group_of = [&](FactId fact) {
    for (size_t g = 0; g < engine.groups().size(); ++g) {
      for (FactId f : engine.groups()[g].facts) {
        if (f == fact) return static_cast<int32_t>(g);
      }
    }
    return int32_t{-1};
  };
  engine.CommitGroup(group_of(8), 1);
  engine.CommitGroup(group_of(11), 1);
  engine.EndRound(2);
  engine.CommitGroup(group_of(4), 1);
  engine.CommitGroup(group_of(5), 1);
  engine.EndRound(2);
  engine.EndRound(engine.CommitAllRemaining());
  CorroborationResult result = std::move(engine).Finish("test");
  EXPECT_EQ(result.fact_commit_round[8], 0);   // r9, round 1 (index 0)
  EXPECT_EQ(result.fact_commit_round[11], 0);  // r12
  EXPECT_EQ(result.fact_commit_round[4], 1);   // r5, round 2
  EXPECT_EQ(result.fact_commit_round[5], 1);   // r6
  EXPECT_EQ(result.fact_commit_round[0], 2);   // r1, final round
}

TEST(SupervisionTest, KnownLabelsAreRespectedVerbatim) {
  MotivatingExample example = MakeMotivatingExample();
  IncEstimateOptions options;
  // Tell the algorithm the truth about the two trickiest facts.
  options.known_labels = {{3, false}, {9, false}};  // r4, r10
  CorroborationResult result =
      IncEstimateCorroborator(options).Run(example.dataset).ValueOrDie();
  EXPECT_DOUBLE_EQ(result.fact_probability[3], 0.0);
  EXPECT_DOUBLE_EQ(result.fact_probability[9], 0.0);
  EXPECT_EQ(result.fact_commit_round[3], 0);
  EXPECT_EQ(result.fact_commit_round[9], 0);
}

TEST(SupervisionTest, SeedingImprovesMotivatingExample) {
  MotivatingExample example = MakeMotivatingExample();
  IncEstimateOptions unsupervised;
  IncEstimateOptions supervised;
  supervised.known_labels = {{3, false}};  // Reveal r4 only.
  double base = EvaluateOnTruth(IncEstimateCorroborator(unsupervised)
                                    .Run(example.dataset)
                                    .ValueOrDie(),
                                example.truth)
                    .accuracy;
  double seeded = EvaluateOnTruth(IncEstimateCorroborator(supervised)
                                      .Run(example.dataset)
                                      .ValueOrDie(),
                                  example.truth)
                      .accuracy;
  // Revealing r4 also decides its twin r10 ({s4,s5} group) correctly.
  EXPECT_GT(seeded, base);
}

TEST(SupervisionTest, SeedingGroundsTrustAtTruePrecision) {
  // A deliberately two-sided check. Seeding with a *representative*
  // labeled sample anchors every source's trust near its true
  // precision. For an inaccurate source that precision is ~0.6 —
  // above 0.5 — so its solo facts score positive and the
  // unsupervised discovery snowball (which relies on the mid-run
  // trust being biased *below* the true precision, Figure 2(b))
  // weakens: seeded accuracy lands between the fixpoint baselines
  // and unsupervised IncEstHeu. See docs/ALGORITHMS.md.
  SyntheticOptions synth;
  synth.num_facts = 2000;
  synth.num_sources = 8;
  synth.num_inaccurate = 2;
  synth.eta = 0.02;
  synth.seed = 61;
  SyntheticDataset data = GenerateSynthetic(synth).ValueOrDie();

  IncEstimateOptions unsupervised;
  double base = EvaluateOnTruth(IncEstimateCorroborator(unsupervised)
                                    .Run(data.dataset)
                                    .ValueOrDie(),
                                data.truth)
                    .accuracy;

  // Seed with the labels of the first 5% of facts.
  IncEstimateOptions supervised;
  for (FactId f = 0; f < 100; ++f) {
    supervised.known_labels.emplace_back(f, data.truth.IsTrue(f));
  }
  CorroborationResult seeded_result = IncEstimateCorroborator(supervised)
                                          .Run(data.dataset)
                                          .ValueOrDie();
  // Score only the unseeded facts to keep the comparison honest.
  int64_t correct = 0;
  int64_t total = 0;
  for (FactId f = 100; f < data.dataset.num_facts(); ++f) {
    ++total;
    if (seeded_result.Decide(f) == data.truth.IsTrue(f)) ++correct;
  }
  double seeded = static_cast<double>(correct) / static_cast<double>(total);
  double fixpoint = EvaluateOnTruth(TwoEstimateCorroborator()
                                        .Run(data.dataset)
                                        .ValueOrDie(),
                                    data.truth)
                        .accuracy;
  EXPECT_GT(seeded, fixpoint);   // Still beats the single-value trust...
  EXPECT_LT(seeded, base + 0.05);  // ...but does not beat the snowball.
  EXPECT_GT(seeded, 0.6);
}

TEST(SupervisionTest, RejectsBadLabels) {
  MotivatingExample example = MakeMotivatingExample();
  IncEstimateOptions bad;
  bad.known_labels = {{99, true}};
  EXPECT_EQ(IncEstimateCorroborator(bad)
                .Run(example.dataset)
                .status()
                .code(),
            StatusCode::kOutOfRange);

  IncEstimateOptions duplicate;
  duplicate.known_labels = {{3, false}, {3, true}};
  EXPECT_EQ(IncEstimateCorroborator(duplicate)
                .Run(example.dataset)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(EngineTest, CommitKnownFactValidation) {
  MotivatingExample example = MakeMotivatingExample();
  IncrementalEngine engine(example.dataset, IncEstimateOptions{});
  ASSERT_TRUE(engine.CommitKnownFact(3, false).ok());
  EXPECT_EQ(engine.CommitKnownFact(3, false).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.CommitKnownFact(-1, true).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(engine.remaining_facts(), 11);
}

}  // namespace
}  // namespace corrob
