#include "core/three_estimate.h"

#include <gtest/gtest.h>

#include "core/two_estimate.h"
#include "data/motivating_example.h"

namespace corrob {
namespace {

TEST(ThreeEstimateTest, ResolvesClearMajorities) {
  DatasetBuilder builder;
  for (int s = 0; s < 4; ++s) builder.AddSource("s" + std::to_string(s));
  FactId good = builder.AddFact("good");
  FactId bad = builder.AddFact("bad");
  for (int s = 0; s < 3; ++s) {
    ASSERT_TRUE(builder.SetVote(s, good, Vote::kTrue).ok());
    ASSERT_TRUE(builder.SetVote(s, bad, Vote::kFalse).ok());
  }
  ASSERT_TRUE(builder.SetVote(3, good, Vote::kFalse).ok());
  ASSERT_TRUE(builder.SetVote(3, bad, Vote::kTrue).ok());
  Dataset d = builder.Build();

  CorroborationResult result =
      ThreeEstimateCorroborator().Run(d).ValueOrDie();
  EXPECT_TRUE(result.Decide(good));
  EXPECT_FALSE(result.Decide(bad));
  // The consistently outvoted source ends less trusted.
  EXPECT_LT(result.source_trust[3], result.source_trust[0]);
}

TEST(ThreeEstimateTest, DegeneratesToTwoEstimateOnAffirmativeData) {
  // Paper footnote 3: with T votes only, ThreeEstimate simplifies to
  // TwoEstimate — both mark everything true.
  MotivatingExample example = MakeMotivatingExample();
  CorroborationResult three =
      ThreeEstimateCorroborator().Run(example.dataset).ValueOrDie();
  CorroborationResult two =
      TwoEstimateCorroborator().Run(example.dataset).ValueOrDie();
  int agreements = 0;
  for (FactId f = 0; f < example.dataset.num_facts(); ++f) {
    if (three.Decide(f) == two.Decide(f)) ++agreements;
  }
  EXPECT_GE(agreements, 11);  // Identical up to at most one boundary fact.
}

TEST(ThreeEstimateTest, DifficultyBoundsRespected) {
  MotivatingExample example = MakeMotivatingExample();
  CorroborationResult result =
      ThreeEstimateCorroborator().Run(example.dataset).ValueOrDie();
  for (double p : result.fact_probability) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  for (double t : result.source_trust) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
  }
}

TEST(ThreeEstimateTest, InvalidOptionsRejected) {
  ThreeEstimateOptions bad;
  bad.initial_difficulty = -0.5;
  EXPECT_EQ(ThreeEstimateCorroborator(bad)
                .Run(DatasetBuilder().Build())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ThreeEstimateTest, EmptyDataset) {
  CorroborationResult result =
      ThreeEstimateCorroborator().Run(DatasetBuilder().Build()).ValueOrDie();
  EXPECT_TRUE(result.fact_probability.empty());
}

}  // namespace
}  // namespace corrob
