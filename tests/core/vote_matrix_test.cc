// VoteMatrix: the CSR/CSC layouts must mirror the Dataset views
// entry for entry, and RowScore must be bit-identical to CorrobScore.

#include "core/vote_matrix.h"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include "core/corroborator.h"
#include "testing/property.h"

namespace corrob {
namespace {

using proptest::ForEachSeed;
using proptest::MakeRandomDataset;

TEST(VoteMatrixTest, EmptyDataset) {
  VoteMatrix matrix((Dataset()));
  EXPECT_EQ(matrix.num_facts(), 0);
  EXPECT_EQ(matrix.num_sources(), 0);
  EXPECT_EQ(matrix.num_votes(), 0);
}

TEST(VoteMatrixTest, MirrorsDatasetViewsInOrder) {
  ForEachSeed(0x3A7121, 10, [&](uint64_t seed) {
    Dataset dataset = MakeRandomDataset(seed);
    VoteMatrix matrix(dataset);
    ASSERT_EQ(matrix.num_facts(), dataset.num_facts());
    ASSERT_EQ(matrix.num_sources(), dataset.num_sources());
    ASSERT_EQ(matrix.num_votes(), dataset.num_votes());

    for (FactId f = 0; f < dataset.num_facts(); ++f) {
      auto expected = dataset.VotesOnFact(f);
      auto sources = matrix.FactSources(f);
      auto is_true = matrix.FactVotesTrue(f);
      ASSERT_EQ(sources.size(), expected.size()) << "fact " << f;
      ASSERT_EQ(is_true.size(), expected.size()) << "fact " << f;
      for (size_t k = 0; k < expected.size(); ++k) {
        EXPECT_EQ(sources[k], expected[k].source);
        EXPECT_EQ(is_true[k], expected[k].vote == Vote::kTrue ? 1 : 0);
      }
    }
    for (SourceId s = 0; s < dataset.num_sources(); ++s) {
      auto expected = dataset.VotesBySource(s);
      auto facts = matrix.SourceFacts(s);
      auto is_true = matrix.SourceVotesTrue(s);
      ASSERT_EQ(facts.size(), expected.size()) << "source " << s;
      for (size_t k = 0; k < expected.size(); ++k) {
        EXPECT_EQ(facts[k], expected[k].fact);
        EXPECT_EQ(is_true[k], expected[k].vote == Vote::kTrue ? 1 : 0);
      }
    }
  });
}

TEST(VoteMatrixTest, RowScoreBitIdenticalToCorrobScore) {
  ForEachSeed(0x5C04E, 10, [&](uint64_t seed) {
    Dataset dataset = MakeRandomDataset(seed);
    VoteMatrix matrix(dataset);
    Rng rng(seed ^ 0x7A);
    std::vector<double> trust(static_cast<size_t>(dataset.num_sources()));
    for (double& t : trust) t = rng.NextDouble();
    for (FactId f = 0; f < dataset.num_facts(); ++f) {
      EXPECT_EQ(
          std::bit_cast<uint64_t>(matrix.RowScore(f, trust)),
          std::bit_cast<uint64_t>(CorrobScore(dataset.VotesOnFact(f), trust)))
          << "fact " << f;
    }
  });
}

TEST(VoteMatrixTest, ForEachCoversEveryIdOnceSequentially) {
  Dataset dataset = MakeRandomDataset(123);
  VoteMatrix matrix(dataset);
  std::vector<int> fact_hits(static_cast<size_t>(dataset.num_facts()), 0);
  matrix.ForEachFact(nullptr, [&](FactId f) {
    ++fact_hits[static_cast<size_t>(f)];
  });
  for (int h : fact_hits) EXPECT_EQ(h, 1);

  std::vector<int> source_hits(static_cast<size_t>(dataset.num_sources()), 0);
  matrix.ForEachSource(nullptr, [&](SourceId s) {
    ++source_hits[static_cast<size_t>(s)];
  });
  for (int h : source_hits) EXPECT_EQ(h, 1);
}

TEST(VoteMatrixTest, ForEachWithPoolCoversEveryIdOnce) {
  Dataset dataset = MakeRandomDataset(321);
  VoteMatrix matrix(dataset);
  auto pool = MakeSweepPool(4);
  ASSERT_NE(pool, nullptr);
  std::vector<std::atomic<int>> hits(
      static_cast<size_t>(dataset.num_facts()));
  for (auto& h : hits) h.store(0);
  matrix.ForEachFact(pool.get(), [&](FactId f) {
    hits[static_cast<size_t>(f)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(MakeSweepPoolTest, NullForSequentialCounts) {
  EXPECT_EQ(MakeSweepPool(0), nullptr);
  EXPECT_EQ(MakeSweepPool(1), nullptr);
  auto pool = MakeSweepPool(3);
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->num_threads(), 3);
}

}  // namespace
}  // namespace corrob
