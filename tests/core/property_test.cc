// Metamorphic properties of the corroborators over seeded random
// datasets (tests/testing/property.h): relabeling invariance,
// duplicate-source idempotence for the counting baselines, and
// no-op-edit (`-` vote) insensitivity. Each property prints the
// failing seed, so any breakage reproduces deterministically.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/registry.h"
#include "testing/property.h"

namespace corrob {
namespace {

using proptest::ExpectBitIdenticalResults;
using proptest::ForEachSeed;
using proptest::MakeRandomDataset;
using proptest::Permutation;
using proptest::Permute;
using proptest::RandomPermutation;

std::vector<std::string> AllCorroboratorNames() {
  std::vector<std::string> names = CorroboratorNames();
  for (const std::string& name : ExtendedCorroboratorNames()) {
    names.push_back(name);
  }
  return names;
}

/// Methods whose output depends only on the vote structure, never on
/// id order: for these, permuting the dataset must permute the
/// decisions. The Gibbs-sampled BayesEstimate and the IncEstimate
/// strategies (group-index tie-breaks) are order-sensitive and are
/// covered by the aggregate-agreement test below.
const char* kDeterministicMethods[] = {
    "Voting", "Counting", "TwoEstimate", "ThreeEstimate",
    "Cosine", "TruthFinder", "AvgLog", "Invest", "PooledInvest"};

TEST(PermutationProperty, DeterministicMethodsCommuteWithRelabeling) {
  for (const char* name : kDeterministicMethods) {
    SCOPED_TRACE(name);
    auto algorithm = MakeCorroborator(name).ValueOrDie();
    ForEachSeed(0xA11CE5EED, 10, [&](uint64_t seed) {
      Dataset dataset = MakeRandomDataset(seed);
      Permutation perm = RandomPermutation(dataset, seed ^ 0x5A5A5A5A);
      Dataset permuted = Permute(dataset, perm);

      CorroborationResult original =
          algorithm->Run(dataset).ValueOrDie();
      CorroborationResult shuffled =
          algorithm->Run(permuted).ValueOrDie();

      // Summation order inside a fact's vote list changes with source
      // ids, so probabilities may differ in the last ulps; decisions
      // must match wherever the probability is not razor-close to the
      // 0.5 threshold.
      for (FactId f = 0; f < dataset.num_facts(); ++f) {
        double p = original.fact_probability[static_cast<size_t>(f)];
        if (std::fabs(p - kDecisionThreshold) <= 1e-6) continue;
        EXPECT_EQ(original.Decide(f),
                  shuffled.Decide(perm.fact_map[static_cast<size_t>(f)]))
            << "fact " << f << " p=" << p;
      }
    });
  }
}

TEST(PermutationProperty, OrderSensitiveMethodsAgreeOnMostFacts) {
  // BayesEstimate (sampler stream) and IncEstHeu/IncEstPS (tie-breaks
  // by group index) may legitimately flip borderline facts under
  // relabeling; they must still agree on the overwhelming majority.
  for (const char* name : {"BayesEstimate", "IncEstHeu", "IncEstPS"}) {
    SCOPED_TRACE(name);
    auto algorithm = MakeCorroborator(name).ValueOrDie();
    int64_t agreements = 0;
    int64_t facts = 0;
    ForEachSeed(0xB0BCA7, 6, [&](uint64_t seed) {
      Dataset dataset = MakeRandomDataset(seed);
      Permutation perm = RandomPermutation(dataset, seed ^ 0xC3C3C3);
      Dataset permuted = Permute(dataset, perm);
      std::vector<bool> original =
          algorithm->Run(dataset).ValueOrDie().Decisions();
      std::vector<bool> shuffled =
          algorithm->Run(permuted).ValueOrDie().Decisions();
      for (FactId f = 0; f < dataset.num_facts(); ++f) {
        agreements +=
            original[static_cast<size_t>(f)] ==
                    shuffled[static_cast<size_t>(
                        perm.fact_map[static_cast<size_t>(f)])]
                ? 1
                : 0;
        ++facts;
      }
    });
    EXPECT_GE(agreements, facts * 85 / 100)
        << name << ": " << agreements << "/" << facts;
  }
}

TEST(DuplicationProperty, VotingAndCountingIdempotentUnderSourceDoubling) {
  // Cloning every source (same votes under a fresh name) doubles both
  // vote counts and the Counting threshold S/2+1, so the per-fact
  // decisions — and the 0/1 probabilities — must not move. This holds
  // for the counting baselines only; trust-weighted methods dilute
  // each source's influence under duplication by design.
  for (const char* name : {"Voting", "Counting"}) {
    SCOPED_TRACE(name);
    auto algorithm = MakeCorroborator(name).ValueOrDie();
    ForEachSeed(0xD0B1E, 10, [&](uint64_t seed) {
      Dataset dataset = MakeRandomDataset(seed);
      DatasetBuilder builder;
      for (SourceId s = 0; s < dataset.num_sources(); ++s) {
        builder.AddSource(dataset.source_name(s));
      }
      for (SourceId s = 0; s < dataset.num_sources(); ++s) {
        builder.AddSource("clone_of_" + dataset.source_name(s));
      }
      for (FactId f = 0; f < dataset.num_facts(); ++f) {
        builder.AddFact(dataset.fact_name(f));
      }
      for (FactId f = 0; f < dataset.num_facts(); ++f) {
        for (const SourceVote& sv : dataset.VotesOnFact(f)) {
          ASSERT_TRUE(builder.SetVote(sv.source, f, sv.vote).ok());
          ASSERT_TRUE(builder
                          .SetVote(sv.source + dataset.num_sources(), f,
                                   sv.vote)
                          .ok());
        }
      }
      Dataset doubled = builder.Build();

      CorroborationResult original = algorithm->Run(dataset).ValueOrDie();
      CorroborationResult duplicated = algorithm->Run(doubled).ValueOrDie();
      proptest::ExpectBitIdentical(original.fact_probability,
                                   duplicated.fact_probability,
                                   "fact_probability");
    });
  }
}

TEST(NoOpEditProperty, NoneVotesAndErasedVotesLeaveResultsUntouched) {
  // Rebuilding the dataset with interleaved no-op edits — explicit
  // kNone on never-voted pairs, and set-then-erase churn — must yield
  // a structurally identical dataset, hence bit-identical results
  // from every registered corroborator.
  std::vector<std::string> names = AllCorroboratorNames();
  ForEachSeed(0x90E0FF, 8, [&](uint64_t seed) {
    Dataset dataset = MakeRandomDataset(seed);
    Rng rng(seed ^ 0xFEED);
    DatasetBuilder builder;
    for (SourceId s = 0; s < dataset.num_sources(); ++s) {
      builder.AddSource(dataset.source_name(s));
    }
    for (FactId f = 0; f < dataset.num_facts(); ++f) {
      builder.AddFact(dataset.fact_name(f));
    }
    for (FactId f = 0; f < dataset.num_facts(); ++f) {
      for (const SourceVote& sv : dataset.VotesOnFact(f)) {
        ASSERT_TRUE(builder.SetVote(sv.source, f, sv.vote).ok());
      }
    }
    // No-op churn over random pairs: erase pairs that never voted,
    // and insert-then-erase transient votes, restoring any real vote
    // that the transient overwrote.
    for (int i = 0; i < 50; ++i) {
      SourceId s = static_cast<SourceId>(
          rng.NextBelow(static_cast<uint64_t>(dataset.num_sources())));
      FactId f = static_cast<FactId>(
          rng.NextBelow(static_cast<uint64_t>(dataset.num_facts())));
      Vote existing = dataset.GetVote(s, f);
      if (existing == Vote::kNone) {
        ASSERT_TRUE(builder.SetVote(s, f, Vote::kNone).ok());
        if (rng.Bernoulli(0.5)) {
          ASSERT_TRUE(builder.SetVote(s, f, Vote::kTrue).ok());
          ASSERT_TRUE(builder.SetVote(s, f, Vote::kNone).ok());
        }
      } else {
        ASSERT_TRUE(builder.SetVote(s, f, Vote::kNone).ok());
        ASSERT_TRUE(builder.SetVote(s, f, existing).ok());
      }
    }
    Dataset edited = builder.Build();
    ASSERT_EQ(dataset.num_votes(), edited.num_votes());

    for (const std::string& name : names) {
      SCOPED_TRACE(name);
      auto algorithm = MakeCorroborator(name).ValueOrDie();
      CorroborationResult original = algorithm->Run(dataset).ValueOrDie();
      CorroborationResult reran = algorithm->Run(edited).ValueOrDie();
      ExpectBitIdenticalResults(original, reran);
    }
  });
}

}  // namespace
}  // namespace corrob
