#include "core/registry.h"

#include <gtest/gtest.h>

#include "data/motivating_example.h"

namespace corrob {
namespace {

TEST(RegistryTest, AllNamesConstruct) {
  for (const std::string& name : CorroboratorNames()) {
    auto corroborator = MakeCorroborator(name);
    ASSERT_TRUE(corroborator.ok()) << name;
    EXPECT_EQ(corroborator.ValueOrDie()->name(), name);
  }
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  EXPECT_EQ(MakeCorroborator("Oracle").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(MakeCorroborator("").status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, NamesMatchCaseAndSeparatorInsensitively) {
  EXPECT_EQ(MakeCorroborator("voting").ValueOrDie()->name(), "Voting");
  EXPECT_EQ(MakeCorroborator("inc_est_heu").ValueOrDie()->name(),
            "IncEstHeu");
  EXPECT_EQ(MakeCorroborator("inc-est-ps").ValueOrDie()->name(), "IncEstPS");
  EXPECT_EQ(MakeCorroborator("TRUTHFINDER").ValueOrDie()->name(),
            "TruthFinder");
}

TEST(RegistryTest, EveryAlgorithmRunsOnTheMotivatingExample) {
  MotivatingExample example = MakeMotivatingExample();
  for (const std::string& name : CorroboratorNames()) {
    auto corroborator = MakeCorroborator(name).ValueOrDie();
    auto result = corroborator->Run(example.dataset);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_EQ(result.ValueOrDie().fact_probability.size(), 12u) << name;
  }
}

TEST(RegistryTest, StrategiesAreDistinct) {
  auto heu = MakeCorroborator("IncEstHeu").ValueOrDie();
  auto ps = MakeCorroborator("IncEstPS").ValueOrDie();
  EXPECT_NE(heu->name(), ps->name());
}

}  // namespace
}  // namespace corrob
