#include "core/run_context.h"

#include <gtest/gtest.h>

#include "common/budget.h"
#include "common/failpoint.h"
#include "obs/clock.h"

namespace corrob {
namespace {

class RunContextTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::DisarmAll(); }
};

TEST_F(RunContextTest, TerminationNamesAreStable) {
  EXPECT_EQ(TerminationName(Termination::kConverged), "converged");
  EXPECT_EQ(TerminationName(Termination::kIterationCap), "iteration_cap");
  EXPECT_EQ(TerminationName(Termination::kDeadlineExceeded),
            "deadline_exceeded");
  EXPECT_EQ(TerminationName(Termination::kCancelled), "cancelled");
  EXPECT_EQ(TerminationName(Termination::kBudgetExhausted),
            "budget_exhausted");
}

TEST_F(RunContextTest, TerminatedEarlyExcludesNaturalOutcomes) {
  EXPECT_FALSE(TerminatedEarly(Termination::kConverged));
  EXPECT_FALSE(TerminatedEarly(Termination::kIterationCap));
  EXPECT_TRUE(TerminatedEarly(Termination::kDeadlineExceeded));
  EXPECT_TRUE(TerminatedEarly(Termination::kCancelled));
  EXPECT_TRUE(TerminatedEarly(Termination::kBudgetExhausted));
}

TEST_F(RunContextTest, UnboundedNeverInterrupts) {
  const RunContext& context = RunContext::Unbounded();
  EXPECT_FALSE(context.bounded());
  EXPECT_EQ(context.sweep_stop(), nullptr);
  EXPECT_EQ(context.CheckIterationBoundary(0), std::nullopt);
  EXPECT_EQ(context.CheckIterationBoundary(1 << 30), std::nullopt);
  EXPECT_EQ(context.CheckMatrixBytes(int64_t{1} << 40), std::nullopt);
}

TEST_F(RunContextTest, CancellationFiresAtTheBoundary) {
  CancellationToken token;
  RunContext context;
  context.WithCancellation(&token);
  EXPECT_TRUE(context.bounded());
  ASSERT_NE(context.sweep_stop(), nullptr);
  EXPECT_EQ(context.CheckIterationBoundary(0), std::nullopt);
  token.Cancel();
  EXPECT_EQ(context.CheckIterationBoundary(1), Termination::kCancelled);
  EXPECT_EQ(context.SweepInterruption(), Termination::kCancelled);
}

TEST_F(RunContextTest, DeadlineFiresAtTheBoundary) {
  obs::ManualClock clock;
  RunContext context;
  context.WithDeadline(Deadline::After(&clock, 1000));
  EXPECT_TRUE(context.bounded());
  ASSERT_NE(context.sweep_stop(), nullptr);
  EXPECT_EQ(context.CheckIterationBoundary(0), std::nullopt);
  clock.AdvanceNanos(1000);
  EXPECT_EQ(context.CheckIterationBoundary(1),
            Termination::kDeadlineExceeded);
  EXPECT_EQ(context.SweepInterruption(), Termination::kDeadlineExceeded);
}

TEST_F(RunContextTest, CancellationOutranksDeadlineInSweepInterruption) {
  obs::ManualClock clock;
  CancellationToken token;
  token.Cancel();
  RunContext context;
  context.WithCancellation(&token);
  context.WithDeadline(Deadline::After(&clock, 0));
  EXPECT_EQ(context.SweepInterruption(), Termination::kCancelled);
}

TEST_F(RunContextTest, RoundBudgetFiresOnCompletedIterations) {
  RunContext context;
  ResourceBudget budget;
  budget.max_rounds = 3;
  context.WithBudget(budget);
  EXPECT_TRUE(context.bounded());
  // A round budget alone arms no stop signal: sweeps stay on the
  // exact legacy path and only the boundary poll enforces the cap.
  EXPECT_EQ(context.sweep_stop(), nullptr);
  EXPECT_EQ(context.CheckIterationBoundary(0), std::nullopt);
  EXPECT_EQ(context.CheckIterationBoundary(2), std::nullopt);
  EXPECT_EQ(context.CheckIterationBoundary(3),
            Termination::kBudgetExhausted);
  EXPECT_EQ(context.CheckIterationBoundary(4),
            Termination::kBudgetExhausted);
}

TEST_F(RunContextTest, MatrixByteCapIsExclusive) {
  RunContext context;
  ResourceBudget budget;
  budget.max_vote_matrix_bytes = 4096;
  context.WithBudget(budget);
  EXPECT_EQ(context.CheckMatrixBytes(4096), std::nullopt);  // at cap: ok
  EXPECT_EQ(context.CheckMatrixBytes(4097),
            Termination::kBudgetExhausted);
  EXPECT_EQ(RunContext::Unbounded().CheckMatrixBytes(1 << 30),
            std::nullopt);
}

TEST_F(RunContextTest, ForceExpireFailpointReportsDeadline) {
  ASSERT_TRUE(Failpoints::ArmFromSpec("budget.force_expire=fail").ok());
  EXPECT_EQ(RunContext::Unbounded().CheckIterationBoundary(0),
            Termination::kDeadlineExceeded);
}

TEST_F(RunContextTest, CancelAtIterationSkipCountsBoundaries) {
  // skip=3: the boundary polls after iterations 0, 1 and 2 pass, the
  // poll after the 3rd completed iteration reports kCancelled — the
  // exact contract the termination-parity tests build on.
  ASSERT_TRUE(
      Failpoints::ArmFromSpec("cancel.at_iteration=fail:1:skip=3").ok());
  const RunContext& context = RunContext::Unbounded();
  EXPECT_EQ(context.CheckIterationBoundary(0), std::nullopt);
  EXPECT_EQ(context.CheckIterationBoundary(1), std::nullopt);
  EXPECT_EQ(context.CheckIterationBoundary(2), std::nullopt);
  EXPECT_EQ(context.CheckIterationBoundary(3), Termination::kCancelled);
  // fail:1 is spent; later boundaries keep going.
  EXPECT_EQ(context.CheckIterationBoundary(4), std::nullopt);
}

TEST_F(RunContextTest, FailpointsOutrankRealBudgets) {
  ASSERT_TRUE(Failpoints::ArmFromSpec("budget.force_expire=fail").ok());
  CancellationToken token;
  token.Cancel();
  RunContext context;
  context.WithCancellation(&token);
  // The failpoint is serviced before the real token so tests can pin
  // a reason deterministically even under a live cancellation.
  EXPECT_EQ(context.CheckIterationBoundary(0),
            Termination::kDeadlineExceeded);
}

TEST_F(RunContextTest, FluentSettersCompose) {
  obs::ManualClock clock;
  CancellationToken token;
  ResourceBudget budget;
  budget.max_rounds = 7;
  RunContext context;
  context.WithCancellation(&token)
      .WithDeadline(Deadline::After(&clock, 50))
      .WithBudget(budget);
  EXPECT_EQ(context.stop().cancellation(), &token);
  EXPECT_FALSE(context.stop().deadline().infinite());
  EXPECT_EQ(context.budget().max_rounds, 7);
  // Setting the deadline second must not have dropped the token.
  token.Cancel();
  EXPECT_TRUE(context.stop().cancelled());
}

}  // namespace
}  // namespace corrob
