#include "core/corroborator.h"

#include <gtest/gtest.h>

#include "data/motivating_example.h"

namespace corrob {
namespace {

TEST(CorrobScoreTest, AveragesTrustForTVotes) {
  std::vector<SourceVote> votes{{0, Vote::kTrue}, {1, Vote::kTrue}};
  std::vector<double> trust{0.8, 0.6};
  EXPECT_NEAR(CorrobScore(votes, trust), 0.7, 1e-12);
}

TEST(CorrobScoreTest, FVotesContributeComplement) {
  std::vector<SourceVote> votes{{0, Vote::kFalse}, {1, Vote::kTrue}};
  std::vector<double> trust{0.9, 0.9};
  // (1-0.9 + 0.9) / 2 = 0.5.
  EXPECT_NEAR(CorrobScore(votes, trust), 0.5, 1e-12);
}

TEST(CorrobScoreTest, NoVotesIsMaximallyUncertain) {
  std::vector<double> trust{0.9};
  EXPECT_DOUBLE_EQ(CorrobScore({}, trust), 0.5);
}

TEST(CorrobScoreTest, MotivatingExampleR12AtDefaultTrust) {
  // Paper §2.3: σ(r12) with all-0.9 trust = (0.1+0.1+0.9)/3.
  MotivatingExample example = MakeMotivatingExample();
  std::vector<double> trust(5, 0.9);
  double p = CorrobScore(example.dataset.VotesOnFact(11), trust);
  EXPECT_NEAR(p, (0.1 + 0.1 + 0.9) / 3.0, 1e-12);
}

TEST(DecisionTest, ThresholdIsInclusive) {
  CorroborationResult result;
  result.fact_probability = {0.5, 0.49999, 1.0, 0.0};
  EXPECT_TRUE(result.Decide(0));
  EXPECT_FALSE(result.Decide(1));
  EXPECT_TRUE(result.Decide(2));
  EXPECT_FALSE(result.Decide(3));
  EXPECT_EQ(result.Decisions(),
            (std::vector<bool>{true, false, true, false}));
}

TEST(TrustAgainstDecisionsTest, FractionOfAgreeingVotes) {
  MotivatingExample example = MakeMotivatingExample();
  // Decisions equal to the ground truth must give the true source
  // accuracies: {2/3, 1, 1, 0.5, 0.75}.
  std::vector<bool> decisions = example.truth.labels();
  std::vector<double> trust =
      TrustAgainstDecisions(example.dataset, decisions, 0.9);
  EXPECT_NEAR(trust[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(trust[1], 1.0, 1e-12);
  EXPECT_NEAR(trust[2], 1.0, 1e-12);
  EXPECT_NEAR(trust[3], 0.5, 1e-12);
  EXPECT_NEAR(trust[4], 0.75, 1e-12);
}

TEST(TrustAgainstDecisionsTest, SourcesWithoutVotesGetDefault) {
  DatasetBuilder builder;
  builder.AddSource("silent");
  builder.AddFact("f");
  Dataset d = builder.Build();
  std::vector<double> trust = TrustAgainstDecisions(d, {true}, 0.42);
  EXPECT_DOUBLE_EQ(trust[0], 0.42);
}

}  // namespace
}  // namespace corrob
