// Unit tests for IncrementalEngine internals: ΔH semantics, commit
// accounting, and trust bookkeeping — at the granularity the paper's
// §5.1 argument works at.

#include <algorithm>

#include <gtest/gtest.h>

#include "core/inc_estimate.h"
#include "data/motivating_example.h"

namespace corrob {
namespace {

IncEstimateOptions PaperExact() {
  IncEstimateOptions options;
  options.trust_prior_weight = 0.0;
  return options;
}

int32_t GroupOf(const IncrementalEngine& engine, FactId fact) {
  const auto& groups = engine.groups();
  for (size_t g = 0; g < groups.size(); ++g) {
    if (std::find(groups[g].facts.begin(), groups[g].facts.end(), fact) !=
        groups[g].facts.end()) {
      return static_cast<int32_t>(g);
    }
  }
  ADD_FAILURE() << "fact " << fact << " not in any group";
  return -1;
}

TEST(EngineDeltaHTest, R12BeatsR6InRoundOne) {
  // The §5.1 negative-part reasoning: committing the r12 group
  // (decided false, crashing s4) raises the remaining entropy far
  // more than committing the r6 tie group.
  MotivatingExample example = MakeMotivatingExample();
  IncrementalEngine engine(example.dataset, PaperExact());
  double delta_r12 = engine.EntropyDelta(GroupOf(engine, 11));
  double delta_r6 = engine.EntropyDelta(GroupOf(engine, 5));
  EXPECT_GT(delta_r12, delta_r6);
  EXPECT_GT(delta_r12, 1.0);  // Large positive entropy gain.
}

TEST(EngineDeltaHTest, PositivePartValuesAreNegativeAtRoundOne) {
  // Committing any T-only group true at t0 sharpens its sources
  // toward 1 and reduces the entropy of the co-voted groups.
  MotivatingExample example = MakeMotivatingExample();
  IncrementalEngine engine(example.dataset, PaperExact());
  for (FactId f : {0, 1, 2, 8}) {  // r1, r2, r3, r9
    EXPECT_LT(engine.EntropyDelta(GroupOf(engine, f)), 0.0) << "r" << (f + 1);
  }
  // The 4-voter r2 group disturbs more groups than the 2-voter r9.
  EXPECT_LT(engine.EntropyDelta(GroupOf(engine, 1)),
            engine.EntropyDelta(GroupOf(engine, 8)));
}

TEST(EngineDeltaHTest, IsolatedGroupHasZeroDelta) {
  // A group whose sources appear nowhere else cannot change any other
  // group's entropy.
  DatasetBuilder builder;
  SourceId shared = builder.AddSource("shared");
  SourceId helper = builder.AddSource("helper");
  SourceId lonely = builder.AddSource("lonely");
  FactId a = builder.AddFact("a");
  FactId b = builder.AddFact("b");
  FactId c = builder.AddFact("c");
  // a = {shared}, b = {shared, helper}: two distinct groups linked
  // through `shared`. c = {lonely}: fully isolated.
  ASSERT_TRUE(builder.SetVote(shared, a, Vote::kTrue).ok());
  ASSERT_TRUE(builder.SetVote(shared, b, Vote::kTrue).ok());
  ASSERT_TRUE(builder.SetVote(helper, b, Vote::kTrue).ok());
  ASSERT_TRUE(builder.SetVote(lonely, c, Vote::kTrue).ok());
  Dataset d = builder.Build();

  IncrementalEngine engine(d, PaperExact());
  EXPECT_DOUBLE_EQ(engine.EntropyDelta(GroupOf(engine, c)), 0.0);
  EXPECT_NE(engine.EntropyDelta(GroupOf(engine, a)), 0.0);
}

TEST(EngineDeltaHTest, ExhaustedGroupHasZeroDelta) {
  MotivatingExample example = MakeMotivatingExample();
  IncrementalEngine engine(example.dataset, PaperExact());
  int32_t g = GroupOf(engine, 8);  // r9, singleton
  engine.CommitGroup(g, 1);
  engine.EndRound(1);
  EXPECT_DOUBLE_EQ(engine.EntropyDelta(g), 0.0);
}

TEST(EngineCommitTest, PartialCommitKeepsRemainder) {
  MotivatingExample example = MakeMotivatingExample();
  IncrementalEngine engine(example.dataset, PaperExact());
  int32_t g = GroupOf(engine, 6);  // {r7, r8} share a signature.
  ASSERT_EQ(engine.groups()[static_cast<size_t>(g)].remaining(), 2u);
  EXPECT_EQ(engine.CommitGroup(g, 1), 1);
  EXPECT_EQ(engine.groups()[static_cast<size_t>(g)].remaining(), 1u);
  EXPECT_EQ(engine.remaining_facts(), 11);
  // Requesting more than available commits only the remainder.
  EXPECT_EQ(engine.CommitGroup(g, 99), 1);
  EXPECT_EQ(engine.CommitGroup(g, 99), 0);
  EXPECT_EQ(engine.remaining_facts(), 10);
}

TEST(EngineCommitTest, ProbabilityRecordedAtCommitTimeTrust) {
  MotivatingExample example = MakeMotivatingExample();
  IncrementalEngine engine(example.dataset, PaperExact());
  // Commit r9 and r12 first (the walkthrough round 1), then r5: its
  // recorded probability must use the *updated* trust (0.45), not
  // the initial one (0.9).
  engine.CommitGroup(GroupOf(engine, 8), 1);
  engine.CommitGroup(GroupOf(engine, 11), 1);
  engine.EndRound(2);
  engine.CommitGroup(GroupOf(engine, 4), 1);
  engine.EndRound(1);
  engine.EndRound(engine.CommitAllRemaining());
  CorroborationResult result = std::move(engine).Finish("test");
  EXPECT_NEAR(result.fact_probability[4], 0.45, 1e-12);
  EXPECT_NEAR(result.fact_probability[8], 0.9, 1e-12);
}

TEST(EngineCommitTest, SourceEvaluatedTracksCommits) {
  MotivatingExample example = MakeMotivatingExample();
  IncrementalEngine engine(example.dataset, PaperExact());
  for (SourceId s = 0; s < 5; ++s) {
    EXPECT_FALSE(engine.SourceEvaluated(s));
  }
  engine.CommitGroup(GroupOf(engine, 8), 1);  // r9: s3, s5 vote.
  engine.EndRound(1);
  EXPECT_FALSE(engine.SourceEvaluated(0));
  EXPECT_TRUE(engine.SourceEvaluated(2));
  EXPECT_TRUE(engine.SourceEvaluated(4));
}

TEST(EngineCommitTest, SmoothedTrustInterpolatesTowardPrior) {
  MotivatingExample example = MakeMotivatingExample();
  IncEstimateOptions smoothed;
  smoothed.trust_prior_weight = 4.0;
  IncrementalEngine engine(example.dataset, smoothed);
  engine.CommitGroup(GroupOf(engine, 11), 1);  // r12 -> false; s4 wrong.
  engine.EndRound(1);
  // s4: (0 + 4*0.9) / (1 + 4) = 0.72 instead of the raw 0.
  EXPECT_NEAR(engine.trust()[3], 0.72, 1e-12);
  // s2 (correct F vote): (1 + 3.6) / 5 = 0.92.
  EXPECT_NEAR(engine.trust()[1], 0.92, 1e-12);
}

TEST(EngineDeathTest, FinishWithRemainingFactsAborts) {
  MotivatingExample example = MakeMotivatingExample();
  EXPECT_DEATH(
      {
        IncrementalEngine engine(example.dataset, PaperExact());
        std::move(engine).Finish("premature");
      },
      "unevaluated");
}

}  // namespace
}  // namespace corrob
