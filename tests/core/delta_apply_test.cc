#include "core/delta_apply.h"

#include <dirent.h>
#include <unistd.h>

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/random.h"
#include "core/registry.h"
#include "data/dataset_io.h"
#include "data/wal.h"
#include "testing/property.h"

// Delta application semantics plus the metamorphic contract the WAL
// leans on: replaying any crash-surviving prefix of deltas produces a
// dataset bit-identical to a batch rebuild from the same votes — and
// corroborating that dataset gives bit-identical answers at 1 and 4
// run threads.

namespace corrob {
namespace {

using proptest::ExpectBitIdentical;
using proptest::ForEachSeed;

/// Canonical byte serialization used for bit-identity comparisons.
std::string CanonicalCsv(const Dataset& dataset) {
  return DatasetToCsv(dataset);
}

/// A reproducible random delta stream: vote adds (with occasional
/// overwrites of earlier pairs), retractions (sometimes of unknown
/// names), and bare source registrations.
std::vector<WalRecord> MakeRandomDeltas(uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<WalRecord> deltas;
  deltas.reserve(count);
  for (int i = 0; i < count; ++i) {
    const std::string source =
        "src-" + std::to_string(rng.UniformInt(0, 6));
    const std::string fact = "fact-" + std::to_string(rng.UniformInt(0, 11));
    const double roll = rng.NextDouble();
    if (roll < 0.10) {
      deltas.push_back(MakeAddSource(source));
    } else if (roll < 0.25) {
      deltas.push_back(MakeRetractVote(source, fact));
    } else {
      deltas.push_back(MakeAddVote(
          source, fact, rng.Bernoulli(0.2) ? Vote::kFalse : Vote::kTrue));
    }
  }
  return deltas;
}

TEST(DeltaApplyTest, EmptyDeltaSpanReproducesBaseExactly) {
  const Dataset base = proptest::MakeRandomDataset(0xC0FFEE);
  Result<Dataset> rebuilt = ApplyDeltasToDataset(base, {});
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ(CanonicalCsv(rebuilt.ValueOrDie()), CanonicalCsv(base));
}

TEST(DeltaApplyTest, AddVoteLastWriterWins) {
  DatasetBuilder builder;
  builder.AddSource("s0");
  builder.AddFact("f0");
  const Dataset base = builder.Build();
  const std::vector<WalRecord> deltas = {
      MakeAddVote("s0", "f0", Vote::kTrue),
      MakeAddVote("s0", "f0", Vote::kFalse),
  };
  Result<Dataset> rebuilt = ApplyDeltasToDataset(base, deltas);
  ASSERT_TRUE(rebuilt.ok());
  // Only the final vote survives; a batch build with just that vote
  // must serialize identically.
  DatasetBuilder expected;
  expected.AddSource("s0");
  expected.AddFact("f0");
  ASSERT_TRUE(expected.SetVote(0, 0, Vote::kFalse).ok());
  EXPECT_EQ(CanonicalCsv(rebuilt.ValueOrDie()),
            CanonicalCsv(expected.Build()));
}

TEST(DeltaApplyTest, RetractionOfUnknownNamesIsANoOp) {
  DatasetBuilder builder;
  builder.AddSource("s0");
  builder.AddFact("f0");
  ASSERT_TRUE(builder.SetVote(0, 0, Vote::kTrue).ok());
  const Dataset base = builder.Build();
  const std::vector<WalRecord> deltas = {
      MakeRetractVote("never-seen-source", "f0"),
      MakeRetractVote("s0", "never-seen-fact"),
  };
  Result<Dataset> rebuilt = ApplyDeltasToDataset(base, deltas);
  ASSERT_TRUE(rebuilt.ok());
  // The unknown names must NOT have been registered.
  EXPECT_EQ(rebuilt.ValueOrDie().num_sources(), 1);
  EXPECT_EQ(rebuilt.ValueOrDie().num_facts(), 1);
  EXPECT_EQ(CanonicalCsv(rebuilt.ValueOrDie()), CanonicalCsv(base));
}

TEST(DeltaApplyTest, RetractionErasesTheVoteButKeepsTheNames) {
  DatasetBuilder builder;
  builder.AddSource("s0");
  builder.AddFact("f0");
  ASSERT_TRUE(builder.SetVote(0, 0, Vote::kTrue).ok());
  const Dataset base = builder.Build();
  const std::vector<WalRecord> deltas = {MakeRetractVote("s0", "f0")};
  Result<Dataset> rebuilt = ApplyDeltasToDataset(base, deltas);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt.ValueOrDie().num_votes(), 0);
  EXPECT_EQ(rebuilt.ValueOrDie().num_sources(), 1);
  EXPECT_EQ(rebuilt.ValueOrDie().num_facts(), 1);
}

TEST(DeltaApplyTest, SnapshotMarkerIsRejected) {
  WalRecord marker;
  marker.type = WalRecordType::kSnapshotMarker;
  const std::vector<WalRecord> deltas = {marker};
  Result<Dataset> rebuilt = ApplyDeltasToDataset(Dataset(), deltas);
  EXPECT_EQ(rebuilt.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeltaApplyTest, FoldingOneAtATimeEqualsOneShotApplication) {
  // Metamorphic: applying deltas record by record (the recovery path
  // taken after every crash) must equal applying the whole span at
  // once (the batch path). Exercised over random bases and streams.
  ForEachSeed(0x57A8C21D, 10, [](uint64_t seed) {
    const Dataset base = proptest::MakeRandomDataset(seed);
    const std::vector<WalRecord> deltas = MakeRandomDeltas(seed ^ 0xABCD, 40);
    Result<Dataset> one_shot = ApplyDeltasToDataset(base, deltas);
    ASSERT_TRUE(one_shot.ok()) << one_shot.status().ToString();

    Result<Dataset> folded = ApplyDeltasToDataset(base, {});
    ASSERT_TRUE(folded.ok());
    for (const WalRecord& delta : deltas) {
      folded = ApplyDeltasToDataset(folded.ValueOrDie(),
                                    std::span<const WalRecord>(&delta, 1));
      ASSERT_TRUE(folded.ok()) << folded.status().ToString();
    }
    EXPECT_EQ(CanonicalCsv(folded.ValueOrDie()),
              CanonicalCsv(one_shot.ValueOrDie()));
  });
}

/// Removes every file in `dir` and the directory itself.
void RemoveWalDir(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return;
  std::vector<std::string> names;
  for (struct dirent* entry = ::readdir(handle); entry != nullptr;
       entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(handle);
  for (const std::string& name : names) {
    ::unlink((dir + "/" + name).c_str());
  }
  ::rmdir(dir.c_str());
}

TEST(DeltaApplyTest, CrashPrefixReplayEqualsBatchRebuildAtBothThreadCounts) {
  // The full WAL contract end to end: log a delta stream, simulate
  // kill -9 by truncating the segment at arbitrary byte cuts, recover,
  // and require the recovered dataset to be bit-identical to a batch
  // rebuild from the surviving prefix — and to corroborate
  // bit-identically at 1 and 4 run threads.
  const std::string dir =
      ::testing::TempDir() + "/delta_apply_crash_prefix";
  const std::vector<WalRecord> deltas = MakeRandomDeltas(0xFEED5EED, 30);

  RemoveWalDir(dir);
  WalOptions options;
  options.fsync_policy = WalFsyncPolicy::kNever;
  {
    Result<WalWriter> writer = WalWriter::Open(dir, options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const WalRecord& delta : deltas) {
      ASSERT_TRUE(writer.ValueOrDie().Append(delta).ok());
    }
  }
  const std::string segment = dir + "/" + wal_internal::SegmentFileName(0);
  Result<std::string> full = ReadFileToString(segment);
  ASSERT_TRUE(full.ok());
  const std::string intact = full.ValueOrDie();

  // Sample cuts across the whole byte range, including mid-record
  // positions; step 7 is coprime with the record framing so cuts land
  // everywhere relative to record boundaries.
  for (size_t cut = 0; cut <= intact.size(); cut += 7) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    RemoveWalDir(dir);
    {
      Result<WalWriter> writer = WalWriter::Open(dir, options);
      ASSERT_TRUE(writer.ok());
    }
    ASSERT_TRUE(WriteStringToFile(
                    segment, std::string_view(intact).substr(0, cut))
                    .ok());
    WalRecovery recovery;
    Result<WalWriter> reopened = WalWriter::Open(dir, options, &recovery);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    const std::vector<WalRecord> survived = recovery.Mutations();
    ASSERT_LE(survived.size(), deltas.size());
    for (size_t i = 0; i < survived.size(); ++i) {
      ASSERT_EQ(survived[i], deltas[i]) << "record " << i;
    }

    Result<Dataset> recovered = DatasetFromWalRecovery(recovery);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    Result<Dataset> batch = ApplyDeltasToDataset(
        Dataset(), std::span<const WalRecord>(survived));
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(CanonicalCsv(recovered.ValueOrDie()),
              CanonicalCsv(batch.ValueOrDie()));

    // Corroboration over the recovered dataset is thread-count
    // invariant, so an operator can restart with a different
    // --threads and still serve identical bytes.
    if (recovered.ValueOrDie().num_votes() == 0) continue;
    CorroborationResult results[2];
    const int thread_counts[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
      CorroboratorOptions run_options;
      run_options.num_threads = thread_counts[i];
      Result<std::unique_ptr<Corroborator>> method =
          MakeCorroborator("TwoEstimate", run_options);
      ASSERT_TRUE(method.ok());
      Result<CorroborationResult> run =
          method.ValueOrDie()->Run(recovered.ValueOrDie());
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      results[i] = std::move(run).ValueOrDie();
    }
    ExpectBitIdentical(results[0].fact_probability,
                       results[1].fact_probability, "fact_probability");
    ExpectBitIdentical(results[0].source_trust, results[1].source_trust,
                       "source_trust");
  }
  RemoveWalDir(dir);
}

TEST(DeltaApplyTest, RecoveryWithSnapshotUsesItAsTheBase) {
  const std::string dir = ::testing::TempDir() + "/delta_apply_snapshot";
  RemoveWalDir(dir);
  WalOptions options;
  options.fsync_policy = WalFsyncPolicy::kNever;
  Result<WalWriter> writer = WalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());

  // Build a dataset, snapshot its CSV, then log one more delta.
  DatasetBuilder builder;
  builder.AddSource("s0");
  builder.AddFact("f0");
  ASSERT_TRUE(builder.SetVote(0, 0, Vote::kTrue).ok());
  const Dataset snapshot_state = builder.Build();
  ASSERT_TRUE(
      writer.ValueOrDie().Compact(DatasetToCsv(snapshot_state), 1).ok());
  ASSERT_TRUE(writer.ValueOrDie()
                  .Append(MakeAddVote("s1", "f0", Vote::kFalse))
                  .ok());
  writer = Status::FailedPrecondition("closed");

  Result<WalRecovery> recovery = InspectWal(dir);
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  ASSERT_TRUE(recovery.ValueOrDie().has_snapshot);
  Result<Dataset> recovered = DatasetFromWalRecovery(recovery.ValueOrDie());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  Result<Dataset> expected = ApplyDeltasToDataset(
      snapshot_state,
      std::vector<WalRecord>{MakeAddVote("s1", "f0", Vote::kFalse)});
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(CanonicalCsv(recovered.ValueOrDie()),
            CanonicalCsv(expected.ValueOrDie()));
  RemoveWalDir(dir);
}

}  // namespace
}  // namespace corrob
