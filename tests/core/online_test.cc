#include "core/online.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/motivating_example.h"
#include "eval/metrics.h"
#include "synth/synthetic.h"

namespace corrob {
namespace {

OnlineCorroboratorOptions PaperExact() {
  OnlineCorroboratorOptions options;
  options.trust_prior_weight = 0.0;
  options.tie_margin = 0.0;
  return options;
}

TEST(OnlineTest, SourceRegistrationIsIdempotent) {
  OnlineCorroborator online;
  EXPECT_EQ(online.AddSource("yelp"), online.AddSource("yelp"));
  EXPECT_EQ(online.num_sources(), 1);
  EXPECT_EQ(online.source_name(0), "yelp");
}

TEST(OnlineTest, UnseenSourcesKeepDefaultTrust) {
  OnlineCorroborator online;
  SourceId s = online.AddSource("s");
  EXPECT_DOUBLE_EQ(online.trust(s), 0.9);
  EXPECT_FALSE(online.SourceEvaluated(s));
}

TEST(OnlineTest, StreamingTheWalkthroughReproducesFigure1Trust) {
  // Feed the motivating example in the paper's round order:
  // r9, r12 | r5, r6 | r1..r4, r7, r8, r10, r11. The trust state
  // after each prefix matches the Figure 1 values.
  MotivatingExample example = MakeMotivatingExample();
  OnlineCorroborator online{PaperExact()};
  for (SourceId s = 0; s < 5; ++s) {
    online.AddSource(example.dataset.source_name(s));
  }
  auto observe = [&](FactId f) {
    auto votes = example.dataset.VotesOnFact(f);
    return online
        .Observe(std::vector<SourceVote>(votes.begin(), votes.end()))
        .ValueOrDie();
  };

  EXPECT_TRUE(observe(8).decision);    // r9 -> true
  EXPECT_FALSE(observe(11).decision);  // r12 -> false
  EXPECT_DOUBLE_EQ(online.trust(1), 1.0);
  EXPECT_DOUBLE_EQ(online.trust(2), 1.0);
  EXPECT_DOUBLE_EQ(online.trust(3), 0.0);
  EXPECT_DOUBLE_EQ(online.trust(4), 1.0);
  EXPECT_DOUBLE_EQ(online.trust(0), 0.9);  // '-' (unevaluated default)

  EXPECT_FALSE(observe(4).decision);  // r5 at (0.9+0)/2 = 0.45
  EXPECT_FALSE(observe(5).decision);  // r6 at 0
  EXPECT_DOUBLE_EQ(online.trust(0), 0.0);

  for (FactId f : {0, 1, 2, 3, 6, 7, 9, 10}) {
    EXPECT_TRUE(observe(f).decision) << "r" << (f + 1);
  }
  EXPECT_NEAR(online.trust(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(online.trust(3), 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(online.trust(1), 1.0);
  EXPECT_EQ(online.facts_observed(), 12);
}

TEST(OnlineTest, EmptyObservationIsMaxEntropy) {
  OnlineCorroborator online;
  online.AddSource("s");
  auto verdict = online.Observe({}).ValueOrDie();
  EXPECT_DOUBLE_EQ(verdict.probability, 0.5);
  EXPECT_TRUE(verdict.decision);
  EXPECT_FALSE(online.SourceEvaluated(0));
}

TEST(OnlineTest, RejectsMalformedObservations) {
  OnlineCorroborator online;
  SourceId s = online.AddSource("s");
  EXPECT_EQ(online.Observe({{99, Vote::kTrue}}).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(online.Observe({{s, Vote::kNone}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      online.Observe({{s, Vote::kTrue}, {s, Vote::kFalse}}).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(OnlineTest, TieVerdictsDoNotMoveTrust) {
  // {T, F} at equal trust is a coin flip; with the default tie margin
  // the verdict is returned but no source is punished for it.
  OnlineCorroborator online;
  SourceId a = online.AddSource("a");
  SourceId b = online.AddSource("b");
  auto verdict =
      online.Observe({{a, Vote::kTrue}, {b, Vote::kFalse}}).ValueOrDie();
  EXPECT_DOUBLE_EQ(verdict.probability, 0.5);
  EXPECT_TRUE(verdict.decision);
  EXPECT_FALSE(online.SourceEvaluated(a));
  EXPECT_FALSE(online.SourceEvaluated(b));
  EXPECT_DOUBLE_EQ(online.trust(a), 0.9);
  EXPECT_DOUBLE_EQ(online.trust(b), 0.9);
  EXPECT_EQ(online.facts_observed(), 1);
}

TEST(OnlineTest, TieMarginZeroCommitsCoinFlips) {
  // Paper-exact Eq. 8: with no deferral band, a {T, F} tie at equal
  // trust commits the (true) decision and punishes the dissenter —
  // exactly what TieVerdictsDoNotMoveTrust shows the margin prevents.
  OnlineCorroboratorOptions options = PaperExact();
  OnlineCorroborator online{options};
  SourceId a = online.AddSource("a");
  SourceId b = online.AddSource("b");
  auto verdict =
      online.Observe({{a, Vote::kTrue}, {b, Vote::kFalse}}).ValueOrDie();
  EXPECT_DOUBLE_EQ(verdict.probability, 0.5);
  EXPECT_TRUE(verdict.decision);
  EXPECT_TRUE(online.SourceEvaluated(a));
  EXPECT_TRUE(online.SourceEvaluated(b));
  EXPECT_DOUBLE_EQ(online.trust(a), 1.0);  // no prior weight in PaperExact
  EXPECT_DOUBLE_EQ(online.trust(b), 0.0);
}

TEST(OnlineTest, EmptyVoteFactsCountButLeaveTrustUntouched) {
  OnlineCorroborator with_gaps, without_gaps;
  for (int s = 0; s < 3; ++s) {
    with_gaps.AddSource("s" + std::to_string(s));
    without_gaps.AddSource("s" + std::to_string(s));
  }
  std::vector<SourceVote> votes{{0, Vote::kTrue},
                                {1, Vote::kTrue},
                                {2, Vote::kFalse}};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(with_gaps.Observe({}).ok());  // facts nobody voted on
    ASSERT_TRUE(with_gaps.Observe(votes).ok());
    ASSERT_TRUE(without_gaps.Observe(votes).ok());
  }
  EXPECT_EQ(with_gaps.facts_observed(), 10);
  EXPECT_EQ(without_gaps.facts_observed(), 5);
  EXPECT_EQ(with_gaps.trust_snapshot(), without_gaps.trust_snapshot());
}

TEST(OnlineTest, NeverVotingSourceKeepsPriorTrust) {
  OnlineCorroboratorOptions options;
  options.initial_trust = 0.73;
  OnlineCorroborator online{options};
  SourceId active = online.AddSource("active");
  SourceId lurker = online.AddSource("lurker");
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(online.Observe({{active, Vote::kTrue}}).ok());
  }
  // The active source has moved; the lurker still reports the prior
  // exactly and remains unevaluated, with zero exported counters.
  EXPECT_TRUE(online.SourceEvaluated(active));
  EXPECT_FALSE(online.SourceEvaluated(lurker));
  EXPECT_DOUBLE_EQ(online.trust(lurker), 0.73);
  OnlineCorroboratorState state = online.ExportState();
  EXPECT_DOUBLE_EQ(state.correct[static_cast<size_t>(lurker)], 0.0);
  EXPECT_DOUBLE_EQ(state.total[static_cast<size_t>(lurker)], 0.0);
}

TEST(OnlineTest, SmoothingDampsSingleObservations) {
  OnlineCorroboratorOptions options;
  options.trust_prior_weight = 8.0;
  OnlineCorroborator online{options};
  SourceId a = online.AddSource("a");
  SourceId b = online.AddSource("b");
  SourceId c = online.AddSource("c");
  // a+b outvote c's F: fact decided true, c marked wrong once.
  ASSERT_TRUE(online
                  .Observe({{a, Vote::kTrue},
                            {b, Vote::kTrue},
                            {c, Vote::kFalse}})
                  .ok());
  EXPECT_NEAR(online.trust(c), (0.0 + 8.0 * 0.9) / 9.0, 1e-12);
  EXPECT_NEAR(online.trust(a), (1.0 + 8.0 * 0.9) / 9.0, 1e-12);
}

TEST(OnlineTest, StreamBeatsNothingOnSyntheticData) {
  // Streaming in arrival order cannot match batch IncEstHeu, but it
  // must act on what it learns: after seeing enough flagged facts the
  // bogus solo listings of a crashed source get rejected.
  SyntheticOptions options;
  options.num_facts = 4000;
  options.num_sources = 8;
  options.num_inaccurate = 2;
  options.eta = 0.05;
  options.seed = 51;
  SyntheticDataset data = GenerateSynthetic(options).ValueOrDie();

  // Stream F-vote facts first (a crawler auditing disputed listings
  // first), then the rest in id order.
  std::vector<FactId> order;
  for (FactId f = 0; f < data.dataset.num_facts(); ++f) {
    if (data.dataset.CountVotes(f, Vote::kFalse) > 0) order.push_back(f);
  }
  for (FactId f = 0; f < data.dataset.num_facts(); ++f) {
    if (data.dataset.CountVotes(f, Vote::kFalse) == 0) order.push_back(f);
  }

  OnlineCorroborator online;
  for (SourceId s = 0; s < data.dataset.num_sources(); ++s) {
    online.AddSource(data.dataset.source_name(s));
  }
  std::vector<bool> predicted(static_cast<size_t>(data.dataset.num_facts()));
  for (FactId f : order) {
    auto votes = data.dataset.VotesOnFact(f);
    auto verdict =
        online.Observe(std::vector<SourceVote>(votes.begin(), votes.end()))
            .ValueOrDie();
    predicted[static_cast<size_t>(f)] = verdict.decision;
  }
  BinaryMetrics metrics = MetricsFromConfusion(
      CountConfusion(predicted, data.truth.labels()));
  // Better than the all-true collapse (≈ the visible true rate).
  int64_t truly_true = 0;
  for (bool b : data.truth.labels()) truly_true += b ? 1 : 0;
  double all_true_accuracy =
      static_cast<double>(truly_true) / data.truth.num_facts();
  EXPECT_GT(metrics.accuracy, all_true_accuracy + 0.02);
}

TEST(OnlineTest, DeterministicGivenSameStream) {
  Rng rng(7);
  OnlineCorroborator a, b;
  for (int s = 0; s < 4; ++s) {
    a.AddSource("s" + std::to_string(s));
    b.AddSource("s" + std::to_string(s));
  }
  for (int i = 0; i < 200; ++i) {
    std::vector<SourceVote> votes;
    for (SourceId s = 0; s < 4; ++s) {
      if (rng.Bernoulli(0.5)) {
        votes.push_back({s, rng.Bernoulli(0.9) ? Vote::kTrue : Vote::kFalse});
      }
    }
    auto va = a.Observe(votes).ValueOrDie();
    auto vb = b.Observe(votes).ValueOrDie();
    EXPECT_DOUBLE_EQ(va.probability, vb.probability);
  }
  EXPECT_EQ(a.trust_snapshot(), b.trust_snapshot());
}

}  // namespace
}  // namespace corrob
