#include "core/cosine.h"

#include <gtest/gtest.h>

#include "data/motivating_example.h"
#include "eval/metrics.h"

namespace corrob {
namespace {

TEST(CosineTest, ResolvesClearConflicts) {
  DatasetBuilder builder;
  for (int s = 0; s < 4; ++s) builder.AddSource("s" + std::to_string(s));
  FactId good = builder.AddFact("good");
  FactId bad = builder.AddFact("bad");
  for (int s = 0; s < 3; ++s) {
    ASSERT_TRUE(builder.SetVote(s, good, Vote::kTrue).ok());
    ASSERT_TRUE(builder.SetVote(s, bad, Vote::kFalse).ok());
  }
  ASSERT_TRUE(builder.SetVote(3, good, Vote::kFalse).ok());
  ASSERT_TRUE(builder.SetVote(3, bad, Vote::kTrue).ok());
  Dataset d = builder.Build();

  CorroborationResult result = CosineCorroborator().Run(d).ValueOrDie();
  EXPECT_TRUE(result.Decide(good));
  EXPECT_FALSE(result.Decide(bad));
  EXPECT_LT(result.source_trust[3], result.source_trust[0]);
}

TEST(CosineTest, CollapsesOnAffirmativeOnlyData) {
  // Like the other fixpoints: with mostly T votes, everything true
  // except possibly the F-majority facts.
  MotivatingExample example = MakeMotivatingExample();
  CorroborationResult result =
      CosineCorroborator().Run(example.dataset).ValueOrDie();
  for (FactId f = 0; f < 12; ++f) {
    if (f == 5 || f == 11) continue;  // r6 and r12 carry F votes.
    EXPECT_TRUE(result.Decide(f)) << "r" << (f + 1);
  }
}

TEST(CosineTest, WellFormedOutputs) {
  MotivatingExample example = MakeMotivatingExample();
  CorroborationResult result =
      CosineCorroborator().Run(example.dataset).ValueOrDie();
  ASSERT_EQ(result.fact_probability.size(), 12u);
  for (double p : result.fact_probability) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  for (double t : result.source_trust) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
  }
  EXPECT_GE(result.iterations, 1);
}

TEST(CosineTest, NoVoteFactsStayUncertain) {
  DatasetBuilder builder;
  builder.AddSource("s");
  FactId voted = builder.AddFact("voted");
  FactId orphan = builder.AddFact("orphan");
  ASSERT_TRUE(builder.SetVote(0, voted, Vote::kTrue).ok());
  Dataset d = builder.Build();
  CorroborationResult result = CosineCorroborator().Run(d).ValueOrDie();
  EXPECT_DOUBLE_EQ(result.fact_probability[static_cast<size_t>(orphan)], 0.5);
  EXPECT_TRUE(result.Decide(voted));
}

TEST(CosineTest, OptionValidation) {
  CosineOptions bad;
  bad.damping = 1.0;
  EXPECT_FALSE(CosineCorroborator(bad).Run(DatasetBuilder().Build()).ok());
  bad = {};
  bad.trust_power = 0.0;
  EXPECT_FALSE(CosineCorroborator(bad).Run(DatasetBuilder().Build()).ok());
  bad = {};
  bad.max_iterations = 0;
  EXPECT_FALSE(CosineCorroborator(bad).Run(DatasetBuilder().Build()).ok());
}

TEST(CosineTest, EmptyDataset) {
  CorroborationResult result =
      CosineCorroborator().Run(DatasetBuilder().Build()).ValueOrDie();
  EXPECT_TRUE(result.fact_probability.empty());
}

}  // namespace
}  // namespace corrob
