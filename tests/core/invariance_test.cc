// Property tests: corroboration results must be invariant under
// renaming/permutation of facts and sources. Decisions are a function
// of the vote structure, not of insertion order or labels.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/registry.h"
#include "synth/synthetic.h"

namespace corrob {
namespace {

struct Permutation {
  std::vector<int32_t> source_map;  // old id -> new id
  std::vector<int32_t> fact_map;
};

/// Rebuilds `dataset` with permuted source/fact insertion orders.
Dataset Permute(const Dataset& dataset, const Permutation& perm) {
  DatasetBuilder builder;
  // Register in permuted order so ids change but names persist.
  std::vector<SourceId> source_order(
      static_cast<size_t>(dataset.num_sources()));
  for (SourceId s = 0; s < dataset.num_sources(); ++s) {
    source_order[static_cast<size_t>(perm.source_map[s])] = s;
  }
  std::vector<FactId> fact_order(static_cast<size_t>(dataset.num_facts()));
  for (FactId f = 0; f < dataset.num_facts(); ++f) {
    fact_order[static_cast<size_t>(perm.fact_map[f])] = f;
  }
  for (SourceId s : source_order) builder.AddSource(dataset.source_name(s));
  for (FactId f : fact_order) builder.AddFact(dataset.fact_name(f));
  for (FactId f = 0; f < dataset.num_facts(); ++f) {
    for (const SourceVote& sv : dataset.VotesOnFact(f)) {
      EXPECT_TRUE(builder
                      .SetVote(perm.source_map[sv.source],
                               perm.fact_map[f], sv.vote)
                      .ok());
    }
  }
  return builder.Build();
}

Permutation RandomPermutation(const Dataset& dataset, uint64_t seed) {
  Rng rng(seed);
  Permutation perm;
  perm.source_map.resize(static_cast<size_t>(dataset.num_sources()));
  perm.fact_map.resize(static_cast<size_t>(dataset.num_facts()));
  for (size_t i = 0; i < perm.source_map.size(); ++i) {
    perm.source_map[i] = static_cast<int32_t>(i);
  }
  for (size_t i = 0; i < perm.fact_map.size(); ++i) {
    perm.fact_map[i] = static_cast<int32_t>(i);
  }
  rng.Shuffle(&perm.source_map);
  rng.Shuffle(&perm.fact_map);
  return perm;
}

class InvarianceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(InvarianceTest, DecisionsInvariantUnderPermutation) {
  // Deterministic fixpoint methods must produce identical decisions
  // on the permuted dataset (modulo the permutation). The sampled
  // BayesEstimate and order-sensitive IncEstimate tie-breaks are
  // checked with a weaker agreement bound.
  SyntheticOptions options;
  options.num_facts = 400;
  options.num_sources = 7;
  options.num_inaccurate = 2;
  options.eta = 0.03;
  options.seed = 97;
  SyntheticDataset data = GenerateSynthetic(options).ValueOrDie();
  Permutation perm = RandomPermutation(data.dataset, 13);
  Dataset permuted = Permute(data.dataset, perm);

  const std::string& name = GetParam();
  auto algorithm = MakeCorroborator(name).ValueOrDie();
  std::vector<bool> original =
      algorithm->Run(data.dataset).ValueOrDie().Decisions();
  std::vector<bool> shuffled =
      algorithm->Run(permuted).ValueOrDie().Decisions();

  bool exact = name != "BayesEstimate" && name != "IncEstHeu" &&
               name != "IncEstPS";
  int64_t agreements = 0;
  for (FactId f = 0; f < data.dataset.num_facts(); ++f) {
    bool same =
        original[static_cast<size_t>(f)] ==
        shuffled[static_cast<size_t>(perm.fact_map[f])];
    if (exact) {
      EXPECT_TRUE(same) << name << " fact " << f;
    }
    agreements += same ? 1 : 0;
  }
  // Even the order-sensitive methods must agree on nearly all facts.
  EXPECT_GE(agreements, data.dataset.num_facts() * 95 / 100) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, InvarianceTest,
    ::testing::Values("Voting", "Counting", "TwoEstimate", "ThreeEstimate",
                      "Cosine", "TruthFinder", "AvgLog", "Invest",
                      "PooledInvest", "BayesEstimate", "IncEstPS",
                      "IncEstHeu"));

}  // namespace
}  // namespace corrob
