// Property tests: corroboration results must be invariant under
// renaming/permutation of facts and sources. Decisions are a function
// of the vote structure, not of insertion order or labels.

#include <gtest/gtest.h>

#include "core/registry.h"
#include "synth/synthetic.h"
#include "testing/property.h"

namespace corrob {
namespace {

using proptest::Permutation;
using proptest::Permute;
using proptest::RandomPermutation;

class InvarianceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(InvarianceTest, DecisionsInvariantUnderPermutation) {
  // Deterministic fixpoint methods must produce identical decisions
  // on the permuted dataset (modulo the permutation). The sampled
  // BayesEstimate and order-sensitive IncEstimate tie-breaks are
  // checked with a weaker agreement bound.
  SyntheticOptions options;
  options.num_facts = 400;
  options.num_sources = 7;
  options.num_inaccurate = 2;
  options.eta = 0.03;
  options.seed = 97;
  SyntheticDataset data = GenerateSynthetic(options).ValueOrDie();
  Permutation perm = RandomPermutation(data.dataset, 13);
  Dataset permuted = Permute(data.dataset, perm);

  const std::string& name = GetParam();
  auto algorithm = MakeCorroborator(name).ValueOrDie();
  std::vector<bool> original =
      algorithm->Run(data.dataset).ValueOrDie().Decisions();
  std::vector<bool> shuffled =
      algorithm->Run(permuted).ValueOrDie().Decisions();

  bool exact = name != "BayesEstimate" && name != "IncEstHeu" &&
               name != "IncEstPS";
  int64_t agreements = 0;
  for (FactId f = 0; f < data.dataset.num_facts(); ++f) {
    bool same =
        original[static_cast<size_t>(f)] ==
        shuffled[static_cast<size_t>(perm.fact_map[f])];
    if (exact) {
      EXPECT_TRUE(same) << name << " fact " << f;
    }
    agreements += same ? 1 : 0;
  }
  // Even the order-sensitive methods must agree on nearly all facts.
  EXPECT_GE(agreements, data.dataset.num_facts() * 95 / 100) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, InvarianceTest,
    ::testing::Values("Voting", "Counting", "TwoEstimate", "ThreeEstimate",
                      "Cosine", "TruthFinder", "AvgLog", "Invest",
                      "PooledInvest", "BayesEstimate", "IncEstPS",
                      "IncEstHeu"));

}  // namespace
}  // namespace corrob
