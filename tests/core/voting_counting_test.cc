#include <gtest/gtest.h>

#include "core/counting.h"
#include "core/voting.h"
#include "data/motivating_example.h"
#include "eval/metrics.h"

namespace corrob {
namespace {

TEST(VotingTest, MajorityOfCastVotes) {
  DatasetBuilder builder;
  for (int s = 0; s < 3; ++s) builder.AddSource("s" + std::to_string(s));
  FactId f0 = builder.AddFact("t_wins");
  FactId f1 = builder.AddFact("f_wins");
  FactId f2 = builder.AddFact("tie");
  FactId f3 = builder.AddFact("no_votes");
  ASSERT_TRUE(builder.SetVote(0, f0, Vote::kTrue).ok());
  ASSERT_TRUE(builder.SetVote(1, f0, Vote::kTrue).ok());
  ASSERT_TRUE(builder.SetVote(2, f0, Vote::kFalse).ok());
  ASSERT_TRUE(builder.SetVote(0, f1, Vote::kFalse).ok());
  ASSERT_TRUE(builder.SetVote(1, f1, Vote::kFalse).ok());
  ASSERT_TRUE(builder.SetVote(2, f1, Vote::kTrue).ok());
  ASSERT_TRUE(builder.SetVote(0, f2, Vote::kTrue).ok());
  ASSERT_TRUE(builder.SetVote(1, f2, Vote::kFalse).ok());
  (void)f3;
  Dataset d = builder.Build();

  CorroborationResult result = VotingCorroborator().Run(d).ValueOrDie();
  EXPECT_TRUE(result.Decide(f0));
  EXPECT_FALSE(result.Decide(f1));
  EXPECT_FALSE(result.Decide(f2));  // Tie: not strictly more T votes.
  EXPECT_FALSE(result.Decide(f3));
  EXPECT_EQ(result.algorithm, "Voting");
}

TEST(VotingTest, MotivatingExampleAllTrueExceptR12) {
  // §2: with mostly T votes, voting accepts everything except r12
  // (2 F votes vs 1 T vote). r6 is a 1-1 tie, rejected by voting.
  MotivatingExample example = MakeMotivatingExample();
  CorroborationResult result =
      VotingCorroborator().Run(example.dataset).ValueOrDie();
  for (FactId f = 0; f < 12; ++f) {
    bool expected = !(f == 5 || f == 11);  // r6 tie, r12 outvoted
    EXPECT_EQ(result.Decide(f), expected) << "r" << (f + 1);
  }
}

TEST(CountingTest, RequiresAbsoluteMajorityOfAllSources) {
  DatasetBuilder builder;
  for (int s = 0; s < 5; ++s) builder.AddSource("s" + std::to_string(s));
  FactId weak = builder.AddFact("weak");    // 2 of 5 T votes.
  FactId strong = builder.AddFact("strong");  // 3 of 5 T votes.
  ASSERT_TRUE(builder.SetVote(0, weak, Vote::kTrue).ok());
  ASSERT_TRUE(builder.SetVote(1, weak, Vote::kTrue).ok());
  ASSERT_TRUE(builder.SetVote(0, strong, Vote::kTrue).ok());
  ASSERT_TRUE(builder.SetVote(1, strong, Vote::kTrue).ok());
  ASSERT_TRUE(builder.SetVote(2, strong, Vote::kTrue).ok());
  Dataset d = builder.Build();

  CorroborationResult result = CountingCorroborator().Run(d).ValueOrDie();
  EXPECT_FALSE(result.Decide(weak));
  EXPECT_TRUE(result.Decide(strong));
}

TEST(CountingTest, TradesRecallForPrecisionOnExample) {
  MotivatingExample example = MakeMotivatingExample();
  CorroborationResult counting =
      CountingCorroborator().Run(example.dataset).ValueOrDie();
  CorroborationResult voting =
      VotingCorroborator().Run(example.dataset).ValueOrDie();
  BinaryMetrics mc = EvaluateOnTruth(counting, example.truth);
  BinaryMetrics mv = EvaluateOnTruth(voting, example.truth);
  EXPECT_GE(mc.precision, mv.precision);
  EXPECT_LE(mc.recall, mv.recall);
}

TEST(BaselineTest, EmptyDataset) {
  Dataset empty = DatasetBuilder().Build();
  EXPECT_TRUE(VotingCorroborator().Run(empty).ValueOrDie()
                  .fact_probability.empty());
  EXPECT_TRUE(CountingCorroborator().Run(empty).ValueOrDie()
                  .fact_probability.empty());
}

}  // namespace
}  // namespace corrob
