#include "core/two_estimate.h"

#include <gtest/gtest.h>

#include "data/motivating_example.h"
#include "eval/metrics.h"

namespace corrob {
namespace {

TEST(NormalizeEstimatesTest, RoundScheme) {
  std::vector<double> v{0.4999, 0.5, 0.9, 0.0};
  NormalizeEstimates(Normalization::kRound, &v);
  EXPECT_EQ(v, (std::vector<double>{0.0, 1.0, 1.0, 0.0}));
}

TEST(NormalizeEstimatesTest, LinearScheme) {
  std::vector<double> v{0.2, 0.4, 0.6};
  NormalizeEstimates(Normalization::kLinear, &v);
  EXPECT_NEAR(v[0], 0.0, 1e-12);
  EXPECT_NEAR(v[1], 0.5, 1e-12);
  EXPECT_NEAR(v[2], 1.0, 1e-12);
}

TEST(NormalizeEstimatesTest, LinearDegenerateSpanUnchanged) {
  std::vector<double> v{0.7, 0.7};
  NormalizeEstimates(Normalization::kLinear, &v);
  EXPECT_EQ(v, (std::vector<double>{0.7, 0.7}));
}

TEST(NormalizeEstimatesTest, NoneSchemeUnchanged) {
  std::vector<double> v{0.3, 0.8};
  NormalizeEstimates(Normalization::kNone, &v);
  EXPECT_EQ(v, (std::vector<double>{0.3, 0.8}));
}

TEST(TwoEstimateTest, MotivatingExampleDecisionsMatchSection21) {
  // Paper §2.1: TwoEstimate returns true for everything except r12.
  MotivatingExample example = MakeMotivatingExample();
  CorroborationResult result =
      TwoEstimateCorroborator().Run(example.dataset).ValueOrDie();
  for (FactId f = 0; f < 12; ++f) {
    EXPECT_EQ(result.Decide(f), f != 11) << "r" << (f + 1);
  }
}

TEST(TwoEstimateTest, MotivatingExampleTrustMatchesSection21) {
  // Paper §2.1: trust {1, 1, 0.8, 0.9, 1} for s1..s5.
  MotivatingExample example = MakeMotivatingExample();
  CorroborationResult result =
      TwoEstimateCorroborator().Run(example.dataset).ValueOrDie();
  ASSERT_EQ(result.source_trust.size(), 5u);
  EXPECT_NEAR(result.source_trust[0], 1.0, 1e-9);
  EXPECT_NEAR(result.source_trust[1], 1.0, 1e-9);
  EXPECT_NEAR(result.source_trust[2], 0.8, 1e-9);
  EXPECT_NEAR(result.source_trust[3], 0.9, 1e-9);
  EXPECT_NEAR(result.source_trust[4], 1.0, 1e-9);
}

TEST(TwoEstimateTest, MotivatingExampleMetricsMatchTable2) {
  // Paper Table 2: precision 0.64, recall 1, accuracy 0.67.
  MotivatingExample example = MakeMotivatingExample();
  CorroborationResult result =
      TwoEstimateCorroborator().Run(example.dataset).ValueOrDie();
  BinaryMetrics metrics = EvaluateOnTruth(result, example.truth);
  EXPECT_NEAR(metrics.precision, 7.0 / 11.0, 1e-12);  // 0.636 ≈ 0.64
  EXPECT_NEAR(metrics.recall, 1.0, 1e-12);
  EXPECT_NEAR(metrics.accuracy, 8.0 / 12.0, 1e-12);  // 0.667 ≈ 0.67
}

TEST(TwoEstimateTest, AffirmativeOnlyDataCollapsesToAllTrue) {
  // §4.2: with only T votes, every fact converges to true and every
  // source to trust 1 — the limitation the paper demonstrates.
  DatasetBuilder builder;
  for (int s = 0; s < 4; ++s) builder.AddSource("s" + std::to_string(s));
  for (int f = 0; f < 20; ++f) {
    FactId id = builder.AddFact("f" + std::to_string(f));
    ASSERT_TRUE(builder.SetVote(f % 4, id, Vote::kTrue).ok());
    ASSERT_TRUE(builder.SetVote((f + 1) % 4, id, Vote::kTrue).ok());
  }
  Dataset d = builder.Build();
  CorroborationResult result = TwoEstimateCorroborator().Run(d).ValueOrDie();
  for (FactId f = 0; f < 20; ++f) {
    EXPECT_TRUE(result.Decide(f));
  }
  for (double trust : result.source_trust) {
    EXPECT_NEAR(trust, 1.0, 1e-9);
  }
}

TEST(TwoEstimateTest, ConvergesQuickly) {
  MotivatingExample example = MakeMotivatingExample();
  CorroborationResult result =
      TwoEstimateCorroborator().Run(example.dataset).ValueOrDie();
  EXPECT_LE(result.iterations, 10);
  EXPECT_GE(result.iterations, 2);
}

TEST(TwoEstimateTest, RespectsInitialTrustOption) {
  // Any initial trust above 0.5 yields the same fixpoint here.
  MotivatingExample example = MakeMotivatingExample();
  for (double initial : {0.6, 0.75, 0.95}) {
    TwoEstimateOptions options;
    options.initial_trust = initial;
    CorroborationResult result =
        TwoEstimateCorroborator(options).Run(example.dataset).ValueOrDie();
    EXPECT_FALSE(result.Decide(11)) << "initial " << initial;
    EXPECT_TRUE(result.Decide(0)) << "initial " << initial;
  }
}

TEST(TwoEstimateTest, InvalidOptionsRejected) {
  TwoEstimateOptions bad_trust;
  bad_trust.initial_trust = 1.5;
  EXPECT_EQ(TwoEstimateCorroborator(bad_trust)
                .Run(DatasetBuilder().Build())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  TwoEstimateOptions bad_iters;
  bad_iters.max_iterations = 0;
  EXPECT_EQ(TwoEstimateCorroborator(bad_iters)
                .Run(DatasetBuilder().Build())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(TwoEstimateTest, EmptyDataset) {
  CorroborationResult result =
      TwoEstimateCorroborator().Run(DatasetBuilder().Build()).ValueOrDie();
  EXPECT_TRUE(result.fact_probability.empty());
  EXPECT_TRUE(result.source_trust.empty());
}

}  // namespace
}  // namespace corrob
