#include "core/bayes_estimate.h"

#include <gtest/gtest.h>

#include "data/motivating_example.h"
#include "eval/metrics.h"

namespace corrob {
namespace {

TEST(BayesEstimateTest, MotivatingExampleAllTrue) {
  // Paper §2.2: with the high-precision/low-recall prior,
  // BayesEstimate returns true for every restaurant (precision 0.58,
  // recall 1.0) — even r12 with its two F votes.
  MotivatingExample example = MakeMotivatingExample();
  CorroborationResult result =
      BayesEstimateCorroborator().Run(example.dataset).ValueOrDie();
  for (FactId f = 0; f < 12; ++f) {
    EXPECT_TRUE(result.Decide(f)) << "r" << (f + 1);
  }
  BinaryMetrics metrics = EvaluateOnTruth(result, example.truth);
  EXPECT_NEAR(metrics.precision, 7.0 / 12.0, 1e-12);  // 0.583 ≈ 0.58
  EXPECT_NEAR(metrics.recall, 1.0, 1e-12);
}

TEST(BayesEstimateTest, DeterministicForFixedSeed) {
  MotivatingExample example = MakeMotivatingExample();
  CorroborationResult a =
      BayesEstimateCorroborator().Run(example.dataset).ValueOrDie();
  CorroborationResult b =
      BayesEstimateCorroborator().Run(example.dataset).ValueOrDie();
  EXPECT_EQ(a.fact_probability, b.fact_probability);
}

TEST(BayesEstimateTest, WeaklyInformativePriorsFollowStrongConflict) {
  // Fully symmetric priors leave the model invariant under flipping
  // every label (and swapping the sensitivity/FPR roles), so the
  // sampler mixes between mirrored modes. Weakly informative priors
  // that expect claims to correlate with truth break the symmetry;
  // the disputed fact then lands false.
  DatasetBuilder builder;
  for (int s = 0; s < 6; ++s) builder.AddSource("s" + std::to_string(s));
  FactId disputed = builder.AddFact("disputed");
  FactId backed = builder.AddFact("backed");
  for (int s = 0; s < 5; ++s) {
    ASSERT_TRUE(builder.SetVote(s, disputed, Vote::kFalse).ok());
    ASSERT_TRUE(builder.SetVote(s, backed, Vote::kTrue).ok());
  }
  ASSERT_TRUE(builder.SetVote(5, disputed, Vote::kTrue).ok());
  Dataset d = builder.Build();

  BayesEstimateOptions options;
  options.false_positive_prior = {1.0, 3.0};  // Claims on false facts rare.
  options.sensitivity_prior = {3.0, 1.0};     // Claims on true facts common.
  options.truth_prior = {1.0, 1.0};
  CorroborationResult result =
      BayesEstimateCorroborator(options).Run(d).ValueOrDie();
  EXPECT_FALSE(result.Decide(disputed));
  EXPECT_TRUE(result.Decide(backed));
}

TEST(BayesEstimateTest, ProbabilitiesAreWellFormed) {
  MotivatingExample example = MakeMotivatingExample();
  CorroborationResult result =
      BayesEstimateCorroborator().Run(example.dataset).ValueOrDie();
  for (double p : result.fact_probability) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  for (double t : result.source_trust) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
  }
}

TEST(BayesEstimateTest, PriorMeanHelper) {
  BetaPrior prior{100.0, 10000.0};
  EXPECT_NEAR(prior.Mean(), 100.0 / 10100.0, 1e-12);
}

TEST(BayesEstimateTest, InvalidOptionsRejected) {
  BayesEstimateOptions bad;
  bad.burn_in = 500;
  bad.iterations = 100;
  EXPECT_EQ(BayesEstimateCorroborator(bad)
                .Run(DatasetBuilder().Build())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  BayesEstimateOptions zero;
  zero.iterations = 0;
  EXPECT_EQ(BayesEstimateCorroborator(zero)
                .Run(DatasetBuilder().Build())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(BayesEstimateTest, EmptyDataset) {
  CorroborationResult result =
      BayesEstimateCorroborator().Run(DatasetBuilder().Build()).ValueOrDie();
  EXPECT_TRUE(result.fact_probability.empty());
}

}  // namespace
}  // namespace corrob
