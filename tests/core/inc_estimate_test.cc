#include "core/inc_estimate.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "core/two_estimate.h"
#include "data/motivating_example.h"
#include "eval/metrics.h"
#include "synth/synthetic.h"

namespace corrob {
namespace {

// Group index lookup by a member fact id.
int32_t GroupOf(const IncrementalEngine& engine, FactId fact) {
  const auto& groups = engine.groups();
  for (size_t g = 0; g < groups.size(); ++g) {
    if (std::find(groups[g].facts.begin(), groups[g].facts.end(), fact) !=
        groups[g].facts.end()) {
      return static_cast<int32_t>(g);
    }
  }
  ADD_FAILURE() << "fact " << fact << " not found in any group";
  return -1;
}

// Reproduces the paper's Section 2.3 walkthrough (Figure 1) by
// scripting the engine with the exact selections the paper makes:
//   round 1: {r9, r12}  -> trust {-, 1, 1, 0, 1}
//   round 2: {r5, r6}   -> trust {0, 1, 1, 0, 1}
//   round 3: the rest   -> trust {0.67, 1, 1, 0.7, 1}
// and checks the Table 2 scores: P=0.78, R=1, Acc=0.83.
TEST(IncrementalEngineTest, PaperWalkthroughReproducesFigure1) {
  MotivatingExample example = MakeMotivatingExample();
  IncEstimateOptions options;
  options.record_trajectory = true;
  // Paper-exact Eq. 8 (pure sample average, no smoothing prior) so
  // the walkthrough's single-fact trust swings reproduce verbatim.
  options.trust_prior_weight = 0.0;
  IncrementalEngine engine(example.dataset, options);

  // Fact ids: r9 = 8, r12 = 11, r5 = 4, r6 = 5.
  // Round 1.
  EXPECT_EQ(engine.CommitGroup(GroupOf(engine, 8), 1), 1);
  EXPECT_EQ(engine.CommitGroup(GroupOf(engine, 11), 1), 1);
  engine.EndRound(2);
  {
    const auto& trust = engine.trust();
    EXPECT_NEAR(trust[0], 0.9, 1e-12);  // s1: no evaluated votes yet ('-').
    EXPECT_NEAR(trust[1], 1.0, 1e-12);
    EXPECT_NEAR(trust[2], 1.0, 1e-12);
    EXPECT_NEAR(trust[3], 0.0, 1e-12);
    EXPECT_NEAR(trust[4], 1.0, 1e-12);
  }

  // Round 2: r5 projected (0.9 + 0)/2 = 0.45 -> false; r6 -> 0.
  EXPECT_NEAR(engine.GroupProbability(GroupOf(engine, 4)), 0.45, 1e-12);
  EXPECT_NEAR(engine.GroupProbability(GroupOf(engine, 5)), 0.0, 1e-12);
  EXPECT_EQ(engine.CommitGroup(GroupOf(engine, 4), 1), 1);
  EXPECT_EQ(engine.CommitGroup(GroupOf(engine, 5), 1), 1);
  engine.EndRound(2);
  {
    const auto& trust = engine.trust();
    EXPECT_NEAR(trust[0], 0.0, 1e-12);
    EXPECT_NEAR(trust[1], 1.0, 1e-12);
    EXPECT_NEAR(trust[2], 1.0, 1e-12);
    EXPECT_NEAR(trust[3], 0.0, 1e-12);
    EXPECT_NEAR(trust[4], 1.0, 1e-12);
  }

  // Round 3: everything left is backed by a good source.
  EXPECT_EQ(engine.CommitAllRemaining(), 8);
  engine.EndRound(8);
  {
    const auto& trust = engine.trust();
    EXPECT_NEAR(trust[0], 2.0 / 3.0, 1e-12);  // 0.67
    EXPECT_NEAR(trust[1], 1.0, 1e-12);
    EXPECT_NEAR(trust[2], 1.0, 1e-12);
    EXPECT_NEAR(trust[3], 0.7, 1e-12);
    EXPECT_NEAR(trust[4], 1.0, 1e-12);
  }

  CorroborationResult result = std::move(engine).Finish("Scripted");
  BinaryMetrics metrics = EvaluateOnTruth(result, example.truth);
  EXPECT_NEAR(metrics.precision, 7.0 / 9.0, 1e-12);  // 0.78
  EXPECT_NEAR(metrics.recall, 1.0, 1e-12);
  EXPECT_NEAR(metrics.accuracy, 10.0 / 12.0, 1e-12);  // 0.83

  // Trajectory: t0 + 3 rounds.
  ASSERT_EQ(result.trajectory.size(), 4u);
  EXPECT_EQ(result.trajectory[0].facts_committed, 0);
  EXPECT_EQ(result.trajectory[3].facts_committed, 8);
}

TEST(IncrementalEngineTest, SelectingHighEntropyFirstLosesFalseFacts) {
  // §5.1: greedily selecting r1 (entropy 1 at trust {-,1,1,0,1})
  // pushes s4's trust to 0.5 and hides r4/r10. The engine lets us
  // demonstrate exactly that failure mode.
  MotivatingExample example = MakeMotivatingExample();
  IncEstimateOptions options;
  options.trust_prior_weight = 0.0;  // Paper-exact trust update.
  IncrementalEngine engine(example.dataset, options);
  engine.CommitGroup(GroupOf(engine, 8), 1);   // r9 true
  engine.CommitGroup(GroupOf(engine, 11), 1);  // r12 false
  engine.EndRound(2);
  // r1 = {s2 T, s4 T} with trust {.,1,.,0,.}: probability 0.5, the
  // maximum-entropy group.
  int32_t r1_group = GroupOf(engine, 0);
  EXPECT_NEAR(engine.GroupProbability(r1_group), 0.5, 1e-12);
  engine.CommitGroup(r1_group, 1);
  engine.EndRound(1);
  // s4 regains trust 0.5: r4/r10 = {s4 T, s5 T} now scores 0.75 and
  // would be (wrongly) committed true.
  EXPECT_NEAR(engine.trust()[3], 0.5, 1e-12);
  EXPECT_NEAR(engine.GroupProbability(GroupOf(engine, 3)), 0.75, 1e-12);
}

TEST(IncEstHeuTest, MotivatingExampleBeatsTwoEstimate) {
  MotivatingExample example = MakeMotivatingExample();
  IncEstimateOptions options;
  options.strategy = IncSelectStrategy::kHeuristic;
  CorroborationResult inc =
      IncEstimateCorroborator(options).Run(example.dataset).ValueOrDie();
  CorroborationResult two =
      TwoEstimateCorroborator().Run(example.dataset).ValueOrDie();
  BinaryMetrics inc_metrics = EvaluateOnTruth(inc, example.truth);
  BinaryMetrics two_metrics = EvaluateOnTruth(two, example.truth);
  EXPECT_GT(inc_metrics.accuracy, two_metrics.accuracy);
  EXPECT_GE(inc_metrics.accuracy, 0.75);
  EXPECT_EQ(inc_metrics.recall, 1.0);
  // r12 and r6 must be identified as false.
  EXPECT_FALSE(inc.Decide(11));
  EXPECT_FALSE(inc.Decide(5));
}

TEST(IncEstPSTest, MotivatingExampleMatchesTwoEstimateDecisions) {
  // §6.2.2: IncEstPS repeatedly selects high-probability facts and
  // ends up like the existing approaches — everything true except the
  // strongly disputed r12.
  MotivatingExample example = MakeMotivatingExample();
  IncEstimateOptions options;
  options.strategy = IncSelectStrategy::kProbability;
  CorroborationResult result =
      IncEstimateCorroborator(options).Run(example.dataset).ValueOrDie();
  for (FactId f = 0; f < 12; ++f) {
    EXPECT_EQ(result.Decide(f), f != 11) << "r" << (f + 1);
  }
}

TEST(IncEstimateTest, EveryFactCommittedExactlyOnce) {
  MotivatingExample example = MakeMotivatingExample();
  for (IncSelectStrategy strategy :
       {IncSelectStrategy::kHeuristic, IncSelectStrategy::kProbability}) {
    IncEstimateOptions options;
    options.strategy = strategy;
    CorroborationResult result =
        IncEstimateCorroborator(options).Run(example.dataset).ValueOrDie();
    ASSERT_EQ(result.fact_probability.size(), 12u);
    for (double p : result.fact_probability) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(IncEstimateTest, TrajectoryAccountsForAllFacts) {
  MotivatingExample example = MakeMotivatingExample();
  IncEstimateOptions options;
  options.record_trajectory = true;
  CorroborationResult result =
      IncEstimateCorroborator(options).Run(example.dataset).ValueOrDie();
  ASSERT_GE(result.trajectory.size(), 2u);
  int64_t committed = 0;
  for (const TrajectoryPoint& point : result.trajectory) {
    ASSERT_EQ(point.trust.size(), 5u);
    for (double t : point.trust) {
      EXPECT_GE(t, 0.0);
      EXPECT_LE(t, 1.0);
    }
    committed += point.facts_committed;
  }
  EXPECT_EQ(committed, 12);
  EXPECT_EQ(static_cast<int>(result.trajectory.size()) - 1,
            result.iterations);
}

TEST(IncEstimateTest, DefaultTrustAboveHalfGivesSameResult) {
  // §6.1.1: any default above 0.5 selects the same facts at t0 and
  // therefore converges to the same corroboration result.
  MotivatingExample example = MakeMotivatingExample();
  std::vector<bool> reference;
  for (double initial : {0.6, 0.75, 0.9, 0.99}) {
    IncEstimateOptions options;
    options.initial_trust = initial;
    CorroborationResult result =
        IncEstimateCorroborator(options).Run(example.dataset).ValueOrDie();
    if (reference.empty()) {
      reference = result.Decisions();
    } else {
      EXPECT_EQ(result.Decisions(), reference) << "initial " << initial;
    }
  }
}

TEST(IncEstimateTest, AffirmativeOnlyDataCommitsTrueGroupByGroup) {
  // With no F votes and high default trust every group is positive:
  // the §5.1 one-sided case commits one whole group per time point
  // (3 groups here) and everything resolves true.
  DatasetBuilder builder;
  for (int s = 0; s < 3; ++s) builder.AddSource("s" + std::to_string(s));
  for (int f = 0; f < 9; ++f) {
    FactId id = builder.AddFact("f" + std::to_string(f));
    ASSERT_TRUE(builder.SetVote(f % 3, id, Vote::kTrue).ok());
  }
  Dataset d = builder.Build();
  CorroborationResult result =
      IncEstimateCorroborator().Run(d).ValueOrDie();
  EXPECT_EQ(result.iterations, 3);
  for (FactId f = 0; f < 9; ++f) EXPECT_TRUE(result.Decide(f));
}

TEST(IncEstimateTest, FactsWithNoVotesCommitAtThreshold) {
  DatasetBuilder builder;
  builder.AddSource("s");
  FactId voted = builder.AddFact("voted");
  FactId orphan = builder.AddFact("orphan");
  ASSERT_TRUE(builder.SetVote(0, voted, Vote::kTrue).ok());
  Dataset d = builder.Build();
  CorroborationResult result =
      IncEstimateCorroborator().Run(d).ValueOrDie();
  EXPECT_TRUE(result.Decide(voted));
  // Orphan facts carry probability 0.5 -> decided true by Eq. 2.
  EXPECT_DOUBLE_EQ(result.fact_probability[static_cast<size_t>(orphan)], 0.5);
  EXPECT_TRUE(result.Decide(orphan));
}

TEST(IncEstimateTest, EmptyDataset) {
  CorroborationResult result =
      IncEstimateCorroborator().Run(DatasetBuilder().Build()).ValueOrDie();
  EXPECT_TRUE(result.fact_probability.empty());
  EXPECT_EQ(result.iterations, 0);
}

TEST(IncEstimateTest, InvalidOptionsRejected) {
  IncEstimateOptions bad;
  bad.initial_trust = -0.1;
  EXPECT_EQ(IncEstimateCorroborator(bad)
                .Run(DatasetBuilder().Build())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  IncEstimateOptions bad_cap;
  bad_cap.max_candidate_groups = -1;
  EXPECT_EQ(IncEstimateCorroborator(bad_cap)
                .Run(DatasetBuilder().Build())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(IncEstimateTest, CandidateCapDoesNotChangeSmallExperiments) {
  MotivatingExample example = MakeMotivatingExample();
  IncEstimateOptions capped;
  capped.max_candidate_groups = 64;
  IncEstimateOptions exact;
  exact.max_candidate_groups = 0;
  CorroborationResult a =
      IncEstimateCorroborator(capped).Run(example.dataset).ValueOrDie();
  CorroborationResult b =
      IncEstimateCorroborator(exact).Run(example.dataset).ValueOrDie();
  EXPECT_EQ(a.Decisions(), b.Decisions());
}

TEST(IncEstHeuTest, IdentifiesPollutedSourcesOnSyntheticData) {
  // End-to-end property on §6.3.1 data: IncEstHeu must beat
  // TwoEstimate by a clear margin when inaccurate sources flood the
  // corpus with bogus affirmative listings.
  SyntheticOptions options;
  options.num_sources = 8;
  options.num_inaccurate = 2;
  options.num_facts = 1500;
  options.eta = 0.03;
  options.seed = 5;
  SyntheticDataset data = GenerateSynthetic(options).ValueOrDie();

  CorroborationResult inc =
      IncEstimateCorroborator().Run(data.dataset).ValueOrDie();
  CorroborationResult two =
      TwoEstimateCorroborator().Run(data.dataset).ValueOrDie();
  double inc_acc = EvaluateOnTruth(inc, data.truth).accuracy;
  double two_acc = EvaluateOnTruth(two, data.truth).accuracy;
  EXPECT_GT(inc_acc, two_acc + 0.1);
  EXPECT_GT(inc_acc, 0.7);
}

/// Property sweep: on random synthetic corpora of varying shape, the
/// incremental run remains well-formed (all facts committed, bounded
/// probabilities/trust, trajectory consistent).
struct IncPropertyCase {
  int sources;
  int inaccurate;
  int facts;
  double eta;
  uint64_t seed;
};

class IncEstimatePropertyTest
    : public ::testing::TestWithParam<IncPropertyCase> {};

TEST_P(IncEstimatePropertyTest, RunIsWellFormed) {
  const IncPropertyCase& c = GetParam();
  SyntheticOptions options;
  options.num_sources = c.sources;
  options.num_inaccurate = c.inaccurate;
  options.num_facts = c.facts;
  options.eta = c.eta;
  options.seed = c.seed;
  SyntheticDataset data = GenerateSynthetic(options).ValueOrDie();

  for (IncSelectStrategy strategy :
       {IncSelectStrategy::kHeuristic, IncSelectStrategy::kProbability}) {
    IncEstimateOptions inc_options;
    inc_options.strategy = strategy;
    inc_options.record_trajectory = true;
    CorroborationResult result = IncEstimateCorroborator(inc_options)
                                     .Run(data.dataset)
                                     .ValueOrDie();
    ASSERT_EQ(result.fact_probability.size(),
              static_cast<size_t>(c.facts));
    int64_t committed = 0;
    for (const TrajectoryPoint& point : result.trajectory) {
      committed += point.facts_committed;
    }
    EXPECT_EQ(committed, c.facts);
    for (double p : result.fact_probability) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
    for (double t : result.source_trust) {
      EXPECT_GE(t, 0.0);
      EXPECT_LE(t, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IncEstimatePropertyTest,
    ::testing::Values(IncPropertyCase{2, 0, 50, 0.0, 1},
                      IncPropertyCase{3, 3, 100, 0.0, 2},
                      IncPropertyCase{5, 1, 200, 0.05, 3},
                      IncPropertyCase{6, 2, 400, 0.02, 4},
                      IncPropertyCase{10, 4, 300, 0.04, 5},
                      IncPropertyCase{4, 2, 77, 0.01, 6}));

}  // namespace
}  // namespace corrob
