#include <gtest/gtest.h>

#include "core/inc_estimate.h"
#include "data/motivating_example.h"

namespace corrob {
namespace {

TEST(RoundObserverTest, ReceivesEveryRoundInOrder) {
  MotivatingExample example = MakeMotivatingExample();
  std::vector<IncRoundInfo> rounds;
  IncEstimateOptions options;
  options.round_observer = [&](const IncRoundInfo& info) {
    rounds.push_back(info);
  };
  CorroborationResult result =
      IncEstimateCorroborator(options).Run(example.dataset).ValueOrDie();

  ASSERT_EQ(static_cast<int>(rounds.size()), result.iterations);
  int64_t committed = 0;
  for (size_t i = 0; i < rounds.size(); ++i) {
    EXPECT_EQ(rounds[i].round, static_cast<int>(i) + 1);
    EXPECT_GT(rounds[i].facts_committed, 0);
    committed += rounds[i].facts_committed;
  }
  EXPECT_EQ(committed, 12);
  // The run ends with the terminal wholesale commit of the leftover
  // side/ties, never with a balanced round.
  IncRoundInfo::Kind last = rounds.back().kind;
  EXPECT_TRUE(last == IncRoundInfo::Kind::kFinalTies ||
              last == IncRoundInfo::Kind::kOneSidedPositive ||
              last == IncRoundInfo::Kind::kOneSidedNegative);
}

TEST(RoundObserverTest, BalancedRoundsCarryGroupIds) {
  MotivatingExample example = MakeMotivatingExample();
  std::vector<IncRoundInfo> balanced;
  IncEstimateOptions options;
  options.round_observer = [&](const IncRoundInfo& info) {
    if (info.kind == IncRoundInfo::Kind::kBalanced) balanced.push_back(info);
  };
  IncEstimateCorroborator(options).Run(example.dataset).ValueOrDie();
  ASSERT_FALSE(balanced.empty());
  for (const IncRoundInfo& info : balanced) {
    EXPECT_GE(info.positive_group, 0);
    EXPECT_GE(info.negative_group, 0);
    EXPECT_NE(info.positive_group, info.negative_group);
  }
}

TEST(RoundObserverTest, GreedyRoundsForIncEstPS) {
  MotivatingExample example = MakeMotivatingExample();
  int greedy_rounds = 0;
  IncEstimateOptions options;
  options.strategy = IncSelectStrategy::kProbability;
  options.round_observer = [&](const IncRoundInfo& info) {
    if (info.kind == IncRoundInfo::Kind::kGreedy) ++greedy_rounds;
    EXPECT_EQ(info.negative_group, -1);
  };
  CorroborationResult result =
      IncEstimateCorroborator(options).Run(example.dataset).ValueOrDie();
  EXPECT_EQ(greedy_rounds, result.iterations);
}

}  // namespace
}  // namespace corrob
