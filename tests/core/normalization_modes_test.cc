// Behavioural coverage for the TwoEstimate normalization variants
// the paper discusses in §2.1/§4.2: without renormalization the
// fixpoint sits at the prior; with rounding it commits hard.

#include <gtest/gtest.h>

#include "core/two_estimate.h"
#include "data/motivating_example.h"

namespace corrob {
namespace {

TEST(NormalizationModesTest, NoneKeepsSoftScores) {
  MotivatingExample example = MakeMotivatingExample();
  TwoEstimateOptions options;
  options.normalization = Normalization::kNone;
  CorroborationResult result =
      TwoEstimateCorroborator(options).Run(example.dataset).ValueOrDie();
  // Probabilities stay strictly inside (0, 1) — no hard commitment.
  int soft = 0;
  for (double p : result.fact_probability) {
    if (p > 0.0 && p < 1.0) ++soft;
  }
  EXPECT_EQ(soft, 12);
  // And the strongly disputed r12 still scores lowest.
  double min_p = 1.0;
  FactId argmin = -1;
  for (FactId f = 0; f < 12; ++f) {
    if (result.fact_probability[static_cast<size_t>(f)] < min_p) {
      min_p = result.fact_probability[static_cast<size_t>(f)];
      argmin = f;
    }
  }
  EXPECT_EQ(argmin, 11);
}

TEST(NormalizationModesTest, RoundCommitsHard) {
  MotivatingExample example = MakeMotivatingExample();
  TwoEstimateOptions options;
  options.normalization = Normalization::kRound;
  CorroborationResult result =
      TwoEstimateCorroborator(options).Run(example.dataset).ValueOrDie();
  for (double p : result.fact_probability) {
    EXPECT_TRUE(p == 0.0 || p == 1.0) << p;
  }
}

TEST(NormalizationModesTest, LinearSpreadsTheRange) {
  MotivatingExample example = MakeMotivatingExample();
  TwoEstimateOptions options;
  options.normalization = Normalization::kLinear;
  CorroborationResult result =
      TwoEstimateCorroborator(options).Run(example.dataset).ValueOrDie();
  double lo = 1.0, hi = 0.0;
  for (double p : result.fact_probability) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  // Linear rescaling pins the extremes to the full range.
  EXPECT_DOUBLE_EQ(lo, 0.0);
  EXPECT_DOUBLE_EQ(hi, 1.0);
  // The bottom of the range is the disputed r12.
  EXPECT_DOUBLE_EQ(result.fact_probability[11], 0.0);
}

TEST(NormalizationModesTest, AllModesAgreeOnTheClearCases) {
  MotivatingExample example = MakeMotivatingExample();
  for (Normalization mode : {Normalization::kRound, Normalization::kLinear}) {
    TwoEstimateOptions options;
    options.normalization = mode;
    CorroborationResult result =
        TwoEstimateCorroborator(options).Run(example.dataset).ValueOrDie();
    // r2 (4 affirmations) true; r12 (2 F vs 1 T) false.
    EXPECT_TRUE(result.Decide(1));
    EXPECT_FALSE(result.Decide(11));
  }
}

}  // namespace
}  // namespace corrob
