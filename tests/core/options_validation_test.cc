// Validation coverage for the IncEstimate option surface added in
// DESIGN.md §3.1.

#include <gtest/gtest.h>

#include "core/inc_estimate.h"

namespace corrob {
namespace {

Dataset Empty() { return DatasetBuilder().Build(); }

TEST(IncOptionsValidationTest, RejectsNegativePriorWeight) {
  IncEstimateOptions bad;
  bad.trust_prior_weight = -1.0;
  EXPECT_EQ(IncEstimateCorroborator(bad).Run(Empty()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(IncOptionsValidationTest, RejectsBadTieMargin) {
  IncEstimateOptions bad;
  bad.tie_margin = -0.01;
  EXPECT_EQ(IncEstimateCorroborator(bad).Run(Empty()).status().code(),
            StatusCode::kInvalidArgument);
  bad.tie_margin = 0.5;
  EXPECT_EQ(IncEstimateCorroborator(bad).Run(Empty()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(IncOptionsValidationTest, RejectsNegativeExtremeBand) {
  IncEstimateOptions bad;
  bad.extreme_band = -0.1;
  EXPECT_EQ(IncEstimateCorroborator(bad).Run(Empty()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(IncOptionsValidationTest, BoundaryValuesAccepted) {
  IncEstimateOptions edge;
  edge.trust_prior_weight = 0.0;
  edge.tie_margin = 0.0;
  edge.extreme_band = 0.0;
  EXPECT_TRUE(IncEstimateCorroborator(edge).Run(Empty()).ok());
  edge.tie_margin = 0.49;
  edge.extreme_band = 1.0;
  EXPECT_TRUE(IncEstimateCorroborator(edge).Run(Empty()).ok());
}

}  // namespace
}  // namespace corrob
