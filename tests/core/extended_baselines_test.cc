#include <gtest/gtest.h>

#include "core/pasternack.h"
#include "core/registry.h"
#include "core/truth_finder.h"
#include "data/motivating_example.h"
#include "eval/metrics.h"
#include "synth/synthetic.h"

namespace corrob {
namespace {

TEST(TruthFinderTest, ResolvesClearConflicts) {
  DatasetBuilder builder;
  for (int s = 0; s < 4; ++s) builder.AddSource("s" + std::to_string(s));
  FactId good = builder.AddFact("good");
  FactId bad = builder.AddFact("bad");
  for (int s = 0; s < 3; ++s) {
    ASSERT_TRUE(builder.SetVote(s, good, Vote::kTrue).ok());
    ASSERT_TRUE(builder.SetVote(s, bad, Vote::kFalse).ok());
  }
  ASSERT_TRUE(builder.SetVote(3, good, Vote::kFalse).ok());
  ASSERT_TRUE(builder.SetVote(3, bad, Vote::kTrue).ok());
  Dataset d = builder.Build();

  CorroborationResult result = TruthFinderCorroborator().Run(d).ValueOrDie();
  EXPECT_TRUE(result.Decide(good));
  EXPECT_FALSE(result.Decide(bad));
  EXPECT_LT(result.source_trust[3], result.source_trust[0]);
}

TEST(TruthFinderTest, CollapsesOnAffirmativeOnlyData) {
  // The paper's thesis applies to this related-work method too:
  // with only T votes everything resolves true.
  MotivatingExample example = MakeMotivatingExample();
  CorroborationResult result =
      TruthFinderCorroborator().Run(example.dataset).ValueOrDie();
  int decided_true = 0;
  for (FactId f = 0; f < 12; ++f) {
    if (result.Decide(f)) ++decided_true;
  }
  EXPECT_GE(decided_true, 10);  // At most the two F-vote facts differ.
}

TEST(TruthFinderTest, WellFormedOutputs) {
  MotivatingExample example = MakeMotivatingExample();
  CorroborationResult result =
      TruthFinderCorroborator().Run(example.dataset).ValueOrDie();
  for (double p : result.fact_probability) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  for (double t : result.source_trust) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
  }
}

TEST(TruthFinderTest, OptionValidation) {
  TruthFinderOptions bad;
  bad.initial_trust = 1.0;
  EXPECT_FALSE(
      TruthFinderCorroborator(bad).Run(DatasetBuilder().Build()).ok());
  bad = {};
  bad.dampening = 0.0;
  EXPECT_FALSE(
      TruthFinderCorroborator(bad).Run(DatasetBuilder().Build()).ok());
}

class PasternackVariantTest
    : public ::testing::TestWithParam<PasternackVariant> {};

TEST_P(PasternackVariantTest, ResolvesClearConflicts) {
  DatasetBuilder builder;
  for (int s = 0; s < 5; ++s) builder.AddSource("s" + std::to_string(s));
  FactId good = builder.AddFact("good");
  FactId bad = builder.AddFact("bad");
  for (int s = 0; s < 4; ++s) {
    ASSERT_TRUE(builder.SetVote(s, good, Vote::kTrue).ok());
    ASSERT_TRUE(builder.SetVote(s, bad, Vote::kFalse).ok());
  }
  ASSERT_TRUE(builder.SetVote(4, good, Vote::kFalse).ok());
  ASSERT_TRUE(builder.SetVote(4, bad, Vote::kTrue).ok());
  Dataset d = builder.Build();

  PasternackOptions options;
  options.variant = GetParam();
  CorroborationResult result =
      PasternackCorroborator(options).Run(d).ValueOrDie();
  EXPECT_TRUE(result.Decide(good));
  EXPECT_FALSE(result.Decide(bad));
}

TEST_P(PasternackVariantTest, WellFormedOnSyntheticData) {
  SyntheticOptions synth;
  synth.num_facts = 500;
  synth.num_sources = 6;
  synth.num_inaccurate = 2;
  synth.seed = 8;
  SyntheticDataset data = GenerateSynthetic(synth).ValueOrDie();

  PasternackOptions options;
  options.variant = GetParam();
  CorroborationResult result =
      PasternackCorroborator(options).Run(data.dataset).ValueOrDie();
  ASSERT_EQ(result.fact_probability.size(), 500u);
  for (double p : result.fact_probability) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  for (double t : result.source_trust) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, PasternackVariantTest,
                         ::testing::Values(PasternackVariant::kAvgLog,
                                           PasternackVariant::kInvest,
                                           PasternackVariant::kPooledInvest));

TEST(PasternackTest, NamesFollowVariant) {
  PasternackOptions options;
  EXPECT_EQ(PasternackCorroborator(options).name(), "AvgLog");
  options.variant = PasternackVariant::kInvest;
  EXPECT_EQ(PasternackCorroborator(options).name(), "Invest");
  options.variant = PasternackVariant::kPooledInvest;
  EXPECT_EQ(PasternackCorroborator(options).name(), "PooledInvest");
}

TEST(PasternackTest, OptionValidation) {
  PasternackOptions bad;
  bad.growth = 0.0;
  EXPECT_FALSE(
      PasternackCorroborator(bad).Run(DatasetBuilder().Build()).ok());
}

TEST(ExtendedRegistryTest, AllExtendedNamesConstructAndRun) {
  MotivatingExample example = MakeMotivatingExample();
  for (const std::string& name : ExtendedCorroboratorNames()) {
    auto algorithm = MakeCorroborator(name);
    ASSERT_TRUE(algorithm.ok()) << name;
    EXPECT_EQ(algorithm.ValueOrDie()->name(), name);
    auto result = algorithm.ValueOrDie()->Run(example.dataset);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_EQ(result.ValueOrDie().fact_probability.size(), 12u);
  }
}

}  // namespace
}  // namespace corrob
